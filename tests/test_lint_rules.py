"""Tests for the repro.lint rule engine, suppressions, reporters, and CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.lint import (
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    module_for_path,
    render_json,
)

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
SRC_REPRO = os.path.join(os.path.dirname(HERE), "src", "repro")


def fixture(*parts) -> str:
    return os.path.join(FIXTURES, *parts)


class TestRuleRegistry:
    def test_all_rules_registered(self):
        ids = sorted(rule.rule_id for rule in all_rules())
        assert ids == [
            "DET001", "DTYPE001", "HYG001", "HYG002", "LOCK001",
            "MOD001", "MOD002", "RACE001", "RACE002",
        ]

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")


class TestEachRuleFiresExactlyOnce:
    """Every bad-snippet fixture yields exactly its own rule, once."""

    @pytest.mark.parametrize(
        "path, rule_id",
        [
            (fixture("repro", "ntt", "mod001_bad.py"), "MOD001"),
            (fixture("repro", "ntt", "mod002_bad.py"), "MOD002"),
            (fixture("repro", "he", "dtype001_bad.py"), "DTYPE001"),
            (fixture("hyg001_bad.py"), "HYG001"),
            (fixture("hyg002_bad.py"), "HYG002"),
        ],
    )
    def test_fixture_fires_once(self, path, rule_id):
        result = lint_paths([path])
        assert [f.rule_id for f in result.findings] == [rule_id]
        finding = result.findings[0]
        assert finding.path == path
        assert finding.line > 0 and finding.col > 0

    def test_clean_fixture_is_clean(self):
        result = lint_paths([fixture("repro", "ntt", "clean.py")])
        assert result.findings == []
        assert result.suppressed_count == 0

    def test_fixture_directory_fails_overall(self):
        result = lint_paths([FIXTURES])
        assert not result.ok
        # 5 original single-rule fixtures + 6 concurrency findings
        # (RACE001, RACE002, LOCK001 and three DET001 sites).
        assert len(result.findings) == 11


class TestScoping:
    MOD_SOURCE = "def f(a, b, q):\n    return (a * b) % q\n"

    def test_modular_scope_applies(self):
        result = lint_source(self.MOD_SOURCE, module="repro.ntt.kernel")
        assert [f.rule_id for f in result.findings] == ["MOD001"]

    def test_out_of_scope_module_ignored(self):
        result = lint_source(self.MOD_SOURCE, module="repro.analysis.report")
        assert result.findings == []

    def test_module_for_path_src_layout(self):
        assert module_for_path("src/repro/ntt/modmath.py") == "repro.ntt.modmath"
        assert module_for_path("src/repro/lint/__init__.py") == "repro.lint"

    def test_module_for_path_fixture_layout(self):
        mod = module_for_path(fixture("repro", "ntt", "mod001_bad.py"))
        assert mod == "repro.ntt.mod001_bad"

    def test_divisibility_test_exempt(self):
        src = "def f(q, n):\n    return (q - 1) % (2 * n) == 0\n"
        assert lint_source(src, module="repro.ntt.x").findings == []

    def test_python_int_expression_exempt(self):
        src = "def f(v, w, p):\n    return (int(v) * int(w)) % p\n"
        assert lint_source(src, module="repro.he.x").findings == []


class TestSuppression:
    def test_suppressed_fixture_is_clean_and_counted(self):
        result = lint_paths([fixture("repro", "ntt", "suppressed_ok.py")])
        assert result.findings == []
        assert result.suppressed_count == 2

    def test_same_line_suppression(self):
        src = (
            "def f(a, b, q):\n"
            "    return (a * b) % q  "
            "# repro-lint: disable=MOD001  exact scalar ints\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        assert result.findings == [] and result.suppressed_count == 1

    def test_wrong_rule_does_not_suppress(self):
        src = (
            "def f(a, b, q):\n"
            "    return (a * b) % q  "
            "# repro-lint: disable=MOD002  wrong rule on purpose\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        assert [f.rule_id for f in result.findings] == ["MOD001"]

    def test_disable_all(self):
        src = (
            "def f(a, b, q):\n"
            "    return (a * b) % q  "
            "# repro-lint: disable=all  test-only helper\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        assert result.findings == [] and result.suppressed_count == 1

    def test_unknown_rule_in_directive_flagged(self):
        src = (
            "def f(a, b, q):\n"
            "    return (a * b) % q  "
            "# repro-lint: disable=MOD01  typo'd rule id\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        ids = sorted(f.rule_id for f in result.findings)
        # The typo suppresses nothing, so MOD001 still fires too.
        assert ids == ["MOD001", "SUP001"]

    def test_missing_justification_flagged(self):
        src = (
            "def f(a, b, q):\n"
            "    return (a * b) % q  # repro-lint: disable=MOD001\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        assert [f.rule_id for f in result.findings] == ["SUP002"]
        assert result.suppressed_count == 1  # MOD001 is still suppressed

    def test_sup_findings_are_suppressible(self):
        src = (
            "def f(a, b, q):\n"
            "    # repro-lint: disable=SUP002  migration shim, see #42\n"
            "    return (a * b) % q  # repro-lint: disable=MOD001\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        assert result.findings == []

    def test_sup_validation_runs_even_with_rule_selection(self):
        src = "x = 1  # repro-lint: disable=NOPE999  bogus\n"
        result = lint_source(src, module="repro.ntt.x", rules=[])
        assert [f.rule_id for f in result.findings] == ["SUP001"]

    def test_multiline_comment_justification(self):
        src = (
            "def f(a, b, q):\n"
            "    # repro-lint: disable=MOD001  reason starts here\n"
            "    # and continues on a second comment line\n"
            "    return (a * b) % q\n"
        )
        result = lint_source(src, module="repro.ntt.x")
        assert result.findings == [] and result.suppressed_count == 1


class TestReporters:
    def test_json_schema(self):
        result = lint_paths([FIXTURES])
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files_checked"] == result.files_checked
        assert payload["counts"]["errors"] == 6
        assert payload["counts"]["warnings"] == 5
        assert payload["counts"]["suppressed"] == 3
        assert payload["parse_errors"] == []
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "severity", "path", "line", "col", "message",
            }
            assert finding["severity"] in ("error", "warning")

    def test_json_includes_bitwidth_when_given(self):
        result = lint_paths([fixture("repro", "ntt", "clean.py")])
        payload = json.loads(render_json(result, bitwidth={"x": {"ok": True}}))
        assert payload["bitwidth"] == {"x": {"ok": True}}


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self):
        result = lint_source("def broken(:\n", path="bad.py")
        assert not result.ok
        assert result.findings == []
        assert "bad.py" in result.parse_errors[0]


class TestCli:
    def test_lint_cli_clean_on_src(self):
        assert main(["lint", SRC_REPRO, "--no-bitwidth"]) == 0

    def test_lint_cli_fails_on_fixtures(self, capsys):
        assert main(["lint", FIXTURES, "--no-bitwidth"]) == 1
        out = capsys.readouterr().out
        assert "MOD001" in out and "HYG002" in out

    def test_lint_cli_select(self):
        # Only HYG rules selected: MOD/DTYPE fixtures stop failing the run.
        assert main([
            "lint", fixture("repro", "ntt", "mod001_bad.py"),
            "--select", "HYG001,HYG002", "--no-bitwidth",
        ]) == 0

    def test_lint_cli_json(self, capsys):
        code = main(["lint", FIXTURES, "--format", "json", "--no-bitwidth"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] == 6

    def test_lint_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MOD001", "MOD002", "DTYPE001", "HYG001", "HYG002",
                        "BW001", "RACE001", "RACE002", "LOCK001", "DET001",
                        "SUP001", "SUP002"):
            assert rule_id in out
