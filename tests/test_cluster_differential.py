"""Differential conformance for the cluster executor.

The supervised multi-process path must be **bit-identical** to the
in-process batched runtime it shards -- for every pool width, for dense
and sparse weight transforms, for clear-domain convolution and encrypted
``multiply_many``, and through the full ``Flash.private_conv2d`` facade.
Shard boundaries depend only on the configured width, so 1, 2 and 4
workers all reproduce the serial answer word for word.
"""

import numpy as np
import pytest

from repro.cluster import ClusterPolicy, ClusterExecutor, make_executor
from repro.encoding.conv_encoding import ConvShape
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.params import toy_preset
from repro.he.poly import RingPoly
from repro.ntt import RnsBasis
from repro.runtime import (
    BatchedFftBackend,
    BatchedHConvEngine,
    BatchedNttBackend,
    SparseBatchedFftBackend,
)

N = 128
FLASH_CFG = ApproxFftConfig(
    n=N // 2, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)


def random_shape_grid(seed: int, count: int):
    rng = np.random.default_rng(seed)
    shapes = []
    for _ in range(count):
        kh = int(rng.integers(1, 4))
        kw = int(rng.integers(1, 4))
        size = int(rng.integers(max(kh, kw), 8))
        shapes.append(
            ConvShape(
                in_channels=int(rng.integers(1, 4)),
                height=size,
                width=size,
                out_channels=int(rng.integers(1, 4)),
                kernel_h=kh,
                kernel_w=kw,
                stride=int(rng.choice([1, 2])),
                padding=int(rng.integers(0, 2)),
            )
        )
    return shapes


def random_batch(rng, shape: ConvShape, batch: int) -> np.ndarray:
    return rng.integers(
        -7, 8, size=(batch, shape.in_channels, shape.height, shape.width)
    )


def random_kernel(rng, shape: ConvShape) -> np.ndarray:
    return rng.integers(
        -4, 5,
        size=(
            shape.out_channels, shape.in_channels,
            shape.kernel_h, shape.kernel_w,
        ),
    )


@pytest.fixture(scope="module", params=[1, 2, 4])
def executor(request):
    ex = make_executor(workers=request.param, heartbeat_timeout=60.0)
    yield ex
    ex.close()


class TestConvDifferential:
    # Batch of 5 leaves the last shard short at widths 2 and 4: the
    # reassembly order and uneven-shard arithmetic are both exercised.
    BATCH = 5

    def _engine_mode_cases(self):
        return [
            ("ntt", None),
            ("flash", FLASH_CFG),
            ("sparse", FLASH_CFG),
        ]

    def test_bit_identical_to_serial_engine(self, executor):
        for mode, cfg in self._engine_mode_cases():
            serial = BatchedHConvEngine(mode=mode, weight_config=cfg)
            rng = np.random.default_rng(31)
            for shape in random_shape_grid(seed=23, count=3):
                xs = random_batch(rng, shape, self.BATCH)
                w = random_kernel(rng, shape)
                got = executor.conv2d_batch(mode, cfg, xs, w, shape, N)
                ref = serial.conv2d_batch(xs, w, shape, N)
                assert np.array_equal(got, ref), (mode, shape)

    def test_clean_run_reports_no_recoveries(self, executor):
        shape = random_shape_grid(seed=29, count=1)[0]
        rng = np.random.default_rng(5)
        xs = random_batch(rng, shape, self.BATCH)
        w = random_kernel(rng, shape)
        executor.conv2d_batch("ntt", None, xs, w, shape, N)
        from repro.cluster.executor import _split_indices

        delta = executor.last_cluster
        assert delta["recoveries"] == 0
        shards = len(_split_indices(self.BATCH, executor.policy.workers))
        assert delta["jobs"] == shards
        assert delta["dispatches"] == shards

    def test_single_item_batch(self, executor):
        # One item -> one shard regardless of pool width.
        shape = random_shape_grid(seed=37, count=1)[0]
        rng = np.random.default_rng(9)
        xs = random_batch(rng, shape, 1)
        w = random_kernel(rng, shape)
        serial = BatchedHConvEngine(mode="ntt")
        got = executor.conv2d_batch("ntt", None, xs, w, shape, N)
        assert np.array_equal(got, serial.conv2d_batch(xs, w, shape, N))
        assert executor.last_cluster["jobs"] == 1


class TestMultiplyManyDifferential:
    @pytest.fixture(scope="class")
    def basis(self):
        return RnsBasis.generate(64, [30, 30, 31, 32])

    def _polys(self, basis, seed, count=5, hi=1 << 20):
        rng = np.random.default_rng(seed)
        polys, weights = [], []
        for _ in range(count):
            coeffs = rng.integers(0, hi, size=basis.n)
            polys.append(RingPoly(basis, basis.to_rns(coeffs)))
            weights.append(rng.integers(-5, 6, size=basis.n))
        return polys, weights

    def _assert_same(self, outs, refs):
        assert len(outs) == len(refs)
        for out, ref in zip(outs, refs):
            for a, b in zip(out.residues, ref.residues):
                assert np.array_equal(a, b)

    def test_ntt_backend_sharded_matches_serial(self, executor, basis):
        polys, weights = self._polys(basis, 0, hi=1 << 62)
        serial = BatchedNttBackend()
        got = executor.multiply_many("ntt", None, None, polys, weights)
        self._assert_same(got, serial.multiply_many(polys, weights))

    def test_flash_backend_sharded_matches_serial(self, executor, basis):
        cfg = ApproxFftConfig(
            n=basis.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )
        polys, weights = self._polys(basis, 1)
        serial = BatchedFftBackend(weight_config=cfg)
        got = executor.multiply_many("flash", cfg, None, polys, weights)
        self._assert_same(got, serial.multiply_many(polys, weights))

    def test_sparse_backend_sharded_matches_serial(self, executor, basis):
        cfg = ApproxFftConfig(
            n=basis.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )
        polys, weights = self._polys(basis, 2)
        serial = SparseBatchedFftBackend(weight_config=cfg)
        got = executor.multiply_many("sparse", cfg, None, polys, weights)
        self._assert_same(got, serial.multiply_many(polys, weights))

    def test_empty_input_returns_empty(self, executor):
        assert executor.multiply_many("ntt", None, None, [], []) == []

    def test_length_mismatch_rejected(self, executor, basis):
        polys, weights = self._polys(basis, 3, count=2)
        with pytest.raises(ValueError, match="equal length"):
            executor.multiply_many("ntt", None, None, polys, weights[:1])


class TestFacadeDifferential:
    """`Flash.private_conv2d(cluster=...)` end to end: encrypted batch,
    cluster-sharded backend, bit-identical reconstruction."""

    SHAPE = ConvShape(
        in_channels=2, height=6, width=6, out_channels=2,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )

    def test_encrypted_batch_matches_serial(self):
        from repro.core import Flash
        from repro.core.config import FlashConfig

        params = toy_preset()
        rng = np.random.default_rng(7)
        xs = rng.integers(-7, 8, size=(3, 2, 6, 6))
        w = rng.integers(-3, 4, size=(2, 2, 3, 3))
        with Flash(FlashConfig(params=params)) as flash:
            serial = flash.private_conv2d(
                xs, w, self.SHAPE, np.random.default_rng(42),
                exact=True, batch=True,
            )
            clustered = flash.private_conv2d(
                xs, w, self.SHAPE, np.random.default_rng(42),
                exact=True, batch=True, cluster=2,
            )
        for a, b in zip(serial, clustered):
            assert np.array_equal(a.reconstructed, b.reconstructed)
            assert a.exact and b.exact
        # Supervision counters surface through the protocol stats.
        assert all(r.stats.cluster_dispatches > 0 for r in clustered)
        assert all(r.stats.cluster_recoveries == 0 for r in clustered)

    def test_policy_width_validation(self):
        with pytest.raises(ValueError):
            ClusterPolicy(workers=0)
        with pytest.raises(ValueError):
            ClusterExecutor(policy=ClusterPolicy(workers=2, min_workers=3))
