"""Serve wire format and InferenceServer end-to-end behaviour.

The server contract under test: every submitted frame gets exactly one
explicit reply, results are bit-identical to the batched runtime,
admission refusals carry named reasons, the degradation ladder and
noise-budget guard rewrite modes visibly, and the circuit breaker routes
around a churning cluster and recovers -- with every transition recorded.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterExecutor, ClusterFaultInjector, ClusterPolicy
from repro.cluster.jobs import (
    MSG_JOB_MUL,
    basis_to_wire,
    config_to_wire,
)
from repro.cluster.worker import WorkerState, execute_job
from repro.encoding import ConvShape
from repro.faults.channel import ChecksumError
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.runtime import BatchedHConvEngine
from repro.serve import InferenceServer, ServeConfig
from repro.serve.messages import (
    REP_DEADLINE,
    REP_ERROR,
    REP_PONG,
    REP_RESULT,
    REP_SHED,
    conv_request,
    decode_reply,
    decode_request,
    mul_request,
    ping_request,
)

N = 64
SHAPE = ConvShape.square(1, 4, 1, 3, padding=1)
GOOD_CFG = ApproxFftConfig(
    n=N // 2, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)


def conv_inputs(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.integers(-8, 8, size=(1, 4, 4))
    w = rng.integers(-3, 4, size=(1, 1, 3, 3))
    return x, w


def serve(**overrides):
    defaults = dict(coalesce_window_s=0.0, reply_timeout_s=10.0)
    defaults.update(overrides)
    return InferenceServer(ServeConfig(**defaults))


class TestMessages:
    def test_conv_request_round_trip(self):
        x, w = conv_inputs()
        frame = conv_request(
            7, "acme", "sparse", GOOD_CFG, N, SHAPE, x, w, deadline_at=12.5
        )
        kind, request_id, payload = decode_request(frame)
        assert kind == "serve-conv"
        assert request_id == 7
        assert payload["tenant"] == "acme"
        assert payload["mode"] == "sparse"
        assert payload["config"] == config_to_wire(GOOD_CFG)
        assert payload["deadline_at"] == 12.5
        assert np.array_equal(payload["x"], x)
        assert np.array_equal(payload["w"], w)

    def test_corrupt_frame_raises_checksum_error(self):
        x, w = conv_inputs()
        frame = bytearray(conv_request(1, "t", "ntt", None, N, SHAPE, x, w))
        frame[len(frame) // 2] ^= 0x10
        with pytest.raises(ChecksumError):
            decode_request(bytes(frame))

    def test_reply_kinds_are_rejected_as_requests(self):
        from repro.serve.messages import shed_reply

        with pytest.raises(ValueError, match="unknown serve request"):
            decode_request(shed_reply(1, "rate"))

    def test_request_kinds_are_rejected_as_replies(self):
        with pytest.raises(ValueError, match="unknown serve reply"):
            decode_reply(ping_request(1))


class TestServerConv:
    def test_result_bit_identical_to_engine_ntt(self):
        x, w = conv_inputs(1)
        expected = BatchedHConvEngine(mode="ntt").conv2d_batch(
            x[None], w, SHAPE, N
        )[0]
        with serve() as server:
            kind, rid, body = decode_reply(
                server.submit(conv_request(3, "t", "ntt", None, N, SHAPE, x, w))
            )
        assert kind == REP_RESULT
        assert rid == 3
        assert body["mode"] == "ntt"
        assert body["path"] == "serial"
        assert body["degraded"] is False
        assert body["latency_s"] >= 0.0
        assert np.array_equal(body["out"], expected)

    def test_result_bit_identical_to_engine_sparse(self):
        x, w = conv_inputs(2)
        expected = BatchedHConvEngine(
            mode="sparse", weight_config=GOOD_CFG
        ).conv2d_batch(x[None], w, SHAPE, N)[0]
        with serve() as server:
            kind, _, body = decode_reply(
                server.submit(
                    conv_request(1, "t", "sparse", GOOD_CFG, N, SHAPE, x, w)
                )
            )
        assert kind == REP_RESULT
        assert body["mode"] == "sparse"
        assert np.array_equal(body["out"], expected)

    def test_concurrent_compatible_requests_coalesce(self):
        xs = [conv_inputs(seed)[0] for seed in range(4)]
        _, w = conv_inputs(0)
        expected = BatchedHConvEngine(mode="ntt").conv2d_batch(
            np.stack(xs), w, SHAPE, N
        )
        replies = [None] * len(xs)

        with serve(coalesce_window_s=0.25, max_batch=4) as server:
            def client(i):
                replies[i] = decode_reply(server.submit(
                    conv_request(i, "t", "ntt", None, N, SHAPE, xs[i], w)
                ))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(xs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats_dict()

        for i, (kind, rid, body) in enumerate(replies):
            assert kind == REP_RESULT
            assert np.array_equal(body["out"], expected[rid])
        # All four arrived within the window: at least one real batch formed.
        assert stats["largest_batch"] >= 2
        assert stats["batched_requests"] == 4
        assert stats["accounting"]["unaccounted"] == 0

    def test_mul_request_matches_serial_oracle(self):
        from repro.he import toy_preset
        from repro.he.poly import uniform_poly
        from repro.protocol.wire import serialize_poly

        params = toy_preset(n=N)
        rng = np.random.default_rng(5)
        blobs = [
            serialize_poly(uniform_poly(params.basis, rng)) for _ in range(3)
        ]
        weights = [rng.integers(-3, 4, size=N) for _ in range(3)]
        expected = execute_job(
            MSG_JOB_MUL,
            {
                "backend": "ntt",
                "config": None,
                "pattern": None,
                "basis": basis_to_wire(params.basis),
                "polys": list(blobs),
                "weights": [np.ascontiguousarray(w_) for w_ in weights],
            },
            WorkerState(),
        )["polys"]
        with serve() as server:
            kind, _, body = decode_reply(server.submit(mul_request(
                9, "t", "ntt", None, None, params.basis, blobs, weights,
            )))
        assert kind == REP_RESULT
        assert body["backend"] == "ntt"
        assert body["polys"] == expected


class TestAdmissionReplies:
    def test_rate_shed_is_explicit_and_isolated(self):
        x, w = conv_inputs()
        with serve(tenant_rate=0.5, tenant_burst=1) as server:
            first = decode_reply(server.submit(
                conv_request(1, "flood", "ntt", None, N, SHAPE, x, w)
            ))
            second = decode_reply(server.submit(
                conv_request(2, "flood", "ntt", None, N, SHAPE, x, w)
            ))
            other = decode_reply(server.submit(
                conv_request(3, "polite", "ntt", None, N, SHAPE, x, w)
            ))
            stats = server.stats_dict()
        assert first[0] == REP_RESULT
        assert second[0] == REP_SHED
        assert second[2]["reason"] == "rate"
        assert second[2]["retry_after_s"] > 0
        assert other[0] == REP_RESULT  # the flood never touched this bucket
        assert stats["shed"]["rate"] == 1
        assert stats["accounting"]["unaccounted"] == 0

    def test_expired_deadline_is_shed_as_infeasible(self):
        x, w = conv_inputs()
        with serve() as server:
            kind, _, body = decode_reply(server.submit(conv_request(
                1, "t", "ntt", None, N, SHAPE, x, w,
                deadline_at=time.monotonic() - 1.0,
            )))
            stats = server.stats_dict()
        assert kind == REP_SHED
        assert body["reason"] == "infeasible"
        assert stats["shed"]["infeasible"] == 1
        # Admitted then released pre-queue: the books still balance.
        assert stats["accounting"]["unaccounted"] == 0

    def test_ping_reports_health(self):
        with serve() as server:
            kind, rid, body = decode_reply(server.submit(ping_request(42)))
        assert kind == REP_PONG
        assert rid == 42
        assert body["health"]["status"] == "ok"
        assert body["health"]["ready"] is True
        assert body["health"]["breaker"] == "closed"

    def test_garbage_frame_gets_error_reply_and_is_counted(self):
        with serve() as server:
            kind, _, body = decode_reply(server.submit(b"not a frame"))
            stats = server.stats_dict()
        assert kind == REP_ERROR
        assert "wire error" in body["error"]
        assert stats["wire_errors"] == 1

    def test_submit_after_close_sheds_shutdown(self):
        x, w = conv_inputs()
        server = serve()
        server.close()
        kind, _, body = decode_reply(server.submit(
            conv_request(1, "t", "ntt", None, N, SHAPE, x, w)
        ))
        assert kind == REP_SHED
        assert body["reason"] == "shutdown"
        assert not server.ready()


class TestGuardAndLadder:
    def undersized_params(self):
        from repro.he import BfvParameters

        # Same predicted-exhaustion setup the protocol guard tests use: a
        # single 30-bit prime against t = 2^18 leaves a negative margin.
        return BfvParameters(n=64, plain_modulus=1 << 18, q_bits=(30,))

    def guard_inputs(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.integers(-3, 4, size=(1, 4, 4))
        w = rng.integers(-2, 3, size=(1, 1, 3, 3))
        return x, w

    def test_guard_forces_exact_mode_and_pushes_ladder(self):
        x, w = self.guard_inputs()
        expected = BatchedHConvEngine(mode="ntt").conv2d_batch(
            x[None], w, SHAPE, N
        )[0]
        with serve(
            guard_params=self.undersized_params(), ladder_recover_after=2
        ) as server:
            kind, _, body = decode_reply(server.submit(
                conv_request(1, "acme", "sparse", GOOD_CFG, N, SHAPE, x, w)
            ))
            snapshot = server.admission.snapshot()
            guard = server._guards["acme"]
            stats = server.stats_dict()
        assert kind == REP_RESULT
        assert body["mode"] == "ntt"          # rewritten, not refused
        assert body["degraded"] is True
        assert np.array_equal(body["out"], expected)  # exact result
        assert stats["degraded"] == 1
        assert snapshot["acme"]["level"] >= 1
        assert guard.events[0].reason == "predicted"

    def test_clean_completions_climb_the_ladder_back(self):
        x, w = self.guard_inputs(1)
        with serve(
            guard_params=self.undersized_params(), ladder_recover_after=2
        ) as server:
            decode_reply(server.submit(
                conv_request(1, "acme", "sparse", GOOD_CFG, N, SHAPE, x, w)
            ))
            assert server.admission.snapshot()["acme"]["level"] == 1
            # Exact-mode requests skip the guard and complete clean.
            for rid in (2, 3):
                kind, _, body = decode_reply(server.submit(
                    conv_request(rid, "acme", "ntt", None, N, SHAPE, x, w)
                ))
                assert kind == REP_RESULT
                assert body["degraded"] is False
            assert server.admission.snapshot()["acme"]["level"] == 0

    def test_raise_guard_policy_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="fallback"):
            ServeConfig(guard_policy="raise")


class TestBreakerEndToEnd:
    def test_worker_churn_trips_then_recovers_deterministically(self):
        x, w = conv_inputs(3)
        expected = BatchedHConvEngine(mode="ntt").conv2d_batch(
            x[None], w, SHAPE, N
        )[0]
        policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
        injector = ClusterFaultInjector(kill_before_jobs=[0])
        with ClusterExecutor(policy=policy, fault_injector=injector) as ex:
            server = InferenceServer(
                ServeConfig(
                    coalesce_window_s=0.0,
                    breaker_failures=1,
                    breaker_recovery_s=0.5,
                    reply_timeout_s=60.0,
                ),
                cluster=ex,
            )
            try:
                # 1: the injected SIGKILL is recovered inside the cluster
                # (correct result), but the churn trips the breaker.
                kind, _, body = decode_reply(server.submit(
                    conv_request(1, "t", "ntt", None, N, SHAPE, x, w)
                ))
                assert kind == REP_RESULT
                assert body["path"] == "cluster"
                assert np.array_equal(body["out"], expected)
                assert server.breaker.state() == "open"
                assert server.stats.breaker_trips == 1

                # 2: while open, traffic takes the serial fallback --
                # bit-identical, so the client cannot tell.
                ex.supervisor.fault_injector = None
                kind, _, body = decode_reply(server.submit(
                    conv_request(2, "t", "ntt", None, N, SHAPE, x, w)
                ))
                assert kind == REP_RESULT
                assert body["path"] == "serial"
                assert np.array_equal(body["out"], expected)

                # 3: after the recovery window a probe goes to the (now
                # healthy) cluster and closes the breaker.
                time.sleep(0.6)
                kind, _, body = decode_reply(server.submit(
                    conv_request(3, "t", "ntt", None, N, SHAPE, x, w)
                ))
                assert kind == REP_RESULT
                assert body["path"] == "cluster"
                assert np.array_equal(body["out"], expected)
                assert server.breaker.state() == "closed"

                stats = server.stats_dict()
                assert stats["breaker"]["trips"] == 1
                assert stats["breaker"]["recoveries"] == 1
                transitions = [
                    (t["from"], t["to"])
                    for t in stats["breaker"]["transitions"]
                ]
                assert transitions == [
                    ("closed", "open"),
                    ("open", "half_open"),
                    ("half_open", "closed"),
                ]
                assert stats["cluster_recoveries"] >= 1
                assert stats["serial_routed_batches"] >= 1
                assert stats["cluster_routed_batches"] >= 2
                assert stats["accounting"]["unaccounted"] == 0
            finally:
                server.close()


class TestDeadlineReplies:
    def test_missed_deadline_yields_deadline_reply_not_result(self):
        # Prime the estimator so a tight-but-future deadline is refused as
        # infeasible; an *unprimed* server instead detects the miss after
        # execution and answers with a deadline notice.  Either way the
        # request terminates explicitly -- here we force the post-execution
        # path with a deadline that expires inside the coalescer window.
        x, w = conv_inputs(4)
        with serve(coalesce_window_s=0.3, max_batch=4) as server:
            kind, _, body = decode_reply(server.submit(conv_request(
                1, "t", "ntt", None, N, SHAPE, x, w,
                deadline_at=time.monotonic() + 0.05,
            )))
            stats = server.stats_dict()
        assert kind == REP_DEADLINE
        assert body["late_by_s"] >= 0.0
        assert stats["deadline_misses"] == 1
        assert stats["accounting"]["unaccounted"] == 0
