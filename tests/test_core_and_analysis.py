"""Tests for the FLASH facade, HConv pipelines and analysis profiles."""

import numpy as np
import pytest

from repro.analysis import (
    CpuCostModel,
    format_bar_chart,
    format_fractions,
    format_table,
    latency_profile,
    ntt_domain_weight_storage_gb,
    raw_weight_storage_gb,
    residual_block_profile,
)
from repro.core import (
    Flash,
    FlashConfig,
    hconv_fft,
    hconv_flash,
    hconv_ntt,
    ntt_polymul_factory,
)
from repro.encoding import ConvShape, LinearShape, conv2d_direct
from repro.fftcore import ApproxFftConfig
from repro.he import toy_preset


@pytest.fixture(scope="module")
def small_case():
    rng = np.random.default_rng(0)
    shape = ConvShape.square(2, 4, 2, 3)
    x = rng.integers(-8, 8, size=(2, 4, 4))
    w = rng.integers(-8, 8, size=(2, 2, 3, 3))
    return shape, x, w


class TestHconvPipelines:
    def test_ntt_pipeline_exact(self, small_case):
        shape, x, w = small_case
        got = hconv_ntt(x, w, shape, 64)
        assert np.array_equal(got, conv2d_direct(x, w))

    def test_fft_pipeline_exact(self, small_case):
        shape, x, w = small_case
        got = hconv_fft(x, w, shape, 64)
        assert np.array_equal(got, conv2d_direct(x, w))

    def test_flash_pipeline_high_precision_exact(self, small_case):
        shape, x, w = small_case
        cfg = ApproxFftConfig(n=32, stage_widths=40)
        got = hconv_flash(x, w, shape, 64, cfg)
        assert np.array_equal(got, conv2d_direct(x, w))

    def test_flash_pipeline_low_precision_close(self, small_case):
        shape, x, w = small_case
        cfg = ApproxFftConfig(n=32, stage_widths=14, twiddle_k=4)
        got = hconv_flash(x, w, shape, 64, cfg)
        exact = conv2d_direct(x, w)
        assert np.abs(got - exact).max() <= np.abs(exact).max() * 0.2 + 4

    def test_ntt_factory_rejects_overflow(self):
        with pytest.raises(ValueError):
            ntt_polymul_factory(64, 1 << 50)


class TestFlashConfig:
    def test_default_matches_paper(self):
        cfg = FlashConfig()
        assert cfg.n == 4096
        assert cfg.data_width == 27
        assert cfg.twiddle_k == 5
        assert cfg.design.approx_pes == 60

    def test_weight_fft_config_core_size(self):
        cfg = FlashConfig(params=toy_preset(n=64))
        assert cfg.weight_fft_config().n == 32

    def test_stage_width_override(self):
        widths = [12] * 5
        cfg = FlashConfig(params=toy_preset(n=64), stage_widths=widths)
        assert cfg.weight_fft_config().stage_widths == widths

    def test_backends(self):
        cfg = FlashConfig(params=toy_preset(n=64))
        assert cfg.flash_backend().weight_config is not None
        assert cfg.fp_backend().weight_config is None

    def test_describe(self):
        assert "k=5" in FlashConfig(params=toy_preset()).describe()


class TestFlashFacade:
    @pytest.fixture(scope="class")
    def flash(self):
        return Flash(FlashConfig(params=toy_preset(n=64, share_bits=16)))

    def test_private_conv_end_to_end(self, flash, small_case):
        shape, x, w = small_case
        rng = np.random.default_rng(1)
        result = flash.private_conv2d(x, w, shape, rng)
        # Approximate backend with default 27-bit datapath: LSB errors only.
        assert result.max_error <= flash.config.params.t >> 6

    def test_private_conv_exact_backend(self, flash, small_case):
        shape, x, w = small_case
        rng = np.random.default_rng(2)
        result = flash.private_conv2d(x, w, shape, rng, exact=True)
        assert result.exact

    def test_private_linear(self, flash):
        rng = np.random.default_rng(3)
        x = rng.integers(-20, 20, size=16)
        w = rng.integers(-8, 8, size=(4, 16))
        result = flash.private_linear(x, w, rng, exact=True)
        assert result.exact

    def test_session_reused(self, flash):
        rng = np.random.default_rng(4)
        assert flash.session(rng) is flash.session(rng)

    def test_estimate_layer_conv(self):
        flash = Flash()
        est = flash.estimate_layer(ConvShape.square(64, 28, 64, 3, padding=1))
        assert est.speedup > 1
        assert 0 < est.sparsity_saving < 1
        assert est.flash_energy_pj["weight"] > 0

    def test_estimate_layer_linear(self):
        flash = Flash()
        est = flash.estimate_layer(LinearShape(512, 1000))
        assert est.sparsity_saving == 0.0

    def test_estimate_rejects_unknown(self):
        with pytest.raises(TypeError):
            Flash().estimate_layer("conv")

    def test_explore_smoke(self):
        flash = Flash(FlashConfig(params=toy_preset(n=256, share_bits=16)))
        res = flash.explore(ConvShape.square(2, 8, 4, 3), budget=16, seed=0)
        assert len(res.run.points) == 16


class TestProfiles:
    @pytest.fixture(scope="class")
    def cost(self):
        return CpuCostModel(n=4096, ntt_seconds=1e-3, pointwise_seconds=1e-5)

    def test_measure_returns_positive(self):
        cost = CpuCostModel.measure(n=256, repeats=2)
        assert cost.ntt_seconds > 0
        assert cost.pointwise_seconds > 0

    def test_residual_block_weight_ntt_dominates(self, cost):
        # Figure 1's claim: weight NTTs are the main cost of the block.
        profile = residual_block_profile("resnet50", cost=cost)
        frac = profile.fractions()
        assert frac["weight_ntt"] > 0.5
        assert profile.computation_s > profile.communication_s

    def test_latency_profile_totals(self, cost):
        from repro.hw import conv_layer_workload

        wl = [conv_layer_workload(ConvShape.square(2, 4, 2, 3), 64)]
        profile = latency_profile(wl, cost=cost)
        assert profile.total_s == pytest.approx(
            profile.computation_s + profile.communication_s
        )
        assert sum(profile.fractions().values()) == pytest.approx(1.0)

    def test_ntt_weight_storage_matches_paper(self):
        # Paper: ~23 GB for ResNet-50 weights in the NTT domain.
        gb = ntt_domain_weight_storage_gb("resnet50")
        assert 15 < gb < 30

    def test_storage_blowup_over_1000x(self):
        blowup = ntt_domain_weight_storage_gb("resnet50") / (
            raw_weight_storage_gb("resnet50", bits=4)
        )
        assert blowup > 1000


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["name", "value"], [["a", 1.5], ["long-name", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_bar_chart(self):
        out = format_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_format_fractions(self):
        out = format_fractions({"x": 0.25, "y": 0.75})
        assert "75" in out

    def test_zero_values(self):
        out = format_bar_chart(["a"], [0.0])
        assert "0" in out
