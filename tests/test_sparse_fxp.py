"""Tests for the combined sparse + fixed-point engine (the FLASH weight path)."""

import numpy as np
import pytest

from repro.encoding import Conv2dEncoder, ConvShape
from repro.fftcore import ApproxFftConfig, ApproxNegacyclic, FixedPointFft
from repro.ntt import negacyclic_convolution_naive
from repro.sparse import SparseFft
from repro.sparse.sparse_fxp import SparseApproxNegacyclic, SparseFixedPointFft


def _sparse_input(n, count, seed=0, scale=0.2):
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=count, replace=False)
    x = np.zeros(n, dtype=np.complex128)
    x[idx] = scale * (
        rng.standard_normal(count) + 1j * rng.standard_normal(count)
    )
    return x


class TestSparseFixedPointFft:
    def test_dense_input_matches_dense_engine(self):
        # On dense inputs the sparse engine must be bit-compatible with
        # FixedPointFft (same quantization points, same twiddles).
        cfg = ApproxFftConfig(n=32, stage_widths=16, twiddle_k=5)
        rng = np.random.default_rng(1)
        x = 0.2 * (rng.standard_normal(32) + 1j * rng.standard_normal(32))
        dense = FixedPointFft(cfg, sign=-1)(x)
        sparse = SparseFixedPointFft(cfg, sign=-1).run(x)
        np.testing.assert_allclose(sparse.values, dense, atol=1e-12)
        assert sparse.mults == sparse.dense_mults

    @pytest.mark.parametrize("count", [1, 3, 9])
    def test_sparse_high_precision_matches_exact_fft(self, count):
        cfg = ApproxFftConfig(n=64, stage_widths=45)
        engine = SparseFixedPointFft(cfg, sign=-1)
        x = _sparse_input(64, count, seed=count)
        result = engine.run(x)
        exact = np.fft.fft(x) * engine.output_scale
        np.testing.assert_allclose(result.values, exact, atol=1e-9)

    def test_mult_count_matches_exact_engine(self):
        # The combined engine performs the same skipping/merging as the
        # exact engine (up to exponent-aliasing of +-W^e groups).
        cfg = ApproxFftConfig(n=64, stage_widths=30)
        fxp_engine = SparseFixedPointFft(cfg, sign=-1)
        exact_engine = SparseFft(64, sign=-1)
        for count in (1, 4, 16):
            x = _sparse_input(64, count, seed=count + 10)
            got = fxp_engine.run(x).mults
            ref = exact_engine.run(x).mults
            assert abs(got - ref) <= max(2, ref // 4)

    def test_paper_example_counts(self):
        cfg = ApproxFftConfig(n=16, stage_widths=30)
        engine = SparseFixedPointFft(cfg, sign=-1)
        # Example 4.1: contiguous 4.
        x = np.zeros(16, dtype=np.complex128)
        x[[0, 8, 4, 12]] = [0.1, 0.2, 0.3, 0.4]
        assert engine.run(x).mults == 4
        # Example 4.2: single valid at position 6.
        x = np.zeros(16, dtype=np.complex128)
        x[6] = 0.5
        assert engine.run(x).mults == 4

    def test_merging_single_rom_quantization_beats_dense(self):
        # A merged chain is quantized once through the ROM; the dense
        # engine quantizes every stage, so for a single-valid input the
        # sparse engine is at least as accurate.
        cfg = ApproxFftConfig(n=64, stage_widths=30, twiddle_k=4)
        x = np.zeros(64, dtype=np.complex128)
        x[5] = 0.3 + 0.1j
        exact = np.fft.fft(x) / 64
        sparse_err = np.max(
            np.abs(SparseFixedPointFft(cfg, sign=-1).run(x).values - exact)
        )
        dense_err = np.max(np.abs(FixedPointFft(cfg, sign=-1)(x) - exact))
        assert sparse_err <= dense_err + 1e-12

    def test_structural_pattern_with_zero_values(self):
        cfg = ApproxFftConfig(n=32, stage_widths=20)
        engine = SparseFixedPointFft(cfg, sign=-1)
        x = np.zeros(32, dtype=np.complex128)
        x[3] = 0.25
        result = engine.run(x, valid=[3, 9, 21])
        exact = np.fft.fft(x) * engine.output_scale
        np.testing.assert_allclose(result.values, exact, atol=1e-5)

    def test_rejects_stray_nonzeros(self):
        cfg = ApproxFftConfig(n=16, stage_widths=20)
        engine = SparseFixedPointFft(cfg, sign=-1)
        x = np.zeros(16, dtype=np.complex128)
        x[2] = 0.5
        with pytest.raises(ValueError):
            engine.run(x, valid=[1])

    def test_sign_validation(self):
        with pytest.raises(ValueError):
            SparseFixedPointFft(ApproxFftConfig(n=16, stage_widths=20), sign=0)

    def test_all_zero(self):
        cfg = ApproxFftConfig(n=16, stage_widths=20)
        result = SparseFixedPointFft(cfg).run(np.zeros(16, dtype=np.complex128))
        assert result.mults == 0
        np.testing.assert_array_equal(result.values, np.zeros(16))


class TestSparseApproxNegacyclic:
    @pytest.fixture(scope="class")
    def setup(self):
        n = 64
        shape = ConvShape.square(2, 4, 2, 3)
        enc = Conv2dEncoder(shape, n)
        rng = np.random.default_rng(3)
        w = rng.integers(-8, 8, size=(2, 2, 3, 3))
        wpoly = enc.encode_weights(w)[(0, 0)]
        a = rng.integers(-100, 100, size=n)
        return n, enc, wpoly, a

    def test_high_precision_exact(self, setup):
        n, enc, wpoly, a = setup
        cfg = ApproxFftConfig(n=n // 2, stage_widths=45)
        pipe = SparseApproxNegacyclic(
            n, cfg, valid_pattern=enc.weight_valid_indices(0)
        )
        got = pipe.multiply(wpoly, a)
        expected = negacyclic_convolution_naive(wpoly, a)
        assert [int(v) for v in got] == [int(v) for v in expected]
        # And it actually skipped work.
        assert pipe.last_mults < pipe.engine.dense_mults

    def test_matches_dense_approx_pipeline_closely(self, setup):
        n, enc, wpoly, a = setup
        cfg = ApproxFftConfig(n=n // 2, stage_widths=18, twiddle_k=6)
        sparse_pipe = SparseApproxNegacyclic(
            n, cfg, valid_pattern=enc.weight_valid_indices(0)
        )
        dense_pipe = ApproxNegacyclic(n, cfg)
        got_sparse = np.array(
            [int(v) for v in sparse_pipe.multiply(wpoly, a)], dtype=np.int64
        )
        got_dense = np.array(
            [int(v) for v in dense_pipe.multiply(wpoly, a)], dtype=np.int64
        )
        exact = np.array(
            [int(v) for v in negacyclic_convolution_naive(wpoly, a)],
            dtype=np.int64,
        )
        # Both approximate paths stay near the exact result, and the
        # sparse path is not worse than the dense approximate path.
        scale = max(1, np.abs(exact).max())
        assert np.abs(got_dense - exact).max() / scale < 0.1
        assert (
            np.abs(got_sparse - exact).max()
            <= np.abs(got_dense - exact).max() + scale * 0.02
        )

    def test_wrong_core_size_rejected(self):
        with pytest.raises(ValueError):
            SparseApproxNegacyclic(64, ApproxFftConfig(n=64, stage_widths=20))

    def test_pattern_optional(self, setup):
        n, _, wpoly, a = setup
        cfg = ApproxFftConfig(n=n // 2, stage_widths=45)
        pipe = SparseApproxNegacyclic(n, cfg)  # pattern inferred per call
        got = pipe.multiply(wpoly, a)
        expected = negacyclic_convolution_naive(wpoly, a)
        assert [int(v) for v in got] == [int(v) for v in expected]
