"""ResilientSession edge behaviour: dead letters, reordering, stalls.

Satellite tier for the cluster PR: the supervisor reuses the session's
:class:`RetryPolicy` machinery, so the edge semantics it depends on --
one dead letter per exhausted message, duplicate discard on foreign
sequence numbers, per-delivery timeouts that never wall-block, seeded
backoff determinism -- are pinned down here against crafted channels.
"""

import time

import pytest

from repro.faults import (
    PerfectChannel,
    ResilientSession,
    RetryPolicy,
    TransportError,
    encode_frame,
)


class _StalledChannel(PerfectChannel):
    """Every delivery arrives, but always past any sane timeout."""

    def __init__(self, latency=1e6):
        self.latency = latency
        self.frames = 0

    def transmit(self, frame):
        self.frames += 1
        return [(self.latency, frame)]


class _ReorderChannel(PerfectChannel):
    """Delivers the *previous* frame ahead of the current one.

    Models a network that reorders in-flight packets: the receiver sees a
    stale frame (valid CRC, foreign sequence number) before the one it
    asked for.
    """

    def __init__(self):
        self.held = None

    def transmit(self, frame):
        out = []
        if self.held is not None:
            out.append((0.0, self.held))
        self.held = frame
        out.append((0.0, frame))
        return out


class _BadMagicOnceChannel(PerfectChannel):
    """First delivery has a mangled frame header, retry is clean."""

    def __init__(self):
        self.sent = 0

    def transmit(self, frame):
        self.sent += 1
        if self.sent == 1:
            mangled = bytearray(frame)
            mangled[0] ^= 0xFF
            return [(0.0, bytes(mangled))]
        return [(0.0, frame)]


class TestDeadLetterExactlyOnce:
    def test_one_dead_letter_per_exhausted_message(self):
        class _BlackHole(PerfectChannel):
            def transmit(self, frame):
                return []

        session = ResilientSession(
            channel=_BlackHole(), policy=RetryPolicy(max_attempts=3)
        )
        for _ in range(2):
            with pytest.raises(TransportError):
                session.transfer_bytes(b"doomed")
        assert session.stats.dead_letters == 2
        assert len(session.stats.dead_letter_log) == 2
        # Each letter records its own message exactly once.
        seqs = [letter.seq for letter in session.stats.dead_letter_log]
        assert len(set(seqs)) == 2
        assert all(
            letter.attempts == 3 for letter in session.stats.dead_letter_log
        )
        assert session.stats.attempts == 6

    def test_session_survives_a_dead_letter(self):
        # A dead-lettered message must not poison the session: swap in a
        # healthy channel and the next transfer goes through first try.
        session = ResilientSession(
            channel=_StalledChannel(), policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(TransportError):
            session.transfer_bytes(b"first")
        session.channel = PerfectChannel()
        assert session.transfer_bytes(b"second") == b"second"
        assert session.stats.dead_letters == 1


class TestReorderedDelivery:
    def test_stale_frame_discarded_fresh_frame_accepted(self):
        session = ResilientSession(channel=_ReorderChannel())
        assert session.transfer_bytes(b"alpha") == b"alpha"
        # Second transfer sees the held copy of "alpha" (seq 0) before its
        # own frame (seq 1): the foreign seq is discarded, not returned.
        assert session.transfer_bytes(b"beta") == b"beta"
        assert session.transfer_bytes(b"gamma") == b"gamma"
        assert session.stats.duplicates_discarded == 2
        assert session.stats.retries == 0
        assert session.stats.messages == 3

    def test_duplicate_of_own_frame_after_acceptance_discarded(self):
        class _EchoTwice(PerfectChannel):
            def transmit(self, frame):
                return [(0.0, frame), (0.0, frame)]

        session = ResilientSession(channel=_EchoTwice())
        assert session.transfer_bytes(b"payload") == b"payload"
        assert session.stats.duplicates_discarded == 1

    def test_only_foreign_seq_never_satisfies_transfer(self):
        class _AlwaysStale(PerfectChannel):
            def transmit(self, frame):
                return [(0.0, encode_frame(0x7FFFFFFF, b"stale"))]

        session = ResilientSession(
            channel=_AlwaysStale(), policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(TransportError):
            session.transfer_bytes(b"wanted")
        assert session.stats.duplicates_discarded == 2
        assert session.stats.dead_letters == 1


class TestStalledChannelTimeouts:
    def test_per_delivery_timeout_fires_without_wall_blocking(self):
        # Latency is virtual: a delivery "takes" 11 days, the test must
        # still return instantly with every attempt counted as a timeout.
        channel = _StalledChannel()
        session = ResilientSession(
            channel=channel,
            policy=RetryPolicy(max_attempts=5, timeout=0.25),
        )
        started = time.monotonic()
        with pytest.raises(TransportError, match="undeliverable"):
            session.transfer_bytes(b"x" * 4096)
        assert time.monotonic() - started < 2.0
        assert channel.frames == 5
        assert session.stats.timeouts == 5
        assert session.stats.backoff_seconds > 0.0

    def test_delivery_exactly_at_timeout_is_accepted(self):
        session = ResilientSession(
            channel=_StalledChannel(latency=0.25),
            policy=RetryPolicy(timeout=0.25),
        )
        assert session.transfer_bytes(b"edge") == b"edge"
        assert session.stats.timeouts == 0

    def test_undecodable_frame_counted_and_retried(self):
        session = ResilientSession(channel=_BadMagicOnceChannel())
        assert session.transfer_bytes(b"data") == b"data"
        assert session.stats.decode_failures == 1
        assert session.stats.retries == 1


class TestBackoffDeterminism:
    def test_backoff_deterministic_under_seed(self):
        class _FailN(PerfectChannel):
            def __init__(self, n):
                self.n = n

            def transmit(self, frame):
                if self.n > 0:
                    self.n -= 1
                    return []
                return [(0.0, frame)]

        totals = []
        for _ in range(2):
            session = ResilientSession(channel=_FailN(6), seed=123)
            session.transfer_bytes(b"retry me")
            totals.append(session.stats.backoff_seconds)
        assert totals[0] == totals[1] > 0.0

    def test_backoff_doubles_and_caps_without_jitter(self):
        import random

        policy = RetryPolicy(
            max_attempts=12, base_delay=0.01, max_delay=0.05, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff(attempt, rng) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_bounded_by_policy(self):
        import random

        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 8):
            base = min(policy.max_delay, 0.01 * 2 ** (attempt - 1))
            delay = policy.backoff(attempt, rng)
            assert base <= delay <= base * 1.5
