"""Tests for sparsity-pattern extraction, folding and classification."""

import numpy as np
import pytest

from repro.encoding import Conv2dEncoder, ConvShape
from repro.sparse import (
    bit_reversed_positions,
    classify_pattern,
    contiguous_block_pattern,
    conv_like_pattern,
    conv_weight_pattern,
    fold_valid_indices,
    uniform_stride_pattern,
)


class TestFolding:
    def test_fold_maps_mod_half(self):
        out = fold_valid_indices([0, 5, 32, 37], 64)
        assert out.tolist() == [0, 5]

    def test_fold_dedupes(self):
        out = fold_valid_indices([1, 33], 64)
        assert out.tolist() == [1]

    def test_fold_preserves_distinct_low_half(self):
        out = fold_valid_indices([0, 1, 2], 64)
        assert out.tolist() == [0, 1, 2]


class TestBitReversedPositions:
    def test_power_of_two_strides_become_contiguous(self):
        # Valid data at multiples of n/2^x lands contiguously after
        # bit-reverse (the paper's skipping precondition for H*W = 2^k).
        n = 64
        pos = bit_reversed_positions([0, 16, 32, 48], n)
        assert pos.tolist() == [0, 1, 2, 3]

    def test_contiguous_inputs_scatter(self):
        n = 64
        pos = bit_reversed_positions([0, 1, 2, 3], n)
        assert pos.tolist() == [0, 16, 32, 48]

    def test_involution_with_fft_ordering(self):
        n = 16
        for i in range(n):
            (pos,) = bit_reversed_positions([i], n)
            (back,) = bit_reversed_positions([pos], n)
            assert back == i


class TestClassification:
    def test_power_of_two_plane_is_contiguous(self):
        # H = W = 16 (power of two): multiples of H*W bit-reverse to a
        # contiguous prefix -> "skipping" (Section IV-B first case).
        n = 1024
        pattern = np.arange(4) * 256
        stats = classify_pattern(pattern, n)
        assert stats.kind == "contiguous"
        assert stats.valid_count == 4

    def test_power_of_two_stride_is_contiguous(self):
        # Uniform power-of-two strides in natural order bit-reverse to a
        # contiguous prefix: the skipping case.
        n = 1024
        stats = classify_pattern(uniform_stride_pattern(n, 8), n)
        assert stats.kind == "contiguous"

    def test_contiguous_taps_are_scattered(self):
        # Contiguous natural-order taps (a kernel row) bit-reverse to
        # maximally spread positions: the merging case.
        n = 1024
        stats = classify_pattern([0, 1, 2], n)
        assert stats.kind == "scattered"

    def test_offset_stride_is_mixed(self):
        n = 1024
        stats = classify_pattern(uniform_stride_pattern(n, 8) + 1, n)
        assert stats.kind == "mixed"

    def test_empty(self):
        stats = classify_pattern([], 64)
        assert stats.kind == "empty"
        assert stats.sparsity == 1.0

    def test_dense(self):
        stats = classify_pattern(range(64), 64)
        assert stats.kind == "dense"
        assert stats.sparsity == 0.0

    def test_sparsity_value(self):
        stats = classify_pattern([0, 1], 64)
        assert stats.sparsity == pytest.approx(1 - 2 / 64)


class TestSyntheticPatterns:
    def test_uniform_stride(self):
        assert uniform_stride_pattern(16, 4).tolist() == [0, 4, 8, 12]

    def test_contiguous_block(self):
        assert contiguous_block_pattern(16, 3).tolist() == [0, 1, 2]

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            uniform_stride_pattern(16, 0)
        with pytest.raises(ValueError):
            contiguous_block_pattern(16, 17)

    def test_conv_like_matches_encoder(self):
        # The synthetic generator must reproduce the real encoder pattern
        # for a single-channel tile.
        shape = ConvShape.square(1, 8, 1, 3)
        enc = Conv2dEncoder(shape, 64)
        real = enc.weight_valid_indices(0)
        synth = conv_like_pattern(64, channels=1, plane=64, kernel=3, row_stride=8)
        assert synth.tolist() == real.tolist()


class TestConvWeightPattern:
    def test_resnet_layer_pattern_is_sparse(self):
        shape = ConvShape.square(64, 56, 64, 3, padding=1)
        enc = Conv2dEncoder(shape, 4096)
        pattern = conv_weight_pattern(enc)
        assert 0 < len(pattern) <= 9
        assert len(pattern) / 2048 < 0.01

    def test_pattern_is_folded(self):
        shape = ConvShape.square(2, 4, 1, 3)
        enc = Conv2dEncoder(shape, 64)
        pattern = conv_weight_pattern(enc)
        assert pattern.max() < 32
