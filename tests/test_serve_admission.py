"""Admission control, degradation ladders and serve accounting.

All clock-dependent behaviour runs against an injected fake clock, so
token refills, retry hints and percentile windows are exact rather than
timing-dependent.
"""

import pytest

from repro.serve import (
    LADDER,
    SHED_REASONS,
    AdmissionController,
    RollingLatency,
    ServeStats,
    TokenBucket,
    clamp_mode,
)
from repro.serve.admission import ladder_level


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += float(dt)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.try_acquire()
        assert not ok
        assert retry_after == pytest.approx(0.1)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(0.1)  # exactly one token accrues
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestLadder:
    def test_levels_are_ordered_fast_to_exact(self):
        assert LADDER == ("sparse", "flash", "ntt")
        assert ladder_level("sparse") == 0
        assert ladder_level("ntt") == 2

    def test_clamp_never_promotes(self):
        assert clamp_mode("sparse", 0) == "sparse"
        assert clamp_mode("sparse", 1) == "flash"
        assert clamp_mode("sparse", 2) == "ntt"
        assert clamp_mode("flash", 2) == "ntt"
        # A request already at the bottom rung stays there.
        assert clamp_mode("ntt", 0) == "ntt"

    def test_modes_outside_ladder_are_untouched(self):
        # "fft" is not a ladder mode: degradation never rewrites it.
        assert clamp_mode("fft", 2) == "fft"


class TestAdmissionController:
    def controller(self, **kwargs):
        clock = kwargs.pop("clock", FakeClock())
        defaults = dict(
            tenant_rate=100.0,
            tenant_burst=8,
            tenant_queue_limit=2,
            server_queue_limit=3,
            ladder_recover_after=2,
        )
        defaults.update(kwargs)
        return AdmissionController(clock=clock, **defaults), clock

    def test_admit_release_pairs_track_depth(self):
        ctl, _ = self.controller()
        ok, reason, _ = ctl.admit("a")
        assert ok and reason == ""
        assert ctl.depth() == 1
        ctl.release("a")
        assert ctl.depth() == 0

    def test_tenant_queue_bound(self):
        ctl, _ = self.controller()
        assert ctl.admit("a")[0]
        assert ctl.admit("a")[0]
        ok, reason, retry_after = ctl.admit("a")
        assert not ok
        assert reason == "tenant_queue"
        assert retry_after > 0
        # Releasing frees the tenant slot again.
        ctl.release("a")
        assert ctl.admit("a")[0]

    def test_server_queue_bound_spans_tenants(self):
        ctl, _ = self.controller()
        assert ctl.admit("a")[0]
        assert ctl.admit("a")[0]
        assert ctl.admit("b")[0]
        ok, reason, _ = ctl.admit("c")
        assert not ok
        assert reason == "server_queue"

    def test_flooding_tenant_cannot_starve_others(self):
        ctl, _ = self.controller(
            tenant_burst=2, tenant_queue_limit=32, server_queue_limit=64
        )
        sheds = 0
        for _ in range(10):
            ok, reason, _ = ctl.admit("flood")
            if ok:
                ctl.release("flood")
            else:
                assert reason == "rate"
                sheds += 1
        assert sheds == 8  # burst of 2, no time passes
        # The polite tenant's bucket is untouched by the flood.
        ok, reason, _ = ctl.admit("polite")
        assert ok

    def test_ladder_degrade_and_recover(self):
        ctl, _ = self.controller(ladder_recover_after=2)
        assert ctl.effective_mode("a", "sparse") == "sparse"
        assert ctl.degrade("a") == 1
        assert ctl.effective_mode("a", "sparse") == "flash"
        assert ctl.degrade("a") == 2
        assert ctl.effective_mode("a", "sparse") == "ntt"
        # Two clean completions climb exactly one rung.
        ctl.note_clean_completion("a")
        assert ctl.note_clean_completion("a") == 1
        assert ctl.effective_mode("a", "sparse") == "flash"
        # A fresh degradation resets the streak.
        ctl.note_clean_completion("a")
        ctl.degrade("a")
        assert ctl.effective_mode("a", "sparse") == "ntt"

    def test_snapshot_names_mode_floor(self):
        ctl, _ = self.controller()
        ctl.admit("a")
        ctl.degrade("a")
        snap = ctl.snapshot()["a"]
        assert snap["queued"] == 1
        assert snap["level"] == 1
        assert snap["mode_floor"] == "flash"
        assert snap["degradations"] == 1


class TestRollingLatency:
    def test_nearest_rank_percentiles(self):
        window = RollingLatency(window=100)
        for v in range(1, 101):  # 1..100 ms
            window.record(v / 1e3)
        assert window.percentile(50.0) == pytest.approx(0.050)
        assert window.percentile(99.0) == pytest.approx(0.099)
        assert window.percentile(100.0) == pytest.approx(0.100)

    def test_window_is_bounded(self):
        window = RollingLatency(window=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            window.record(v)
        assert len(window) == 4
        assert window.percentile(1.0) == pytest.approx(2.0)  # 1.0 evicted

    def test_empty_window_and_bad_pct(self):
        window = RollingLatency()
        assert window.percentile(99.0) == 0.0
        with pytest.raises(ValueError):
            window.percentile(0.0)


class TestServeStatsAccounting:
    def test_identity_balances_with_post_admit_sheds(self):
        stats = ServeStats(clock=FakeClock())
        for _ in range(6):
            stats.record_received("a")
        stats.record_shed("a", "rate")                       # pre-admission
        for _ in range(5):
            stats.record_admitted("a")
        stats.record_completed("a", 0.010)
        stats.record_deadline_miss("a")
        stats.record_error("a")
        stats.record_shed("a", "infeasible", post_admit=True)
        acct = stats.accounting(in_flight=1)
        assert acct["received"] == 6
        assert acct["admitted"] == 5
        assert acct["admission_shed"] == 1
        assert acct["terminal"] == 4
        assert acct["unaccounted"] == 0

    def test_unaccounted_flags_a_lost_request(self):
        stats = ServeStats(clock=FakeClock())
        stats.record_received("a")
        stats.record_admitted("a")
        # ... and no terminal record: the identity must expose the loss.
        assert stats.accounting(in_flight=0)["unaccounted"] == 1

    def test_shutdown_shed_can_be_pre_admission(self):
        # A request refused at the door while closing never counted as
        # admitted; the identity must not go negative.
        stats = ServeStats(clock=FakeClock())
        stats.record_received("a")
        stats.record_shed("a", "shutdown")  # pre-admission refusal
        acct = stats.accounting()
        assert acct["admission_shed"] == 1
        assert acct["unaccounted"] == 0

    def test_unknown_shed_reason_rejected(self):
        stats = ServeStats(clock=FakeClock())
        with pytest.raises(ValueError):
            stats.record_shed("a", "because")
        assert set(SHED_REASONS) == set(stats.shed)

    def test_breaker_transitions_count_trips_and_recoveries(self):
        stats = ServeStats(clock=FakeClock())
        stats.record_breaker_transition("closed", "open", "3 failures")
        stats.record_breaker_transition("open", "half_open", "probe window")
        stats.record_breaker_transition("half_open", "open", "probe failed")
        stats.record_breaker_transition("open", "half_open", "probe window")
        stats.record_breaker_transition("half_open", "closed", "probe ok")
        assert stats.breaker_trips == 2
        assert stats.breaker_recoveries == 1
        assert len(stats.breaker_transitions) == 5

    def test_to_dict_round_trip_sections(self):
        clock = FakeClock()
        stats = ServeStats(clock=clock)
        stats.record_received("a")
        stats.record_admitted("a")
        clock.advance(0.020)
        stats.record_completed("a", 0.020, degraded=True)
        stats.record_batch(3, "cluster", recoveries=1)
        d = stats.to_dict(in_flight=0)
        assert d["degraded"] == 1
        assert d["largest_batch"] == 3
        assert d["cluster_routed_batches"] == 1
        assert d["cluster_recoveries"] == 1
        assert d["p50_ms"] == pytest.approx(20.0)
        assert d["per_tenant"]["a"]["degraded"] == 1
        assert d["accounting"]["unaccounted"] == 0
        assert "serve:" in stats.describe()
