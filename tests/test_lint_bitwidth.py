"""Tests for the bit-width dataflow analyzer (repro.lint.bitwidth)."""

import pytest

from repro.core.config import FlashConfig
from repro.dse.space import DesignSpace
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.lint.bitwidth import (
    GUARD_TOLERANCE_BITS,
    analyze_design_space,
    analyze_fft_config,
)


def config(n=256, dw=27, k=5, max_shift=16, **kw):
    return ApproxFftConfig(
        n=n, stage_widths=dw, twiddle_k=k, twiddle_max_shift=max_shift, **kw
    )


class TestDefaultDatapath:
    def test_flash_default_is_overflow_free(self):
        """The deployed FlashConfig datapath must verify clean."""
        report = analyze_fft_config(
            FlashConfig().weight_fft_config(), label="flash-default"
        )
        assert report.ok
        assert report.findings() == []
        assert report.margin_bits > 0

    def test_exact_twiddles_no_growth(self):
        """With exact twiddles the halved butterflies never gain magnitude."""
        report = analyze_fft_config(config(k=0))
        assert report.ok
        assert all(s.twiddle_gain == 1.0 for s in report.stages)
        # Only rounding bumps remain: tiny at 27-bit registers.
        assert report.worst_overshoot_bits < 1e-6


class TestUnderBudgetedConfig:
    def test_narrow_registers_overflow(self):
        """4-bit registers with k=2 twiddles blow the magnitude budget."""
        report = analyze_fft_config(config(dw=4, k=2), label="bad")
        assert not report.ok
        assert report.worst_overshoot_bits > GUARD_TOLERANCE_BITS
        findings = report.findings()
        assert findings and all(f.rule_id == "BW001" for f in findings)
        assert findings[0].path == "bad"
        assert "register range" in findings[0].message

    def test_overflow_localized_to_stages(self):
        """Early stages may be fine; the report names the failing ones."""
        report = analyze_fft_config(config(dw=4, k=2))
        flagged = [s.stage for s in report.stages if not s.ok]
        assert flagged
        assert flagged == list(range(flagged[0], report.config.stages + 1))

    def test_monotone_in_width(self):
        """Widening every register never shrinks the safety margin."""
        margins = [
            analyze_fft_config(config(dw=dw, k=2)).margin_bits
            for dw in (4, 8, 16, 27)
        ]
        assert margins == sorted(margins)

    def test_monotone_in_twiddle_level(self):
        """Raising the twiddle quantization level k shrinks the gain."""
        worst = [
            max(s.twiddle_gain for s in analyze_fft_config(config(k=k)).stages)
            for k in (2, 5, 18)
        ]
        assert worst == sorted(worst, reverse=True)


class TestStageAccounting:
    def test_stage_count_and_widths(self):
        widths = [8, 10, 12, 14, 16, 18, 20, 22]
        report = analyze_fft_config(config(n=256, dw=widths, k=0))
        assert [s.stage for s in report.stages] == list(range(1, 9))
        assert [s.width for s in report.stages] == widths

    def test_butterfly_add_is_one_bit(self):
        """The pre-halving intermediate carries the +1-bit butterfly add."""
        report = analyze_fft_config(config(k=0))
        for s in report.stages:
            assert s.add_bound == pytest.approx(2.0 * s.input_bound)

    def test_to_dict_roundtrip(self):
        report = analyze_fft_config(config(dw=4, k=2), label="bad")
        payload = report.to_dict()
        assert payload["label"] == "bad"
        assert payload["ok"] is False
        assert len(payload["stages"]) == report.config.stages
        assert payload["worst_overshoot_bits"] == report.worst_overshoot_bits

    def test_describe_mentions_overflow(self):
        report = analyze_fft_config(config(dw=4, k=2))
        assert "OVERFLOW" in report.describe()


class TestDesignSpace:
    def test_corner_reports(self):
        space = DesignSpace(stages=8)
        reports = analyze_design_space(space, n=256)
        assert len(reports) == 4
        worst = reports["dse-corner:min_w=8,min_k=2"]
        best = reports["dse-corner:max_w=39,max_k=18"]
        assert best.margin_bits > worst.margin_bits
        assert best.ok

    def test_mismatched_n_rejected(self):
        with pytest.raises(ValueError):
            analyze_design_space(DesignSpace(stages=8), n=512)
