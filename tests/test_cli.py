"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("tables", "sparsity", "ablation", "dse", "profile", "demo"):
            args = parser.parse_args(
                [cmd] if cmd != "dse" else [cmd, "--budget", "4"]
            )
            assert args.command == cmd

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsity", "--network", "vgg"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "private conv" in out
        assert "KiB of traffic" in out

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "--network", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "flash" in out
        assert "energy reduction vs F1" in out

    def test_dse_small_budget(self, capsys):
        assert main(
            ["dse", "--layer", "41", "--budget", "16", "--n", "1024"]
        ) == 0
        out = capsys.readouterr().out
        assert "power mW" in out

    def test_sparsity_resnet18(self, capsys):
        assert main(["sparsity", "--network", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "layer1.0.conv1" in out

    def test_profile_runs(self, capsys):
        assert main(["profile", "--network", "resnet18", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "weight_ntt" in out


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = str(tmp_path / "REPORT.md")
        assert main(["report", "--out", out]) == 0
        text = open(out).read()
        assert "# FLASH reproduction report" in text
        assert "Table II" in text
        assert "Table III" in text
        assert "Table IV" in text
        assert "ablation" in text
        assert "Batch amortization" in text

    def test_generate_report_returns_text(self):
        from repro.analysis import generate_report

        text = generate_report(path=None, networks=("resnet18",))
        assert "resnet18" in text
        assert "Table III" not in text  # resnet50-only section skipped


class TestExitCodeConvention:
    """The shared exit-code audit: 0 = success, 1 = gate/verdict failure,
    2 = usage error -- uniformly, across every subcommand."""

    def test_usage_errors_exit_2(self, capsys):
        from repro.cli import EXIT_USAGE

        cases = [
            ["bench-runtime", "--batch", "0"],
            ["bench-runtime", "--workers", "-1"],
            ["serve", "--duration", "0"],
            ["serve", "--duration", "1", "--cluster-workers", "-1"],
            ["loadgen", "--clients", "0"],
            ["loadgen", "--chaos-kill-rate", "0.5"],  # needs cluster workers
            ["chaos", "--iterations", "0"],
            ["chaos", "--max-rate", "2.0"],
            ["bench-check", "--baseline", "/no/such/b.json",
             "--current", "/no/such/c.json"],
            ["lint", "/no/such/path"],
        ]
        for argv in cases:
            assert main(argv) == EXIT_USAGE, argv
            assert capsys.readouterr().err  # reason lands on stderr

    def test_lint_select_conflicts_with_concurrency(self):
        from repro.cli import EXIT_USAGE

        assert main(
            ["lint", "--concurrency", "--select", "RACE001", "src/repro"]
        ) == EXIT_USAGE

    def test_serve_and_loadgen_registered(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--duration", "1"])
        assert args.command == "serve"
        args = parser.parse_args(["loadgen", "--clients", "2"])
        assert args.command == "loadgen"
        with pytest.raises(SystemExit):  # argparse usage errors exit 2 too
            parser.parse_args(["loadgen", "--mode", "warp"])


class TestServeCommands:
    def test_serve_probe_loop_exits_clean(self, capsys, tmp_path):
        out = str(tmp_path / "SERVE.json")
        assert main([
            "serve", "--duration", "0.3", "--probe-interval", "0.1",
            "--json", out,
        ]) == 0
        import json

        stats = json.load(open(out))
        assert stats["accounting"]["unaccounted"] == 0
        text = capsys.readouterr().out
        assert "health: ok" in text
        assert "serve:" in text

    def test_loadgen_writes_report_and_exits_on_verdict(self, tmp_path):
        import json

        out = str(tmp_path / "BENCH_serve.json")
        assert main([
            "loadgen", "--clients", "2", "--requests", "4",
            "--think-ms", "0", "--json", out,
        ]) == 0
        report = json.load(open(out))
        assert report["schema"] == "serve-loadgen/v1"
        assert report["verdict"]["ok"] is True
        assert report["verdict"]["silent_drops"] == 0


class TestBenchCheckServe:
    GATES = {
        "max_p50_ms": 100.0,
        "max_p99_ms": 200.0,
        "max_shed_rate": 0.05,
        "max_breaker_trips": 0,
    }

    def report(self, p99_ms=50.0, ok=True, trips=0, **verdict_overrides):
        verdict = {
            "ok": ok,
            "silent_drops": 0,
            "replay_mismatches": 0,
            "replay_checked": 8,
            "shed_rate": 0.0,
            "breaker_trips": trips,
        }
        verdict.update(verdict_overrides)
        return {
            "schema": "serve-loadgen/v1",
            "params": {"seed": 0, "clients": 2},
            "serve": {"p50_ms": 10.0, "p99_ms": p99_ms},
            "verdict": verdict,
        }

    def write(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def run_check(self, tmp_path, baseline, current):
        return main([
            "bench-check",
            "--baseline", self.write(tmp_path, "baseline.json", baseline),
            "--current", self.write(tmp_path, "current.json", current),
        ])

    def test_within_gates_passes(self, tmp_path):
        baseline = self.report()
        baseline["gates"] = dict(self.GATES)
        assert self.run_check(tmp_path, baseline, self.report()) == 0

    def test_latency_regression_fails(self, tmp_path):
        from repro.cli import EXIT_FAIL

        baseline = self.report()
        baseline["gates"] = dict(self.GATES)
        slow = self.report(p99_ms=500.0)
        assert self.run_check(tmp_path, baseline, slow) == EXIT_FAIL

    def test_breaker_trip_on_clean_run_fails(self, tmp_path):
        from repro.cli import EXIT_FAIL

        baseline = self.report()
        baseline["gates"] = dict(self.GATES)
        tripped = self.report(trips=2)
        assert self.run_check(tmp_path, baseline, tripped) == EXIT_FAIL

    def test_failed_verdict_fails_even_without_gates(self, tmp_path):
        from repro.cli import EXIT_FAIL

        baseline = self.report()
        bad = self.report(ok=False, silent_drops=1)
        assert self.run_check(tmp_path, baseline, bad) == EXIT_FAIL

    def test_params_mismatch_is_a_usage_error(self, tmp_path):
        from repro.cli import EXIT_USAGE

        baseline = self.report()
        current = self.report()
        current["params"]["clients"] = 99
        assert self.run_check(tmp_path, baseline, current) == EXIT_USAGE

    def test_serve_baseline_against_runtime_current_is_usage_error(
        self, tmp_path
    ):
        from repro.cli import EXIT_USAGE

        baseline = self.report()
        current = {"params": baseline["params"], "modes": {}}
        assert self.run_check(tmp_path, baseline, current) == EXIT_USAGE
