"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("tables", "sparsity", "ablation", "dse", "profile", "demo"):
            args = parser.parse_args(
                [cmd] if cmd != "dse" else [cmd, "--budget", "4"]
            )
            assert args.command == cmd

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsity", "--network", "vgg"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "private conv" in out
        assert "KiB of traffic" in out

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "--network", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "flash" in out
        assert "energy reduction vs F1" in out

    def test_dse_small_budget(self, capsys):
        assert main(
            ["dse", "--layer", "41", "--budget", "16", "--n", "1024"]
        ) == 0
        out = capsys.readouterr().out
        assert "power mW" in out

    def test_sparsity_resnet18(self, capsys):
        assert main(["sparsity", "--network", "resnet18"]) == 0
        out = capsys.readouterr().out
        assert "layer1.0.conv1" in out

    def test_profile_runs(self, capsys):
        assert main(["profile", "--network", "resnet18", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "weight_ntt" in out


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = str(tmp_path / "REPORT.md")
        assert main(["report", "--out", out]) == 0
        text = open(out).read()
        assert "# FLASH reproduction report" in text
        assert "Table II" in text
        assert "Table III" in text
        assert "Table IV" in text
        assert "ablation" in text
        assert "Batch amortization" in text

    def test_generate_report_returns_text(self):
        from repro.analysis import generate_report

        text = generate_report(path=None, networks=("resnet18",))
        assert "resnet18" in text
        assert "Table III" not in text  # resnet50-only section skipped
