"""Tests for workload extraction, the FLASH architecture model, energy."""

import numpy as np
import pytest

from repro.encoding import ConvShape, LinearShape
from repro.hw import (
    ChamModel,
    FlashAccelerator,
    FlashDesign,
    WEIGHT_ARMS,
    ablation_table,
    aggregate,
    conv_layer_workload,
    efficiency_ratios,
    f1_baseline_energy_mj,
    flash_vs_f1_reduction,
    hconv_energy_pj,
    linear_layer_workload,
    network_energy_mj,
    network_workload,
    spatial_tiles,
    table3_rows,
)


@pytest.fixture(scope="module")
def wl50():
    return network_workload("resnet50", 4096)


@pytest.fixture(scope="module")
def wl18():
    return network_workload("resnet18", 4096)


class TestSpatialTiles:
    def test_small_plane_no_tiling(self):
        shape = ConvShape.square(1, 32, 1, 3)
        band, count = spatial_tiles(shape, 4096)
        assert count == 1
        assert band is shape

    def test_large_plane_banded(self):
        shape = ConvShape.square(3, 224, 64, 7)
        band, count = spatial_tiles(shape, 4096)
        assert count > 1
        assert band.height * band.width <= 4096
        # Bands overlap by kernel_h - 1 rows and must cover all outputs.
        effective = band.height - (shape.kernel_h - 1)
        assert count * effective >= shape.height - shape.kernel_h + 1

    def test_rejects_strided(self):
        with pytest.raises(ValueError):
            spatial_tiles(ConvShape.square(1, 64, 1, 3, stride=2), 64)

    def test_rejects_impossible_rows(self):
        with pytest.raises(ValueError):
            spatial_tiles(ConvShape.square(1, 128, 1, 5), 128)


class TestWorkloads:
    def test_simple_layer_counts(self):
        shape = ConvShape.square(2, 4, 3, 3)  # 1 tile, 3 out channels
        w = conv_layer_workload(shape, 64)
        assert w.weight_transforms == 3
        assert w.input_transforms == 1
        assert w.inverse_transforms >= 1
        assert w.pointwise_products == 3
        assert w.weight_mults_sparse < w.weight_mults_dense

    def test_strided_layer_has_phase_transforms(self):
        s1 = conv_layer_workload(ConvShape.square(1, 8, 1, 3, padding=1), 64)
        s2 = conv_layer_workload(
            ConvShape.square(1, 8, 1, 3, stride=2, padding=1), 64
        )
        assert s2.weight_transforms == 4 * s1.weight_transforms

    def test_linear_layer_no_sparsity(self):
        w = linear_layer_workload(LinearShape(64, 8), 64)
        assert w.weight_sparsity_saving == 0.0

    def test_resnet50_weight_transforms_dominate(self, wl50):
        total = aggregate(wl50)
        assert total.weight_transforms > 10 * total.input_transforms
        assert total.weight_transforms > 10 * total.inverse_transforms

    def test_resnet50_high_sparsity_saving(self, wl50):
        total = aggregate(wl50)
        # Abstract: >86% of weight-transform computations skipped --
        # measured against the N-point NTT dense count; within the N/2
        # core the saving is lower but still dominant.
        assert total.weight_sparsity_saving > 0.75
        ntt_dense = 2048 * 12
        assert 1 - total.weight_mults_sparse / ntt_dense > 0.86

    def test_resnet18_lower_sparsity_than_50(self, wl18, wl50):
        # ResNet-50 is 1x1-conv heavy -> sparser weight polys.
        assert (
            aggregate(wl50).weight_sparsity_saving
            > aggregate(wl18).weight_sparsity_saving
        )

    def test_merge_weighted_average(self):
        from repro.hw import LayerWorkload

        a = LayerWorkload(weight_transforms=1, weight_mults_sparse=100.0,
                          weight_mults_dense=1000)
        b = LayerWorkload(weight_transforms=3, weight_mults_sparse=200.0,
                          weight_mults_dense=1000)
        a.merge(b)
        assert a.weight_transforms == 4
        assert a.weight_mults_sparse == pytest.approx(175.0)


class TestFlashAccelerator:
    @pytest.fixture(scope="class")
    def acc(self):
        return FlashAccelerator()

    def test_component_breakdown(self, acc):
        names = {c.name for c in acc.component_costs()}
        assert names == {"approx_bu", "fp_bu", "fp_mul", "fp_acc", "mem_ctrl"}

    def test_weight_subsystem_near_paper(self, acc):
        # Paper: 0.74 mm^2 / 0.27 W; the component model must land within
        # a factor of ~2 without any fitted constants.
        area = acc.area_mm2("approx_bu")
        power = acc.power_w("approx_bu")
        assert 0.37 < area < 1.5
        assert 0.14 < power < 0.6

    def test_all_transforms_near_paper(self, acc):
        assert 2.0 < acc.area_mm2() < 8.5
        assert 1.3 < acc.power_w() < 5.2

    def test_weight_rate_improves_with_sparsity(self, acc):
        assert acc.weight_transform_rate(1000) > acc.weight_transform_rate(5000)

    def test_rate_validates(self, acc):
        with pytest.raises(ValueError):
            acc.weight_transform_rate(0)

    def test_custom_design(self):
        small = FlashAccelerator(FlashDesign(approx_pes=30))
        big = FlashAccelerator(FlashDesign(approx_pes=60))
        assert small.weight_transform_rate(1000) < big.weight_transform_rate(1000)
        assert small.area_mm2("approx_bu") < big.area_mm2("approx_bu")

    def test_dse_stage_widths_accepted(self):
        widths = [16] * 11
        acc = FlashAccelerator(FlashDesign(stage_widths=widths))
        assert acc.design.weight_fft_config().stage_widths == widths


class TestTable3:
    def test_rows_complete(self, wl50):
        rows = table3_rows(workloads=wl50)
        names = [r["name"] for r in rows]
        assert names[:5] == ["HEAX", "CHAM", "F1", "BTS", "ARK"]
        assert names[5].startswith("FLASH")

    def test_baseline_efficiencies_match_paper(self, wl50):
        rows = {r["name"]: r for r in table3_rows(workloads=wl50)}
        assert rows["F1"]["power_eff"] == pytest.approx(7.60, abs=0.01)
        assert rows["BTS"]["area_eff"] == pytest.approx(10.28, abs=0.01)
        assert rows["ARK"]["power_eff"] == pytest.approx(8.42, abs=0.01)

    def test_flash_wins_power_efficiency(self, wl50):
        ratios = efficiency_ratios(table3_rows(workloads=wl50))
        weight = ratios["FLASH (weight transforms)"]
        # Paper: 81.8-90.7x.  Model (unfitted): same winner, tens-of-x.
        assert weight["power_eff_min"] > 20
        all_t = ratios["FLASH (all transforms)"]
        # Paper: 8.7-9.7x.
        assert 3 < all_t["power_eff_min"] < 20

    def test_flash_wins_area_efficiency(self, wl50):
        ratios = efficiency_ratios(table3_rows(workloads=wl50))
        assert ratios["FLASH (weight transforms)"]["area_eff_min"] > 5
        assert ratios["FLASH (all transforms)"]["area_eff_min"] > 1


class TestEnergy:
    def test_ablation_ordering(self, wl50):
        table = ablation_table(wl50)
        w = {arm: table[arm]["weight_vs_fft_fp"] for arm in WEIGHT_ARMS}
        assert w["fft_fp"] == pytest.approx(1.0)
        # Each single optimization lands near the paper's ~10%; combined
        # near ~1-3%.
        assert 0.05 < w["sparse"] < 0.35
        assert 0.05 < w["approx"] < 0.35
        assert w["flash"] < 0.08
        assert w["flash"] < min(w["sparse"], w["approx"])

    def test_flash_beats_f1_by_large_margin(self, wl50, wl18):
        # Paper: ~87.3% energy reduction; model lands within ten points.
        assert flash_vs_f1_reduction(wl50) > 0.75
        assert flash_vs_f1_reduction(wl18) > 0.70

    def test_energy_breakdown_keys(self, wl50):
        energy = hconv_energy_pj(wl50[0], "flash")
        assert set(energy) == {"weight", "activation", "inverse", "pointwise"}
        assert all(v >= 0 for v in energy.values())

    def test_network_energy_positive(self, wl18):
        total = network_energy_mj(wl18, "flash")
        assert sum(total.values()) > 0

    def test_unknown_arm_rejected(self, wl18):
        with pytest.raises(ValueError):
            network_energy_mj(wl18, "bogus")

    def test_f1_energy_far_above_flash(self, wl50):
        f1 = f1_baseline_energy_mj(wl50)
        flash = sum(network_energy_mj(wl50, "flash").values())
        assert f1 > 3 * flash


class TestTable4Latency:
    def test_speedups_in_paper_ballpark(self, wl18, wl50):
        acc, cham = FlashAccelerator(), ChamModel()
        s18 = cham.network_latency_s(wl18) / acc.network_latency_s(wl18)
        s50 = cham.network_latency_s(wl50) / acc.network_latency_s(wl50)
        # Paper: 21.84x and 64.02x; model (unfitted) keeps the ordering
        # and double-digit magnitude.
        assert s18 > 5
        assert s50 > s18

    def test_flash_latency_milliseconds(self, wl50):
        acc = FlashAccelerator()
        assert acc.network_latency_s(wl50) < 0.1  # paper: 4.96 ms

    def test_cham_latency_hundreds_of_ms(self, wl50):
        cham = ChamModel()
        assert 0.05 < cham.network_latency_s(wl50) < 1.0  # paper: 317 ms
