"""Resilient transport: frames, faulty channels, sessions, protocol wiring."""

import numpy as np
import pytest

from repro.encoding import ConvShape
from repro.faults import (
    ChecksumError,
    FaultProfile,
    FaultyChannel,
    PerfectChannel,
    ResilientSession,
    RetryPolicy,
    TransportError,
    decode_frame,
    encode_frame,
)
from repro.he import toy_preset
from repro.protocol import HybridConvProtocol
from repro.protocol.wire import serialize_ciphertext


class _LatencyChannel(PerfectChannel):
    """Delivers intact frames at a fixed latency."""

    def __init__(self, latency):
        self.latency = latency

    def transmit(self, frame):
        return [(self.latency, frame)]


class _FlakyChannel(PerfectChannel):
    """Drops the first ``failures`` frames, then delivers perfectly."""

    def __init__(self, failures):
        self.failures = failures

    def transmit(self, frame):
        if self.failures > 0:
            self.failures -= 1
            return []
        return [(0.0, frame)]


class TestFraming:
    def test_roundtrip(self):
        payload = b"the quick brown fox" * 7
        seq, out = decode_frame(encode_frame(3, payload))
        assert seq == 3
        assert out == payload

    def test_empty_payload_roundtrip(self):
        assert decode_frame(encode_frame(0, b"")) == (0, b"")

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError, match="truncated frame header"):
            decode_frame(b"FR")

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(1, b"abc"))
        frame[0] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            decode_frame(bytes(frame))

    def test_length_mismatch_rejected(self):
        frame = encode_frame(1, b"abcdef")
        with pytest.raises(ValueError, match="length mismatch"):
            decode_frame(frame[:-2])

    def test_payload_corruption_detected(self):
        frame = bytearray(encode_frame(1, b"abcdef"))
        frame[-1] ^= 0x10
        with pytest.raises(ChecksumError):
            decode_frame(bytes(frame))

    def test_every_single_bit_flip_is_detected_or_reseq(self):
        # No single-bit flip anywhere in a frame may yield the original
        # (seq, payload) pair -- that would be a silent corruption channel.
        payload = b"\x01\x02\x03\x04secret"
        frame = encode_frame(9, payload)
        for byte in range(len(frame)):
            for bit in range(8):
                mutated = bytearray(frame)
                mutated[byte] ^= 1 << bit
                try:
                    seq, out = decode_frame(bytes(mutated))
                except (ValueError, ChecksumError):
                    continue
                # Decoded "successfully": only a header-seq flip does this,
                # and the session layer rejects the foreign sequence number.
                assert seq != 9
                assert out == payload


class TestFaultyChannel:
    def test_profile_validates_rates(self):
        with pytest.raises(ValueError):
            FaultProfile(drop=1.5)
        with pytest.raises(ValueError):
            FaultProfile(max_latency=-1.0)

    def test_deterministic_under_seed(self):
        frame = encode_frame(0, b"payload" * 20)
        runs = []
        for _ in range(2):
            ch = FaultyChannel(
                seed=5, drop=0.3, corrupt=0.3, truncate=0.2,
                duplicate=0.2, max_latency=0.1,
            )
            runs.append([ch.transmit(frame) for _ in range(50)])
        assert runs[0] == runs[1]

    def test_injection_counters_track_faults(self):
        frame = encode_frame(0, b"x" * 64)
        ch = FaultyChannel(seed=1, drop=0.5, corrupt=0.5)
        for _ in range(100):
            ch.transmit(frame)
        assert ch.injected["frames"] == 100
        assert ch.injected["drops"] > 10
        assert ch.injected["bit_flips"] > 10

    def test_zero_rates_are_perfect(self):
        frame = encode_frame(0, b"x" * 64)
        ch = FaultyChannel(seed=0)
        assert ch.transmit(frame) == [(0.0, frame)]


class TestResilientSession:
    def test_perfect_channel_single_attempt(self):
        session = ResilientSession()
        payload = b"hello" * 100
        assert session.transfer_bytes(payload) == payload
        assert session.stats.messages == 1
        assert session.stats.attempts == 1
        assert session.stats.retries == 0

    def test_retries_through_dropped_frames(self):
        session = ResilientSession(channel=_FlakyChannel(failures=3))
        assert session.transfer_bytes(b"data") == b"data"
        assert session.stats.retries == 3
        assert session.stats.timeouts == 3
        assert session.stats.backoff_seconds > 0

    def test_corruption_always_detected_and_retried(self):
        session = ResilientSession(
            channel=FaultyChannel(seed=2, corrupt=0.6), seed=2
        )
        payload = bytes(range(256)) * 4
        for _ in range(20):
            assert session.transfer_bytes(payload) == payload
        assert session.stats.checksum_failures > 0
        assert session.stats.retries >= session.stats.checksum_failures

    def test_duplicates_discarded(self):
        session = ResilientSession(
            channel=FaultyChannel(seed=3, duplicate=1.0)
        )
        for _ in range(5):
            assert session.transfer_bytes(b"abc") == b"abc"
        assert session.stats.duplicates_discarded == 5
        assert session.stats.retries == 0

    def test_slow_delivery_times_out(self):
        policy = RetryPolicy(max_attempts=2, timeout=0.1)
        session = ResilientSession(
            channel=_LatencyChannel(latency=5.0), policy=policy
        )
        with pytest.raises(TransportError):
            session.transfer_bytes(b"x")
        assert session.stats.timeouts == 2

    def test_dead_letter_after_exhausted_retries(self):
        policy = RetryPolicy(max_attempts=4)
        session = ResilientSession(
            channel=FaultyChannel(seed=0, drop=1.0), policy=policy
        )
        with pytest.raises(TransportError, match="undeliverable"):
            session.transfer_bytes(b"payload")
        assert session.stats.dead_letters == 1
        (letter,) = session.stats.dead_letter_log
        assert letter.attempts == 4
        assert letter.payload_bytes == 7

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_ciphertext_survives_faulty_channel_bit_identical(self):
        params = toy_preset(n=64)
        from repro.he import BfvContext

        ctx = BfvContext(params)
        rng = np.random.default_rng(0)
        sk, pk = ctx.keygen(rng)
        ct = ctx.encrypt(pk, rng.integers(0, params.t, size=64), rng)
        session = ResilientSession(
            channel=FaultyChannel(
                seed=4, drop=0.2, corrupt=0.2, truncate=0.1, duplicate=0.1
            ),
            seed=4,
        )
        wire = serialize_ciphertext(ct)
        out = session.transfer_ciphertext(ct, params)
        assert serialize_ciphertext(out) == wire


class TestProtocolOverFaultyTransport:
    SHAPE = ConvShape(
        in_channels=1, height=4, width=4, out_channels=2,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )

    def _inputs(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-7, 8, size=(1, 4, 4))
        w = rng.integers(-3, 4, size=(2, 1, 3, 3))
        return x, w, rng

    def test_run_exact_at_twenty_percent_fault_rates(self):
        params = toy_preset(n=64)
        x, w, rng = self._inputs(0)
        transport = ResilientSession(
            channel=FaultyChannel(
                seed=11, drop=0.2, corrupt=0.2, truncate=0.1, duplicate=0.1
            ),
            seed=11,
        )
        result = HybridConvProtocol(
            params, self.SHAPE, transport=transport
        ).run(x, w, rng)
        assert result.exact
        assert result.stats.retries > 0
        assert transport.stats.messages == (
            result.stats.ciphertexts_sent + result.stats.ciphertexts_returned
        )

    def test_run_batch_exact_over_faulty_transport(self):
        params = toy_preset(n=64)
        rng = np.random.default_rng(1)
        xs = rng.integers(-7, 8, size=(2, 1, 4, 4))
        w = rng.integers(-3, 4, size=(2, 1, 3, 3))
        transport = ResilientSession(
            channel=FaultyChannel(seed=12, drop=0.15, corrupt=0.15), seed=12
        )
        results = HybridConvProtocol(
            params, self.SHAPE, transport=transport
        ).run_batch(xs, w, rng)
        assert all(r.exact for r in results)
        assert sum(r.stats.retries for r in results) == transport.stats.retries

    def test_transport_identical_result_to_no_transport(self):
        # The resilient hop is semantically invisible: same rng seed, same
        # reconstructed output with and without it.
        params = toy_preset(n=64)
        x, w, _ = self._inputs(2)
        transport = ResilientSession(
            channel=FaultyChannel(seed=13, drop=0.2, corrupt=0.2), seed=13
        )
        with_t = HybridConvProtocol(
            params, self.SHAPE, transport=transport
        ).run(x, w, np.random.default_rng(7))
        without = HybridConvProtocol(params, self.SHAPE).run(
            x, w, np.random.default_rng(7)
        )
        assert np.array_equal(with_t.reconstructed, without.reconstructed)
        assert np.array_equal(with_t.client_share, without.client_share)

    def test_dead_channel_raises_not_corrupts(self):
        params = toy_preset(n=64)
        x, w, rng = self._inputs(3)
        transport = ResilientSession(
            channel=FaultyChannel(seed=0, drop=1.0),
            policy=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(TransportError):
            HybridConvProtocol(
                params, self.SHAPE, transport=transport
            ).run(x, w, rng)
        assert transport.stats.dead_letters == 1

    def test_linear_protocol_over_faulty_transport(self):
        from repro.encoding.linear_encoding import LinearShape
        from repro.protocol.hybrid import HybridLinearProtocol

        params = toy_preset(n=64, share_bits=16)
        rng = np.random.default_rng(4)
        shape = LinearShape(in_features=16, out_features=4)
        x = rng.integers(-7, 8, size=16)
        w = rng.integers(-3, 4, size=(4, 16))
        transport = ResilientSession(
            channel=FaultyChannel(seed=14, drop=0.2, corrupt=0.2), seed=14
        )
        result = HybridLinearProtocol(
            params, shape, transport=transport
        ).run(x, w, rng)
        assert result.exact
        assert result.stats.retries > 0
