"""Unit tests for repro.obs: tracer, exporters, and metrics registry.

These tests use private :class:`Tracer` instances wherever possible so
they never perturb the process-wide ``obs_trace.tracer`` that the rest
of the suite's instrumented code paths read.
"""

import json
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.export import (
    forest,
    from_chrome_trace,
    summarize,
    to_chrome_trace,
    to_folded,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    absorb_serve_stats,
)
from repro.obs.trace import NOOP_SPAN, TRACE_CTX_KEY, Tracer


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        t = Tracer()
        span = t.span("x", attr=1)
        assert span is NOOP_SPAN
        assert t.span("y") is span  # no allocation per call

    def test_noop_span_api_is_inert(self):
        with NOOP_SPAN as s:
            assert s.set(a=1) is s
            assert s.context() is None
            s.end("error")

    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("x"):
            pass
        t.event("e")
        assert t.record_span("y", 0.0, 1.0) is None
        assert t.records() == []
        assert t.current_context() is None

    def test_traced_decorator_calls_through_when_disabled(self):
        calls = []

        @obs_trace.traced("obs.test_fn")
        def fn(a, b=2):
            calls.append((a, b))
            return a + b

        assert fn.__name__ == "fn"
        obs_trace.tracer.disable()
        assert fn(1, b=3) == 4
        assert calls == [(1, 3)]


class TestEnabledPath:
    def test_nesting_infers_parent_links(self):
        t = Tracer().enable()
        with t.span("root") as root:
            assert t.current_context() == root.context()
            with t.span("child") as child:
                with t.span("leaf"):
                    pass
            assert child.parent_id == root.span_id
        records = {r["name"]: r for r in t.records()}
        assert records["root"]["parent"] is None
        assert records["child"]["parent"] == records["root"]["span"]
        assert records["leaf"]["parent"] == records["child"]["span"]
        assert len({r["trace"] for r in records.values()}) == 1

    def test_exception_marks_error_status(self):
        t = Tracer().enable()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (record,) = t.records()
        assert record["status"] == "error"

    def test_end_is_idempotent(self):
        t = Tracer().enable()
        span = t.span("once")
        span.end()
        span.end("error")
        (record,) = t.records()
        assert record["status"] == "ok"

    def test_ring_buffer_is_bounded(self):
        t = Tracer(capacity=4).enable()
        for i in range(10):
            with t.span("s%d" % i):
                pass
        records = t.records()
        assert len(records) == 4
        assert [r["name"] for r in records] == ["s6", "s7", "s8", "s9"]

    def test_drain_empties_and_ingest_restores(self):
        t = Tracer().enable()
        with t.span("a"):
            pass
        drained = t.drain()
        assert t.records() == []
        assert t.ingest(drained + ["junk", {"no": "ids"}]) == 1
        assert [r["name"] for r in t.records()] == ["a"]

    def test_record_span_parents_to_explicit_context(self):
        t = Tracer().enable()
        with t.span("root") as root:
            ctx = root.context()
        got = t.record_span(
            "manual", 1.0, 2.5, parent=ctx, status="truncated", slot=3
        )
        assert got is not None
        manual = [r for r in t.records() if r["name"] == "manual"][0]
        assert manual["parent"] == ctx[1]
        assert manual["trace"] == ctx[0]
        assert manual["status"] == "truncated"
        assert manual["dur"] == pytest.approx(1.5)

    def test_ids_unique_and_pid_tagged(self):
        t = Tracer().enable()
        ids = set()
        for _ in range(100):
            with t.span("s"):
                pass
        for r in t.records():
            assert r["span"] not in ids
            ids.add(r["span"])


class TestWireContext:
    def test_stamp_is_a_noop_without_an_active_span(self):
        obs_trace.tracer.disable()
        payloads = [{"n": 1}]
        obs_trace.stamp_trace_context(payloads)
        assert payloads == [{"n": 1}]  # byte-identical envelope

    def test_stamp_and_pop_round_trip(self):
        tracer = obs_trace.tracer
        tracer.enable(capacity=64)
        tracer.clear()
        try:
            with tracer.span("root") as root:
                payloads = [{"n": 1}, {"n": 2}]
                obs_trace.stamp_trace_context(payloads)
                assert all(TRACE_CTX_KEY in p for p in payloads)
                ctx = obs_trace.pop_trace_context(payloads[0])
                assert ctx == root.context()
                assert TRACE_CTX_KEY not in payloads[0]
        finally:
            tracer.drain()
            tracer.disable()

    def test_pop_tolerates_garbage(self):
        assert obs_trace.pop_trace_context(None) is None
        assert obs_trace.pop_trace_context({"x": 1}) is None
        assert obs_trace.pop_trace_context({TRACE_CTX_KEY: "bad"}) is None

    def test_reset_for_fork_rebinds_a_fresh_disabled_tracer(self):
        before = obs_trace.tracer
        before.enable(capacity=16)
        try:
            fresh = obs_trace.reset_for_fork()
            assert fresh is obs_trace.tracer
            assert fresh is not before
            assert not fresh.enabled
        finally:
            obs_trace.reset_for_fork()


class TestIncidentDumps:
    def test_incident_event_dumps_the_ring(self, tmp_path):
        t = Tracer().enable(incident_dir=str(tmp_path))
        with t.span("work"):
            pass
        t.event("worker_death", incident=True, slot=0)
        dumps = list(tmp_path.glob("obs-incident-*.json"))
        assert len(dumps) == 1
        records = from_chrome_trace(json.loads(dumps[0].read_text()))
        names = {r["name"] for r in records}
        assert {"work", "worker_death"} <= names

    def test_non_incident_event_does_not_dump(self, tmp_path):
        t = Tracer().enable(incident_dir=str(tmp_path))
        t.event("routine")
        assert list(tmp_path.glob("*.json")) == []


class TestExport:
    def _sample_records(self):
        t = Tracer().enable()
        with t.span("root", mode="ntt"):
            with t.span("child"):
                pass
            t.event("ping")
        return t.drain()

    def test_chrome_trace_round_trips_exactly(self):
        records = self._sample_records()
        doc = to_chrome_trace(records)
        assert doc["displayTimeUnit"] == "ms"
        back = from_chrome_trace(doc)
        for orig, got in zip(
            sorted(records, key=lambda r: r["span"]),
            sorted(back, key=lambda r: r["span"]),
        ):
            for key in ("name", "trace", "span", "parent", "status", "kind"):
                assert got[key] == orig[key]
            assert got["ts"] == pytest.approx(orig["ts"])
            assert got["dur"] == pytest.approx(orig["dur"])
        child = [r for r in back if r["name"] == "root"][0]
        assert child["attrs"]["mode"] == "ntt"

    def test_write_chrome_trace(self, tmp_path):
        records = self._sample_records()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(str(path), records) == len(records)
        assert len(from_chrome_trace(json.loads(path.read_text()))) == len(
            records
        )

    def test_forest_classifies_roots_and_orphans(self):
        records = self._sample_records()
        # Fabricate an orphan: parent id that exists nowhere.
        orphan = dict(records[0], span=999999, parent=888888, name="lost")
        groves = forest(records + [orphan])
        grove = groves[records[0]["trace"]]
        assert len(grove["roots"]) == 1
        assert [r["name"] for r in grove["orphans"]] == ["lost"]

    def test_folded_self_time_excludes_children(self):
        t = Tracer().enable()
        root = t.span("root")
        child = t.span("child")
        child.start_s = 10.0
        child.end()
        root.start_s = 10.0
        root.end()
        records = t.drain()
        by_name = {r["name"]: r for r in records}
        by_name["root"]["dur"] = 0.005
        by_name["child"]["dur"] = 0.003
        folded = dict(
            line.rsplit(" ", 1) for line in to_folded(records).splitlines()
        )
        assert int(folded["root"]) == 2000
        assert int(folded["root;child"]) == 3000

    def test_summarize_counts_truncated_spans(self):
        t = Tracer().enable()
        t.record_span("cluster.job", 0.0, 1.0, status="truncated")
        summary = summarize(t.drain())
        assert summary["truncated"] == 1
        assert summary["spans"] == 1
        assert summary["by_name"]["cluster.job"]["count"] == 1


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", kind="conv")
        reg.inc("requests_total", 2, kind="conv")
        reg.set_gauge("up", 1.0)
        reg.observe("latency_ms", 3.0)
        reg.observe("latency_ms", 7000.0)
        assert reg.counter_value("requests_total", kind="conv") == 3.0
        assert reg.gauge_value("up") == 1.0
        snap = reg.to_dict()
        cell = snap["histograms"]["latency_ms"]
        assert cell["count"] == 2
        assert cell["sum"] == pytest.approx(7003.0)
        # 3.0 lands in the le=5 bucket; 7000 overflows to +Inf.
        assert cell["counts"][list(cell["buckets"]).index(5.0)] == 1
        assert cell["counts"][-1] == 1

    def test_bucket_edge_value_uses_le_semantics(self):
        reg = MetricsRegistry(buckets=(1.0, 10.0))
        reg.observe("h", 10.0)
        assert reg.to_dict()["histograms"]["h"]["counts"] == [0, 1, 0]

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(buckets=(5.0, 1.0))

    def test_to_dict_is_deterministically_ordered(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("z_total")
        a.inc("a_total", tenant="t2")
        a.inc("a_total", tenant="t1")
        b.inc("a_total", tenant="t1")
        b.inc("a_total", tenant="t2")
        b.inc("z_total")
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_to_text_emits_cumulative_buckets(self):
        reg = MetricsRegistry(buckets=(1.0, 10.0))
        reg.observe("h_ms", 0.5, kind="conv")
        reg.observe("h_ms", 5.0, kind="conv")
        text = reg.to_text()
        assert 'h_ms_bucket{kind="conv",le="1.0"} 1' in text
        assert 'h_ms_bucket{kind="conv",le="10.0"} 2' in text
        assert 'h_ms_bucket{kind="conv",le="+Inf"} 2' in text
        assert 'h_ms_count{kind="conv"} 2' in text

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.inc("hits_total")
                reg.observe("lat_ms", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert reg.counter_value("hits_total") == 8000.0
        assert reg.to_dict()["histograms"]["lat_ms"]["count"] == 8000

    def test_absorb_serve_stats_is_idempotent(self):
        reg = MetricsRegistry()
        snapshot = {
            "received": 10,
            "completed": 9,
            "shed": {"rate": 1, "shutdown": 0},
            "breaker": {"trips": 2, "recoveries": 1, "transitions": []},
            "per_tenant": {"t": {"received": 10}},
        }
        absorb_serve_stats(reg, snapshot)
        absorb_serve_stats(reg, snapshot)  # gauges: same values, not doubled
        assert reg.gauge_value("serve_received") == 10.0
        assert reg.gauge_value("serve_shed", reason="rate") == 1.0
        assert reg.gauge_value("serve_breaker_trips") == 2.0

    def test_default_buckets_cover_sub_ms_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS_MS[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] == 5000.0


class TestTraceArtifactPath:
    def test_sibling_path_derivation(self):
        from repro.cli import _trace_artifact_path

        assert (
            _trace_artifact_path("out/CHAOS_serve.json")
            == "out/CHAOS_serve_trace.json"
        )
        assert _trace_artifact_path("report") == "report_trace.json"
