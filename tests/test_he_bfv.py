"""Tests for the BFV scheme: correctness, homomorphism, noise, backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import (
    BfvContext,
    BfvParameters,
    NttPolyMulBackend,
    cham_preset,
    cheetah_preset,
    flash_backend,
    fp_fft_backend,
    preset,
    toy_preset,
)
from repro.ntt import negacyclic_convolution_naive


@pytest.fixture(scope="module")
def ctx():
    return BfvContext(toy_preset())


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(np.random.default_rng(42))


def _random_message(ctx, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, ctx.params.t, size=ctx.params.n, dtype=np.int64)


class TestParameters:
    def test_cheetah_preset(self):
        p = cheetah_preset()
        assert p.n == 4096
        assert p.t == 1 << 21
        assert p.q.bit_length() in (59, 60)
        assert p.delta == p.q // p.t

    def test_cham_preset_single_39bit_prime(self):
        p = cham_preset()
        assert len(p.basis.primes) == 1
        assert p.basis.primes[0].bit_length() == 39

    def test_noise_ceiling(self):
        p = toy_preset()
        assert p.noise_ceiling == p.q // (2 * p.t)

    def test_preset_lookup(self):
        assert preset("toy").n == 64
        with pytest.raises(KeyError):
            preset("nonexistent")

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            BfvParameters(n=64, plain_modulus=1 << 35, q_bits=(30,))

    def test_describe(self):
        assert "n=64" in toy_preset().describe()


class TestEncryptDecrypt:
    def test_roundtrip_public_key(self, ctx, keys):
        sk, pk = keys
        m = _random_message(ctx, 0)
        ct = ctx.encrypt(pk, m, np.random.default_rng(1))
        assert np.array_equal(ctx.decrypt(sk, ct), m)

    def test_roundtrip_symmetric(self, ctx, keys):
        sk, _ = keys
        m = _random_message(ctx, 2)
        ct = ctx.encrypt_symmetric(sk, m, np.random.default_rng(3))
        assert np.array_equal(ctx.decrypt(sk, ct), m)

    def test_decrypt_signed_centers(self, ctx, keys):
        sk, pk = keys
        t = ctx.params.t
        m = np.array([0, 1, t - 1, t // 2] + [0] * (ctx.params.n - 4))
        ct = ctx.encrypt(pk, m, np.random.default_rng(4))
        signed = ctx.decrypt_signed(sk, ct)
        assert signed[1] == 1
        assert signed[2] == -1
        assert signed[3] == -(t // 2)

    def test_fresh_noise_budget_positive(self, ctx, keys):
        sk, pk = keys
        ct = ctx.encrypt(pk, _random_message(ctx, 5), np.random.default_rng(6))
        budget = ctx.noise_budget(sk, ct)
        assert budget > 10

    def test_symmetric_noise_smaller_than_public(self, ctx, keys):
        sk, pk = keys
        m = _random_message(ctx, 7)
        rng = np.random.default_rng(8)
        ct_pk = ctx.encrypt(pk, m, rng)
        ct_sym = ctx.encrypt_symmetric(sk, m, rng)
        assert ctx.noise_infinity(sk, ct_sym) <= ctx.noise_infinity(sk, ct_pk)

    def test_wrong_length_rejected(self, ctx, keys):
        _, pk = keys
        with pytest.raises(ValueError):
            ctx.encrypt(pk, np.zeros(5), np.random.default_rng(0))

    def test_message_reduced_mod_t(self, ctx, keys):
        sk, pk = keys
        m = np.full(ctx.params.n, ctx.params.t + 3, dtype=np.int64)
        ct = ctx.encrypt(pk, m, np.random.default_rng(9))
        assert np.all(ctx.decrypt(sk, ct) == 3)


class TestHomomorphism:
    def test_add(self, ctx, keys):
        sk, pk = keys
        t = ctx.params.t
        m1, m2 = _random_message(ctx, 10), _random_message(ctx, 11)
        rng = np.random.default_rng(12)
        ct = ctx.add(ctx.encrypt(pk, m1, rng), ctx.encrypt(pk, m2, rng))
        assert np.array_equal(ctx.decrypt(sk, ct), (m1 + m2) % t)

    def test_sub(self, ctx, keys):
        sk, pk = keys
        t = ctx.params.t
        m1, m2 = _random_message(ctx, 13), _random_message(ctx, 14)
        rng = np.random.default_rng(15)
        ct = ctx.sub(ctx.encrypt(pk, m1, rng), ctx.encrypt(pk, m2, rng))
        assert np.array_equal(ctx.decrypt(sk, ct), (m1 - m2) % t)

    def test_negate(self, ctx, keys):
        sk, pk = keys
        m = _random_message(ctx, 16)
        ct = ctx.negate(ctx.encrypt(pk, m, np.random.default_rng(17)))
        assert np.array_equal(ctx.decrypt(sk, ct), (-m) % ctx.params.t)

    def test_add_plain(self, ctx, keys):
        sk, pk = keys
        t = ctx.params.t
        m1, m2 = _random_message(ctx, 18), _random_message(ctx, 19)
        ct = ctx.add_plain(ctx.encrypt(pk, m1, np.random.default_rng(20)), m2)
        assert np.array_equal(ctx.decrypt(sk, ct), (m1 + m2) % t)

    def test_sub_plain(self, ctx, keys):
        sk, pk = keys
        t = ctx.params.t
        m1, m2 = _random_message(ctx, 21), _random_message(ctx, 22)
        ct = ctx.sub_plain(ctx.encrypt(pk, m1, np.random.default_rng(23)), m2)
        assert np.array_equal(ctx.decrypt(sk, ct), (m1 - m2) % t)

    def test_add_plain_adds_almost_no_noise(self, ctx, keys):
        # Message wrap mod t perturbs the phase by at most q mod t per
        # wrapped slot (Delta*t = q - (q mod t)); otherwise noise-free.
        sk, pk = keys
        m = _random_message(ctx, 24)
        ct = ctx.encrypt(pk, m, np.random.default_rng(25))
        before = ctx.noise_infinity(sk, ct)
        after = ctx.noise_infinity(sk, ctx.add_plain(ct, m))
        assert after <= before + ctx.params.q % ctx.params.t

    def test_zero_ciphertext(self, ctx, keys):
        sk, _ = keys
        assert np.all(ctx.decrypt(sk, ctx.zero_ciphertext()) == 0)


class TestMultiplyPlain:
    def _check_multiply(self, ctx, keys, backend, atol=0):
        sk, pk = keys
        t, n = ctx.params.t, ctx.params.n
        rng = np.random.default_rng(26)
        m = rng.integers(0, 1 << 8, size=n, dtype=np.int64)
        w = np.zeros(n, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        ct = ctx.encrypt(pk, m, rng)
        out = ctx.decrypt(sk, ctx.multiply_plain(ct, w, backend))
        expected = negacyclic_convolution_naive(m, w, modulus=t)
        if atol == 0:
            assert np.array_equal(out.astype(np.uint64), expected)
        else:
            diff = np.abs(out.astype(np.int64) - expected.astype(np.int64))
            diff = np.minimum(diff, t - diff)  # wrap-aware distance
            assert diff.max() <= atol

    def test_ntt_backend_exact(self, ctx, keys):
        self._check_multiply(ctx, keys, NttPolyMulBackend())

    def test_fp_fft_backend_exact(self, ctx, keys):
        self._check_multiply(ctx, keys, fp_fft_backend())

    def test_flash_backend_close(self, ctx, keys):
        backend = flash_backend(ctx.params.n, stage_widths=24, twiddle_k=6)
        self._check_multiply(ctx, keys, backend, atol=2)

    def test_flash_backend_default_errors_confined_to_lsbs(self, ctx, keys):
        # k=5 twiddles (the paper's post-training setting) leave errors in
        # the low bits of the message -- tolerated at layer/network level,
        # not bit-exact.  Allow ~4 LSBs of the 10-bit toy plaintext.
        backend = flash_backend(ctx.params.n)
        self._check_multiply(ctx, keys, backend, atol=ctx.params.t // 64)

    def test_flash_backend_error_shrinks_with_k(self, ctx, keys):
        sk, pk = keys
        n, t = ctx.params.n, ctx.params.t
        rng = np.random.default_rng(33)
        m = rng.integers(0, 1 << 8, size=n, dtype=np.int64)
        w = np.zeros(n, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        ct = ctx.encrypt(pk, m, rng)
        expected = negacyclic_convolution_naive(m, w, modulus=t).astype(np.int64)
        worst = []
        for k in (2, 5, 12):
            backend = flash_backend(n, stage_widths=30, twiddle_k=k)
            out = ctx.decrypt(sk, ctx.multiply_plain(ct, w, backend))
            diff = np.abs(out - expected)
            worst.append(int(np.minimum(diff, t - diff).max()))
        assert worst[2] <= worst[1] <= worst[0]
        assert worst[2] <= 1

    def test_noise_grows_with_weight_norm(self, ctx, keys):
        sk, pk = keys
        n = ctx.params.n
        m = _random_message(ctx, 27)
        ct = ctx.encrypt(pk, m, np.random.default_rng(28))
        small = np.zeros(n, dtype=np.int64)
        small[0] = 1
        big = np.zeros(n, dtype=np.int64)
        big[:16] = 7
        noise_small = ctx.noise_infinity(sk, ctx.multiply_plain(ct, small))
        noise_big = ctx.noise_infinity(sk, ctx.multiply_plain(ct, big))
        assert noise_big > noise_small

    def test_weight_length_validated(self, ctx, keys):
        _, pk = keys
        ct = ctx.encrypt(pk, _random_message(ctx, 29), np.random.default_rng(30))
        with pytest.raises(ValueError):
            ctx.multiply_plain(ct, np.ones(5))

    def test_fft_backend_spectrum_cache(self, ctx, keys):
        backend = fp_fft_backend()
        _, pk = keys
        n = ctx.params.n
        w = np.zeros(n)
        w[0] = 1
        ct = ctx.encrypt(pk, _random_message(ctx, 31), np.random.default_rng(32))
        ctx.multiply_plain(ct, w, backend)
        assert len(backend._spectrum_cache) == 1
        ctx.multiply_plain(ct, w, backend)
        assert len(backend._spectrum_cache) == 1
        backend.clear_cache()
        assert len(backend._spectrum_cache) == 0

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_property_roundtrip(self, seed):
        local_ctx = BfvContext(toy_preset())
        rng = np.random.default_rng(seed)
        sk, pk = local_ctx.keygen(rng)
        m = rng.integers(0, local_ctx.params.t, size=local_ctx.params.n)
        ct = local_ctx.encrypt(pk, m, rng)
        assert np.array_equal(local_ctx.decrypt(sk, ct), m % local_ctx.params.t)


class TestCachedNttBackend:
    def test_exact_and_caches(self, ctx, keys):
        from repro.he import CachedNttBackend

        sk, pk = keys
        backend = CachedNttBackend()
        n, t = ctx.params.n, ctx.params.t
        rng = np.random.default_rng(40)
        m = rng.integers(0, 1 << 8, size=n, dtype=np.int64)
        w = np.zeros(n, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        ct = ctx.encrypt(pk, m, rng)
        out = ctx.decrypt(sk, ctx.multiply_plain(ct, w, backend))
        expected = negacyclic_convolution_naive(m, w, modulus=t)
        assert np.array_equal(out.astype(np.uint64), expected)
        # One miss for the first component, then hits (c1, repeats).
        assert backend.misses == 1
        ctx.multiply_plain(ct, w, backend)
        assert backend.hits >= 3

    def test_memory_accounting(self, ctx, keys):
        from repro.he import CachedNttBackend

        _, pk = keys
        backend = CachedNttBackend()
        n = ctx.params.n
        rng = np.random.default_rng(41)
        ct = ctx.encrypt(pk, _random_message(ctx, 42), rng)
        w = np.zeros(n, dtype=np.int64)
        w[0] = 1
        ctx.multiply_plain(ct, w, backend)
        # One cached polynomial: n words per RNS prime, 8 bytes each.
        primes = len(ctx.params.basis.primes)
        assert backend.cached_bytes == 8 * n * primes

    def test_capacity_enforced(self, ctx, keys):
        from repro.he import CachedNttBackend

        _, pk = keys
        backend = CachedNttBackend(capacity_bytes=100)
        rng = np.random.default_rng(43)
        ct = ctx.encrypt(pk, _random_message(ctx, 44), rng)
        w = np.zeros(ctx.params.n, dtype=np.int64)
        w[0] = 1
        with pytest.raises(MemoryError):
            ctx.multiply_plain(ct, w, backend)
