"""Which FFT paths tolerate approximation, measured through real BFV.

FLASH runs only the *weight* transforms on approximate fixed-point units
and keeps activation transforms, point-wise products and inverse
transforms in floating point (Section V-B).  These tests measure the
per-path error sensitivity through actual encrypt-multiply-decrypt runs
and record the finding:

* at equal bit-width all three paths produce *comparable* message-domain
  errors (each path's quantization is relative to its local dynamic
  range, which divides back out at decryption); the weight path is in
  fact slightly the most sensitive because its spectrum error is
  amplified by the convolution;
* the architectural reason to approximate only weights is therefore
  workload share, not error physics: weight transforms are >95% of all
  transforms (see the workload model), so approximating them captures
  nearly all the energy while the few FP paths stay exact.
"""

import numpy as np
import pytest

from repro.fftcore import ApproxFftConfig, ApproxNegacyclic
from repro.he import BfvContext, FftPolyMulBackend, toy_preset
from repro.ntt import negacyclic_convolution_naive


@pytest.fixture(scope="module")
def bfv():
    params = toy_preset(n=64, share_bits=14)
    ctx = BfvContext(params)
    rng = np.random.default_rng(3)
    sk, pk = ctx.keygen(rng)
    m = rng.integers(0, 1 << 8, size=64)
    w = np.zeros(64, dtype=np.int64)
    w[:9] = rng.integers(-8, 8, size=9)
    ct = ctx.encrypt(pk, m, rng)
    expected = negacyclic_convolution_naive(m, w, modulus=params.t).astype(
        np.int64
    )
    return params, ctx, sk, ct, w, expected


def _decrypt_error(bfv, **pipe_kwargs):
    """Worst decrypted-message error with per-path FXP configurations."""
    params, ctx, sk, ct, w, expected = bfv

    class _Backend(FftPolyMulBackend):
        def pipeline(self, n):
            if n not in self._pipelines:
                self._pipelines[n] = ApproxNegacyclic(n, **pipe_kwargs)
            return self._pipelines[n]

    out = ctx.decrypt(sk, ctx.multiply_plain(ct, w, _Backend())).astype(
        np.int64
    )
    diff = np.abs(out - expected)
    t = params.t
    return int(np.minimum(diff, t - diff).max())


def _cfg(dw):
    return ApproxFftConfig(n=32, stage_widths=dw, twiddle_k=0)


class TestPerPathSensitivity:
    def test_all_paths_exact_at_27_bits(self, bfv):
        # Figure 5(b)'s operating point holds for every path.
        assert _decrypt_error(bfv, weight_config=_cfg(27)) == 0
        assert _decrypt_error(bfv, activation_config=_cfg(27)) == 0
        assert _decrypt_error(bfv, inverse_config=_cfg(27)) == 0

    @pytest.mark.parametrize(
        "path", ["weight_config", "activation_config", "inverse_config"]
    )
    def test_error_monotone_in_width(self, bfv, path):
        errs = [_decrypt_error(bfv, **{path: _cfg(dw)}) for dw in (24, 16, 12)]
        assert errs[0] <= errs[1] <= errs[2]
        assert errs[2] > 0

    def test_weight_path_is_most_sensitive(self, bfv):
        # The convolution amplifies weight-spectrum errors by ~||w||-ish
        # factors; the other paths inject their error once.
        dw = 14
        w_err = _decrypt_error(bfv, weight_config=_cfg(dw))
        a_err = _decrypt_error(bfv, activation_config=_cfg(dw))
        i_err = _decrypt_error(bfv, inverse_config=_cfg(dw))
        assert w_err >= a_err
        assert w_err >= i_err

    def test_sensitivities_are_same_order(self, bfv):
        # No path is categorically safer: all land within ~30x of each
        # other at equal width -- the reason the paper's choice is about
        # workload counts, not differential robustness.
        dw = 16
        errs = [
            _decrypt_error(bfv, weight_config=_cfg(dw)),
            _decrypt_error(bfv, activation_config=_cfg(dw)),
            _decrypt_error(bfv, inverse_config=_cfg(dw)),
        ]
        assert max(errs) <= 30 * max(min(errs), 1)

    def test_config_dimensions_validated(self):
        with pytest.raises(ValueError):
            ApproxNegacyclic(
                64, activation_config=ApproxFftConfig(n=64, stage_widths=20)
            )
        with pytest.raises(ValueError):
            ApproxNegacyclic(
                64, inverse_config=ApproxFftConfig(n=16, stage_widths=20)
            )


class TestWorkloadShareArgument:
    def test_weight_transforms_dominate_counts(self):
        # The actual reason approximate-weights-only wins: they are >95%
        # of all transforms for ResNet-50 HConvs.
        from repro.hw import aggregate, network_workload

        total = aggregate(network_workload("resnet50", 4096))
        share = total.weight_transforms / total.total_transforms
        assert share > 0.95

    def test_combined_pipeline_error_additive(self, bfv):
        # Approximating everything at once compounds errors roughly
        # additively -- strictly worse than the weight-only architecture.
        dw = 16
        w_only = _decrypt_error(bfv, weight_config=_cfg(dw))
        all_three = _decrypt_error(
            bfv,
            weight_config=_cfg(dw),
            activation_config=_cfg(dw),
            inverse_config=_cfg(dw),
        )
        assert all_three >= w_only
