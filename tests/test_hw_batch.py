"""Tests for the batch-amortization (recompute vs pre-store) analysis."""

import pytest

from repro.encoding import ConvShape
from repro.hw import (
    batch_tradeoff,
    conv_layer_workload,
    flash_vs_cached_crossover,
    ntt_weight_memory_gb,
    aggregate,
)


@pytest.fixture(scope="module")
def small_workloads():
    return [
        conv_layer_workload(ConvShape.square(8, 16, 16, 3, padding=1), 1024),
        conv_layer_workload(ConvShape.square(16, 16, 16, 1), 1024),
    ]


class TestBatchTradeoff:
    def test_point_count(self, small_workloads):
        points = batch_tradeoff(small_workloads, n=1024, batch_sizes=(1, 4))
        assert len(points) == 6
        assert {p.strategy for p in points} == {
            "ntt_recompute", "ntt_cached", "flash"
        }

    def test_cached_amortizes_with_batch(self, small_workloads):
        points = batch_tradeoff(
            small_workloads, n=1024, batch_sizes=(1, 16, 256)
        )
        cached = [
            p.energy_mj_per_image for p in points if p.strategy == "ntt_cached"
        ]
        assert cached == sorted(cached, reverse=True)

    def test_flash_and_recompute_batch_flat(self, small_workloads):
        points = batch_tradeoff(small_workloads, n=1024, batch_sizes=(1, 64))
        for strategy in ("flash", "ntt_recompute"):
            vals = {
                p.energy_mj_per_image
                for p in points
                if p.strategy == strategy
            }
            assert len(vals) == 1

    def test_flash_beats_recompute_at_batch_one(self, small_workloads):
        points = {
            (p.strategy, p.batch_size): p
            for p in batch_tradeoff(small_workloads, n=1024, batch_sizes=(1,))
        }
        assert (
            points[("flash", 1)].energy_mj_per_image
            < points[("ntt_recompute", 1)].energy_mj_per_image
        )

    def test_only_cached_pays_memory(self, small_workloads):
        for p in batch_tradeoff(small_workloads, n=1024, batch_sizes=(4,)):
            if p.strategy == "ntt_cached":
                assert p.weight_memory_gb > 0
            else:
                assert p.weight_memory_gb == 0.0

    def test_rejects_bad_batch(self, small_workloads):
        with pytest.raises(ValueError):
            batch_tradeoff(small_workloads, n=1024, batch_sizes=(0,))


class TestCrossover:
    def test_resnet50_headline(self):
        from repro.hw import network_workload

        x = flash_vs_cached_crossover(network_workload("resnet50", 4096))
        # FLASH lands near the fully-amortized cached-NTT energy floor
        # without the ~22 GB weight cache (the Figure 1 memory wall).
        assert x["flash_over_floor"] < 2.0
        assert 15 < x["cache_memory_gb"] < 30

    def test_memory_model_consistent(self, small_workloads):
        total = aggregate(list(small_workloads))
        gb = ntt_weight_memory_gb(total, 1024)
        assert gb == pytest.approx(total.weight_transforms * 1024 * 8 / 1e9)
