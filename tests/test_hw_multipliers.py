"""Tests for the Table II multiplier cost models and butterfly LUT."""

import pytest

from repro.fftcore import ApproxFftConfig
from repro.hw import (
    ButterflyLut,
    approx_butterfly,
    approx_shift_add_multiplier,
    complex_fp_multiplier,
    complex_fxp_multiplier,
    fp_butterfly,
    fxp_butterfly,
    modular_multiplier,
    table2_rows,
)


class TestMultiplierAnchors:
    def test_table2_anchor_points_exact(self):
        # At the anchor configurations the models must reproduce the
        # paper's synthesis numbers exactly.
        for label, _, _, cost, paper_area, paper_power in table2_rows():
            assert cost.area_um2 == pytest.approx(paper_area, rel=1e-9), label
            assert cost.power_mw == pytest.approx(paper_power, rel=1e-9), label

    def test_paper_claim_fp_power_about_twice_modular(self):
        # Section III-A: "power of complex FP multiplications is
        # approximately twice that of modular multiplication".
        fp = complex_fp_multiplier(39)
        mod = modular_multiplier(39, "cham")
        assert 1.5 < fp.power_mw / mod.power_mw < 3.0

    def test_approx_cheaper_than_modular(self):
        # Table II's punchline: the k=5 shift-add multiplier beats the
        # optimized modular multiplier in both area and power.
        approx = approx_shift_add_multiplier(39, 5)
        mod = modular_multiplier(39, "cham")
        assert approx.area_um2 < mod.area_um2
        assert approx.power_mw < mod.power_mw

    def test_width_scaling_monotone(self):
        for factory in (
            lambda b: modular_multiplier(b, "cham"),
            complex_fp_multiplier,
            complex_fxp_multiplier,
            lambda b: approx_shift_add_multiplier(b, 5),
        ):
            costs = [factory(b).power_mw for b in (16, 24, 32, 40)]
            assert costs == sorted(costs)

    def test_k_scaling_linear(self):
        a5 = approx_shift_add_multiplier(39, 5)
        a10 = approx_shift_add_multiplier(39, 10)
        assert a10.power_mw == pytest.approx(2 * a5.power_mw)

    def test_fxp_cheaper_than_fp(self):
        assert complex_fxp_multiplier(39).area_um2 < complex_fp_multiplier(39).area_um2

    def test_f1_style_uses_tech_scaling(self):
        native = modular_multiplier(32, "f1")
        # Scaled from 14nm to 28nm: area x4, power x2.
        assert native.area_um2 == pytest.approx(1817 * 4)
        assert native.power_mw == pytest.approx(4.10 * 2)

    def test_energy_equals_power_at_1ghz(self):
        m = complex_fp_multiplier(39)
        assert m.energy_pj_per_op == m.power_mw

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            modular_multiplier(32, "unknown")
        with pytest.raises(ValueError):
            approx_shift_add_multiplier(39, 0)
        with pytest.raises(ValueError):
            complex_fp_multiplier(1)


class TestButterflyCosts:
    def test_bu_more_expensive_than_bare_multiplier(self):
        assert fp_butterfly(39).area_um2 > complex_fp_multiplier(39).area_um2
        assert approx_butterfly(27, 5).area_um2 > (
            approx_shift_add_multiplier(27, 5).area_um2
        )

    def test_approx_bu_much_cheaper_than_fp_bu(self):
        # The core FLASH trade: approximate BUs at ~an order of magnitude
        # lower power than FP BUs.
        ratio = fp_butterfly(39).power_mw / approx_butterfly(27, 5).power_mw
        assert ratio > 5

    def test_ordering_fp_fxp_approx(self):
        fp = fp_butterfly(39).power_mw
        fxp = fxp_butterfly(27).power_mw
        approx = approx_butterfly(27, 5).power_mw
        assert fp > fxp > approx


class TestButterflyLut:
    @pytest.fixture(scope="class")
    def lut(self):
        return ButterflyLut(bit_range=(8, 40), k_range=(0, 10))

    def test_grid_size(self, lut):
        # 33 widths x (1 fxp + 10 k values).
        assert len(lut) == 33 * 11

    def test_lookup_matches_direct_model(self, lut):
        assert lut.cost(27, 5).power_mw == approx_butterfly(27, 5).power_mw
        assert lut.cost(30, 0).power_mw == fxp_butterfly(30).power_mw

    def test_clamping_out_of_range(self, lut):
        assert lut.cost(100, 5).power_mw == lut.cost(40, 5).power_mw
        assert lut.cost(4, 0).power_mw == lut.cost(8, 0).power_mw

    def test_fft_power_averages_stages(self, lut):
        uniform = ApproxFftConfig(n=16, stage_widths=20, twiddle_k=5)
        mixed = ApproxFftConfig(n=16, stage_widths=[10, 15, 25, 30], twiddle_k=5)
        assert lut.fft_power_mw(uniform) == pytest.approx(
            4 * lut.cost(20, 5).power_mw
        )
        assert lut.fft_power_mw(mixed) < lut.fft_power_mw(
            ApproxFftConfig(n=16, stage_widths=30, twiddle_k=5)
        )

    def test_fft_energy_scales_with_mult_count(self, lut):
        cfg = ApproxFftConfig(n=64, stage_widths=27, twiddle_k=5)
        dense = lut.fft_energy_pj(cfg)
        sparse = lut.fft_energy_pj(cfg, mult_count=24)
        assert dense == pytest.approx(lut.fft_energy_pj(cfg, mult_count=192))
        assert sparse == pytest.approx(dense * 24 / 192)

    def test_area_sized_by_widest_stage(self, lut):
        cfg = ApproxFftConfig(n=16, stage_widths=[10, 12, 14, 36], twiddle_k=5)
        assert lut.fft_area_um2(cfg) == pytest.approx(
            4 * lut.cost(36, 5).area_um2
        )


class TestLutPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        lut = ButterflyLut(bit_range=(8, 16), k_range=(0, 4))
        path = str(tmp_path / "lut.json")
        lut.save(path)
        restored = ButterflyLut.load(path)
        assert len(restored) == len(lut)
        for bits in (8, 12, 16):
            for k in (0, 2, 4):
                assert restored.cost(bits, k).power_mw == (
                    lut.cost(bits, k).power_mw
                )
                assert restored.cost(bits, k).area_um2 == (
                    lut.cost(bits, k).area_um2
                )

    def test_loaded_lut_serves_fft_costs(self, tmp_path):
        lut = ButterflyLut(bit_range=(8, 30), k_range=(0, 8))
        path = str(tmp_path / "lut.json")
        lut.save(path)
        restored = ButterflyLut.load(path)
        cfg = ApproxFftConfig(n=16, stage_widths=20, twiddle_k=5)
        assert restored.fft_power_mw(cfg) == lut.fft_power_mw(cfg)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"bit_range": [8, 8], "k_range": [0, 0], "entries": []}')
        with pytest.raises(ValueError):
            ButterflyLut.load(str(path))


class TestKaratsubaMultiplier:
    def test_saves_area_at_wide_words(self):
        from repro.hw import complex_karatsuba_multiplier

        for bits in (27, 39):
            kara = complex_karatsuba_multiplier(bits, fp=True)
            full = complex_fp_multiplier(bits)
            assert kara.area_um2 < full.area_um2

    def test_fxp_variant_is_roughly_a_wash(self):
        # For the cheaper FXP multipliers the three extra adders eat most
        # of the saved 4th multiplier -- the model shows Karatsuba only
        # clearly pays on the FP path.
        from repro.hw import complex_karatsuba_multiplier

        kara = complex_karatsuba_multiplier(39, fp=False)
        full = complex_fxp_multiplier(39)
        assert 0.8 < kara.power_mw / full.power_mw < 1.2

    def test_adder_overhead_dominates_at_narrow_words(self):
        # Karatsuba's three extra adders eat the savings for small words:
        # the ratio to the schoolbook multiplier worsens as words shrink.
        from repro.hw import complex_karatsuba_multiplier

        def ratio(bits):
            return (
                complex_karatsuba_multiplier(bits, fp=False).area_um2
                / complex_fxp_multiplier(bits).area_um2
            )

        assert ratio(8) > ratio(39)
