"""Tests for the concurrency lint rules and the lock-discipline model."""

import ast
import os

import pytest

from repro.cli import main
from repro.lint import (
    CONCURRENCY_RULE_IDS,
    build_module_model,
    lint_paths,
    lint_source,
)

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "lint_fixtures")
SRC_REPRO = os.path.join(os.path.dirname(HERE), "src", "repro")


def fixture(*parts) -> str:
    return os.path.join(FIXTURES, *parts)


class TestLockModel:
    SOURCE = """
import threading

class Cache:
    def __init__(self):
        self._lock = threading.RLock()
        self._aux = threading.Lock()
        self.entries = {}
        self.hits = 0

    def put(self, k, v):
        with self._lock:
            self.entries[k] = v
            self.hits += 1

    def _evict_locked(self):
        self.entries.clear()

    def misuse(self):
        self.hits = -1
"""

    def model(self, source=None):
        return build_module_model(ast.parse(source or self.SOURCE))

    def test_lock_attrs_discovered(self):
        cls = self.model().classes[0]
        assert cls.lock_attrs == {"_lock", "_aux"}
        assert cls.lock_disciplined

    def test_guards_inferred_from_with_blocks(self):
        guards = self.model().classes[0].guards()
        # ``put`` writes under _lock; ``_evict_locked`` is credited with
        # every class lock (the *_locked convention), so the union shows
        # both for ``entries``.
        assert guards["entries"] == {"_lock", "_aux"}
        assert guards["hits"] == {"_lock"}

    def test_init_writes_exempt(self):
        cls = self.model().classes[0]
        init_writes = [w for w in cls.writes if w.in_init]
        assert {w.attr for w in init_writes} >= {"entries", "hits"}
        assert all(not w.locks_held for w in init_writes)

    def test_locked_method_body_assumed_guarded(self):
        cls = self.model().classes[0]
        evict = [w for w in cls.writes if w.method == "_evict_locked"]
        assert evict and all(
            w.locks_held == frozenset({"_lock", "_aux"}) for w in evict
        )

    def test_unguarded_write_recorded(self):
        cls = self.model().classes[0]
        bad = [w for w in cls.writes if w.method == "misuse"]
        assert len(bad) == 1
        assert not bad[0].locks_held and not bad[0].in_init

    def test_job_discovery_fan_out_and_submit(self):
        src = """
from concurrent.futures import ThreadPoolExecutor
from repro.runtime import fan_out

def run(jobs, pool):
    def job(item):
        return item * 2
    def other(item):
        return item
    fan_out(jobs, job, 4)
    pool.submit(other, 1)
    return map(str, jobs)  # builtin map is not an entry point
"""
        model = build_module_model(ast.parse(src))
        names = {
            fn.name for fn in model.job_functions if hasattr(fn, "name")
        }
        assert names == {"job", "other"}
        assert len(model.entry_points) == 2

    def test_lock_context_does_not_enter_closures(self):
        src = """
import threading
from repro.runtime import fan_out

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self.done = 0

    def run(self, items):
        with self._lock:
            def job(item):
                self.done = item
                return item
            return fan_out(items, job, 2)
"""
        model = build_module_model(ast.parse(src))
        writes = [
            w for w in model.classes[0].writes if w.method.endswith("job")
        ]
        assert len(writes) == 1
        assert not writes[0].locks_held  # the with-block does not carry over
        assert writes[0].in_job


class TestRulesFireOnFixtures:
    @pytest.mark.parametrize(
        "path, rule_ids",
        [
            (fixture("repro", "runtime", "race001_bad.py"), ["RACE001"]),
            (fixture("repro", "runtime", "race002_bad.py"), ["RACE002"]),
            (fixture("repro", "runtime", "lock001_bad.py"), ["LOCK001"]),
            (
                fixture("repro", "runtime", "det001_bad.py"),
                ["DET001", "DET001", "DET001"],
            ),
        ],
    )
    def test_fixture_findings(self, path, rule_ids):
        result = lint_paths([path])
        assert [f.rule_id for f in result.findings] == rule_ids
        assert all(f.line > 0 and f.col > 0 for f in result.findings)

    def test_clean_fixture_has_one_justified_suppression(self):
        result = lint_paths(
            [fixture("repro", "runtime", "concurrency_clean.py")]
        )
        assert result.findings == []
        assert result.suppressed_count == 1


class TestRuleSemantics:
    def test_out_of_scope_module_ignored(self):
        src = open(fixture("repro", "runtime", "race001_bad.py")).read()
        result = lint_source(src, module="repro.analysis.race001_bad")
        assert result.findings == []

    def test_guarded_compound_update_ok(self):
        src = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def bump(self):
        with self._lock:
            self.n += 1
"""
        assert lint_source(src, module="repro.runtime.x").findings == []

    def test_undisciplined_class_not_flagged(self):
        # No lock anywhere: there is no inferred discipline to violate.
        src = """
class Plain:
    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
"""
        assert lint_source(src, module="repro.runtime.x").findings == []

    def test_locked_helper_call_without_lock_flagged(self):
        src = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def _drop_locked(self):
        self.items.clear()

    def good(self):
        with self._lock:
            self._drop_locked()

    def bad(self):
        self._drop_locked()
"""
        result = lint_source(src, module="repro.runtime.x")
        assert [f.rule_id for f in result.findings] == ["RACE001"]
        assert "_drop_locked" in result.findings[0].message

    def test_sorted_set_iteration_ok(self):
        src = "def f(s):\n    return [x for x in sorted({1, 2, 3})]\n"
        assert lint_source(src, module="repro.runtime.x").findings == []

    def test_set_in_enumerate_flagged(self):
        src = "def f(s):\n    return [x for x in enumerate(set(s))]\n"
        result = lint_source(src, module="repro.runtime.x")
        assert [f.rule_id for f in result.findings] == ["DET001"]

    def test_time_outside_job_ok(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, module="repro.runtime.x").findings == []

    def test_suppression_applies_to_race_rules(self):
        src = """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def bump(self):
        with self._lock:
            self.n += 1

    def reset(self):
        # repro-lint: disable=RACE001  called before workers start
        self.n = 0
"""
        result = lint_source(src, module="repro.runtime.x")
        assert result.findings == []
        assert result.suppressed_count == 1


class TestConcurrencyCli:
    def test_concurrency_clean_on_src(self):
        assert main(["lint", "--concurrency", SRC_REPRO]) == 0

    def test_concurrency_fails_on_fixtures(self, capsys):
        assert main(
            ["lint", "--concurrency", fixture("repro", "runtime")]
        ) == 1
        out = capsys.readouterr().out
        assert "RACE001" in out and "LOCK001" in out and "DET001" in out

    def test_concurrency_excludes_other_rules(self):
        # MOD001 fixture passes under --concurrency: only RACE/LOCK/DET run.
        assert main(
            ["lint", "--concurrency", fixture("repro", "ntt", "mod001_bad.py")]
        ) == 0

    def test_concurrency_and_select_conflict(self, capsys):
        code = main(["lint", "--concurrency", "--select", "MOD001", SRC_REPRO])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_empty_target_set_is_an_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path), "--no-bitwidth"])
        assert code == 2
        assert "no Python files" in capsys.readouterr().err

    def test_missing_path_is_an_error(self, capsys):
        code = main(["lint", "definitely/not/a/path.py"])
        assert code == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_select_is_an_error(self, capsys):
        code = main(["lint", SRC_REPRO, "--select", "NOPE999"])
        assert code == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_rule_ids_constant_matches_registry(self):
        from repro.lint import all_rules

        registered = {r.rule_id for r in all_rules()}
        assert set(CONCURRENCY_RULE_IDS) <= registered
