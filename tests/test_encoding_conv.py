"""Tests for the Cheetah convolution coefficient encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    Conv2dEncoder,
    ConvShape,
    conv2d_direct,
    conv2d_via_polynomials,
    decompose_strided,
    pad_input,
)


def _rand_case(rng, shape: ConvShape, w_range=8, x_range=16):
    x = rng.integers(-x_range, x_range, size=(shape.in_channels, shape.height, shape.width))
    w = rng.integers(
        -w_range,
        w_range,
        size=(shape.out_channels, shape.in_channels, shape.kernel_h, shape.kernel_w),
    )
    return x, w


class TestConvShape:
    def test_output_dims(self):
        s = ConvShape.square(3, 8, 4, 3, stride=2, padding=1)
        assert (s.out_height, s.out_width) == (4, 4)

    def test_macs(self):
        s = ConvShape.square(2, 4, 3, 3)
        assert s.macs == 3 * 2 * 2 * 2 * 3 * 3

    def test_rejects_kernel_too_large(self):
        with pytest.raises(ValueError):
            ConvShape.square(1, 2, 1, 5)

    def test_rejects_negative_padding(self):
        with pytest.raises(ValueError):
            ConvShape(1, 4, 4, 1, 3, 3, padding=-1)


class TestEncodingRoundtrip:
    @pytest.mark.parametrize(
        "c,size,m,k,n",
        [
            (1, 4, 1, 3, 64),
            (2, 4, 3, 3, 64),   # multi-channel, single tile
            (4, 4, 2, 2, 32),   # two tiles of 2 channels
            (3, 5, 2, 3, 64),   # non-power-of-two spatial size
            (5, 4, 1, 1, 16),   # 1x1 kernels, 5 tiles
        ],
    )
    def test_matches_direct_conv(self, c, size, m, k, n):
        rng = np.random.default_rng(c * 1000 + size * 100 + m * 10 + k)
        shape = ConvShape.square(c, size, m, k)
        x, w = _rand_case(rng, shape)
        got = conv2d_via_polynomials(x, w, shape, n)
        expected = conv2d_direct(x, w)
        assert np.array_equal(got, expected)

    def test_with_padding(self):
        rng = np.random.default_rng(7)
        shape = ConvShape.square(2, 4, 2, 3, padding=1)
        x, w = _rand_case(rng, shape)
        got = conv2d_via_polynomials(x, w, shape, 64)
        expected = conv2d_direct(x, w, padding=1)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("stride", [2, 3])
    def test_with_stride(self, stride):
        rng = np.random.default_rng(stride)
        shape = ConvShape.square(2, 7, 2, 3, stride=stride, padding=1)
        x, w = _rand_case(rng, shape)
        got = conv2d_via_polynomials(x, w, shape, 64)
        expected = conv2d_direct(x, w, stride=stride, padding=1)
        assert np.array_equal(got, expected)

    def test_stride2_resnet_downsample_1x1(self):
        rng = np.random.default_rng(11)
        shape = ConvShape.square(4, 8, 8, 1, stride=2)
        x, w = _rand_case(rng, shape)
        got = conv2d_via_polynomials(x, w, shape, 64)
        expected = conv2d_direct(x, w, stride=2)
        assert np.array_equal(got, expected)

    def test_fft_polymul_backend(self):
        from repro.fftcore import negacyclic_multiply_folded, round_to_integers

        def fft_mul(a, b):
            out = round_to_integers(negacyclic_multiply_folded(a, b))
            return np.array([int(v) for v in out], dtype=np.int64)

        rng = np.random.default_rng(13)
        shape = ConvShape.square(2, 4, 2, 3)
        x, w = _rand_case(rng, shape)
        got = conv2d_via_polynomials(x, w, shape, 64, polymul=fft_mul)
        assert np.array_equal(got, conv2d_direct(x, w))

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_random_shapes(self, data):
        c = data.draw(st.integers(1, 3))
        size = data.draw(st.integers(3, 6))
        m = data.draw(st.integers(1, 3))
        k = data.draw(st.integers(1, min(3, size)))
        stride = data.draw(st.integers(1, 2))
        padding = data.draw(st.integers(0, 1))
        shape = ConvShape.square(c, size, m, k, stride=stride, padding=padding)
        rng = np.random.default_rng(data.draw(st.integers(0, 1 << 16)))
        x, w = _rand_case(rng, shape, w_range=4, x_range=8)
        got = conv2d_via_polynomials(x, w, shape, 128)
        expected = conv2d_direct(x, w, stride=stride, padding=padding)
        assert np.array_equal(got, expected)


class TestEncoderInternals:
    def test_tiling_counts(self):
        shape = ConvShape.square(8, 4, 1, 3)
        enc = Conv2dEncoder(shape, 64)
        assert enc.channels_per_tile == 4
        assert enc.num_tiles == 2
        assert list(enc.tile_channels(1)) == [4, 5, 6, 7]

    def test_ragged_last_tile_zero_padded(self):
        # Tiles are uniform: the last tile extends into zero-padded
        # virtual channels so extraction indices match across tiles.
        shape = ConvShape.square(5, 4, 1, 3)
        enc = Conv2dEncoder(shape, 64)
        assert enc.num_tiles == 2
        assert list(enc.tile_channels(1)) == [4, 5, 6, 7]
        polys = enc.encode_input(np.ones((5, 4, 4), dtype=np.int64))
        # Virtual channels of the last tile stay zero.
        assert polys[1][16:].sum() == 0

    def test_rejects_plane_too_large(self):
        with pytest.raises(ValueError):
            Conv2dEncoder(ConvShape.square(1, 16, 1, 3), 64)

    def test_rejects_strided(self):
        with pytest.raises(ValueError):
            Conv2dEncoder(ConvShape.square(1, 4, 1, 3, stride=2), 64)

    def test_weight_valid_indices_count(self):
        shape = ConvShape.square(2, 4, 1, 3)
        enc = Conv2dEncoder(shape, 64)
        idx = enc.weight_valid_indices(0)
        assert len(idx) == 2 * 3 * 3
        assert len(set(idx.tolist())) == len(idx)

    def test_weight_valid_indices_cover_encoded_nonzeros(self):
        rng = np.random.default_rng(17)
        shape = ConvShape.square(2, 4, 2, 3)
        enc = Conv2dEncoder(shape, 64)
        w = rng.integers(1, 8, size=(2, 2, 3, 3))  # strictly nonzero
        polys = enc.encode_weights(w)
        valid = set(enc.weight_valid_indices(0).tolist())
        for poly in polys.values():
            assert set(np.nonzero(poly)[0].tolist()) <= valid

    def test_weight_sparsity_high_for_large_planes(self):
        # ResNet-ish: one 58x58 channel per 4096-degree polynomial, 3x3 kernel.
        shape = ConvShape.square(64, 56, 64, 3, padding=1)
        enc = Conv2dEncoder(shape, 4096)
        assert enc.channels_per_tile == 1
        assert enc.weight_sparsity() > 0.99

    def test_valid_index_structure_k_contiguous_per_row(self):
        # Section IV-B: k contiguous valid values within intervals of Wp.
        shape = ConvShape.square(1, 8, 1, 3)
        enc = Conv2dEncoder(shape, 64)
        idx = enc.weight_valid_indices(0)
        rows = {int(i) // 8 for i in idx}
        assert rows == {0, 1, 2}
        for r in rows:
            cols = sorted(int(i) % 8 for i in idx if int(i) // 8 == r)
            assert cols == [0, 1, 2]

    def test_input_encoding_layout(self):
        shape = ConvShape.square(2, 2, 1, 1)
        enc = Conv2dEncoder(shape, 16)
        x = np.arange(8).reshape(2, 2, 2)
        (poly,) = enc.encode_input(x)
        assert poly[:8].tolist() == list(range(8))

    def test_transforms_per_hconv(self):
        shape = ConvShape.square(8, 4, 8, 3)
        enc = Conv2dEncoder(shape, 64)  # 2 tiles of 4 channels
        counts = enc.transforms_per_hconv()
        # Inverse transforms happen once per output channel: partial
        # products accumulate across channel tiles before the inverse.
        assert counts == {
            "input_forward": 2,
            "weight_forward": 16,
            "inverse": 8,
        }

    def test_encode_input_validates_shape(self):
        enc = Conv2dEncoder(ConvShape.square(1, 4, 1, 3), 64)
        with pytest.raises(ValueError):
            enc.encode_input(np.zeros((2, 4, 4)))

    def test_encode_weights_validates_shape(self):
        enc = Conv2dEncoder(ConvShape.square(1, 4, 1, 3), 64)
        with pytest.raises(ValueError):
            enc.encode_weights(np.zeros((1, 1, 2, 2)))

    def test_tile_out_of_range(self):
        enc = Conv2dEncoder(ConvShape.square(1, 4, 1, 3), 64)
        with pytest.raises(ValueError):
            enc.tile_channels(5)


class TestDecomposeStrided:
    def test_stride1_identity(self):
        s = ConvShape.square(1, 4, 1, 3)
        assert decompose_strided(s) == [(s, 0, 0)]

    def test_stride2_has_four_phases(self):
        s = ConvShape.square(1, 8, 1, 3, stride=2)
        phases = decompose_strided(s)
        assert len(phases) == 4
        for phase, _, _ in phases:
            assert phase.stride == 1
            assert phase.out_height >= s.out_height

    def test_phase_kernel_partition(self):
        # Phase kernels must partition the original kernel taps.
        s = ConvShape.square(1, 8, 1, 3, stride=2)
        total_taps = sum(
            p.kernel_h * p.kernel_w for p, _, _ in decompose_strided(s)
        )
        assert total_taps == 9


class TestPadInput:
    def test_zero_padding_noop(self):
        x = np.ones((1, 2, 2))
        assert pad_input(x, 0) is x

    def test_padding_shape_and_content(self):
        x = np.ones((1, 2, 2), dtype=np.int64)
        out = pad_input(x, 1)
        assert out.shape == (1, 4, 4)
        assert out.sum() == 4
        assert out[0, 0, 0] == 0
