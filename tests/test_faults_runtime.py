"""Runtime fault tolerance: worker recovery and plan-cache integrity."""

import numpy as np
import pytest

from repro.encoding import ConvShape
from repro.faults import (
    FaultRecovery,
    InjectedWorkerFault,
    WorkerFaultInjector,
)
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.params import toy_preset
from repro.he.poly import RingPoly
from repro.runtime import (
    BatchedFftBackend,
    BatchedHConvEngine,
    BatchedNttBackend,
    PlanCache,
    fan_out,
    value_digest,
)

BASIS = toy_preset(n=64).basis
FLASH_CFG = ApproxFftConfig(
    n=32, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)


def _random_products(seed, count=6):
    rng = np.random.default_rng(seed)
    polys, weights = [], []
    for _ in range(count):
        coeffs = rng.integers(0, 1 << 29, size=BASIS.n)
        polys.append(RingPoly(BASIS, BASIS.to_rns(coeffs)))
        weights.append(rng.integers(-5, 6, size=BASIS.n))
    return polys, weights


def _identical(outs, refs):
    return all(
        np.array_equal(a, b)
        for out, ref in zip(outs, refs)
        for a, b in zip(out.residues, ref.residues)
    )


class TestWorkerFaultInjector:
    def test_poisoned_job_fails_then_recovers(self):
        injector = WorkerFaultInjector(tags=[("limb", 0)])
        with pytest.raises(InjectedWorkerFault):
            injector.poison(("limb", 0))
        injector.poison(("limb", 0))  # second attempt survives
        injector.poison(("limb", 1))  # unpoisoned tags never fire
        assert injector.injected == 1

    def test_rate_based_decisions_are_deterministic(self):
        counts = []
        for _ in range(2):
            injector = WorkerFaultInjector(rate=0.5, seed=3)
            fired = 0
            for tag in range(40):
                try:
                    injector.poison(("job", tag))
                except InjectedWorkerFault:
                    fired += 1
            counts.append(fired)
        assert counts[0] == counts[1] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerFaultInjector(rate=2.0)
        with pytest.raises(ValueError):
            WorkerFaultInjector(failures_per_job=0)


class TestFanOutRecovery:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_single_failure_recovered(self, workers):
        failures = {2}

        def job(i):
            if i in failures:
                failures.discard(i)
                raise RuntimeError("worker died")
            return i * i

        recovery = FaultRecovery()
        out = fan_out(range(5), job, workers, recovery=recovery)
        assert out == [0, 1, 4, 9, 16]
        assert recovery.faults == 1
        assert "worker died" in recovery.errors[0]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_without_recovery_failure_propagates(self, workers):
        def job(i):
            if i == 1:
                raise RuntimeError("boom")
            return i

        with pytest.raises(RuntimeError, match="boom"):
            fan_out(range(3), job, workers)

    def test_permanent_failure_propagates_through_recovery(self):
        def job(i):
            raise RuntimeError("always broken")

        with pytest.raises(RuntimeError, match="always broken"):
            fan_out(range(2), job, 2, recovery=FaultRecovery())


class TestBackendFaultTolerance:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_ntt_multiply_many_byte_identical_under_faults(self, workers):
        polys, weights = _random_products(0)
        reference = BatchedNttBackend(max_workers=workers).multiply_many(
            polys, weights
        )
        injector = WorkerFaultInjector(tags=[("limb", 0), ("limb", 1)])
        backend = BatchedNttBackend(
            max_workers=workers, fault_injector=injector
        )
        outs = backend.multiply_many(polys, weights)
        assert _identical(outs, reference)
        assert injector.injected == 2
        assert backend.last_stats.worker_faults == 2

    def test_fft_multiply_many_byte_identical_under_faults(self):
        polys, weights = _random_products(1, count=4)
        reference = BatchedFftBackend(
            weight_config=FLASH_CFG, max_workers=2
        ).multiply_many(polys, weights)
        injector = WorkerFaultInjector(
            tags=[("lift", 0), ("reduce", 3)]
        )
        backend = BatchedFftBackend(
            weight_config=FLASH_CFG, max_workers=2, fault_injector=injector
        )
        outs = backend.multiply_many(polys, weights)
        assert _identical(outs, reference)
        assert backend.last_stats.worker_faults == 2

    def test_permanently_poisoned_job_propagates(self):
        polys, weights = _random_products(2)
        injector = WorkerFaultInjector(
            tags=[("limb", 0)], failures_per_job=99
        )
        backend = BatchedNttBackend(max_workers=2, fault_injector=injector)
        with pytest.raises(InjectedWorkerFault):
            backend.multiply_many(polys, weights)

    def test_engine_conv_batch_identical_under_faults(self):
        shape = ConvShape(
            in_channels=2, height=6, width=6, out_channels=3,
            kernel_h=3, kernel_w=3, stride=1, padding=1,
        )
        rng = np.random.default_rng(3)
        xs = rng.integers(-7, 8, size=(2, 2, 6, 6))
        w = rng.integers(-3, 4, size=(3, 2, 3, 3))
        reference = BatchedHConvEngine(mode="ntt", max_workers=2).conv2d_batch(
            xs, w, shape, 64
        )
        engine = BatchedHConvEngine(
            mode="ntt",
            max_workers=2,
            fault_injector=WorkerFaultInjector(tags=[("group", 0)]),
        )
        got = engine.conv2d_batch(xs, w, shape, 64)
        assert np.array_equal(got, reference)
        assert engine.last_stats.worker_faults >= 1


class TestPlanCacheIntegrity:
    def test_digest_covers_arrays_and_containers(self):
        a = np.arange(8, dtype=np.int64)
        assert value_digest(a) == value_digest(a.copy())
        assert value_digest(a) != value_digest(a + 1)
        assert value_digest([a, 2.5]) != value_digest([a, 3.5])
        assert value_digest(object()) is None  # opaque: skipped

    def test_tampered_entry_evicted_and_rebuilt(self):
        cache = PlanCache(check_integrity=True)
        builds = []

        def build():
            builds.append(1)
            return np.arange(16, dtype=np.int64)

        first = cache.get_or_build("spec", build)
        first[3] = 999  # bit-rot / tamper in place
        again = cache.get_or_build("spec", build)
        assert cache.corruptions == 1
        assert len(builds) == 2
        assert again[3] == 3  # the rebuilt, clean value

    def test_tampered_entry_raises_keyerror_on_getitem(self):
        cache = PlanCache(check_integrity=True)
        value = np.ones(4)
        cache.put("k", value)
        value[0] = -1.0
        with pytest.raises(KeyError):
            cache["k"]
        assert "k" not in cache

    def test_get_returns_default_for_corrupt_entry(self):
        cache = PlanCache(check_integrity=True)
        value = np.ones(4)
        cache.put("k", value)
        value[0] = 7.0
        assert cache.get("k", "fallback") == "fallback"
        assert cache.stats()["corruptions"] == 1

    def test_integrity_off_by_default(self):
        cache = PlanCache()
        value = np.ones(4)
        cache.put("k", value)
        value[0] = 9.0
        assert cache.get("k") is value  # legacy behaviour preserved

    def test_backend_recomputes_tampered_spectrum_bit_identical(self):
        polys, weights = _random_products(4)
        backend = BatchedNttBackend()
        reference = backend.multiply_many(polys, weights)
        # Corrupt every cached weight spectrum in place.
        for key in backend.plan_cache.keys():
            entry = backend.plan_cache._entries[key][0]
            if isinstance(entry, np.ndarray):
                entry += 1
        outs = backend.multiply_many(polys, weights)
        assert backend.plan_cache.corruptions > 0
        assert _identical(outs, reference)
