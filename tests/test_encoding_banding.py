"""Tests for spatial row banding (channel planes larger than the ring)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    ConvShape,
    conv2d_direct,
    conv2d_via_polynomials,
    iter_row_bands,
)
from repro.he import toy_preset
from repro.protocol import HybridConvProtocol


class TestIterRowBands:
    def test_small_plane_single_band(self):
        shape = ConvShape.square(1, 4, 1, 3)
        bands = iter_row_bands(shape, 64)
        assert bands == [(0, shape)]

    def test_bands_cover_all_output_rows(self):
        shape = ConvShape.square(1, 20, 1, 3)  # plane 400 > 64
        bands = iter_row_bands(shape, 64)
        assert len(bands) > 1
        covered = set()
        out_rows = shape.height - shape.kernel_h + 1
        for start, band in bands:
            assert band.height * band.width <= 64
            band_out = band.height - band.kernel_h + 1
            covered.update(range(start, min(start + band_out, out_rows)))
        assert covered == set(range(out_rows))

    def test_bands_overlap_by_kernel_minus_one(self):
        shape = ConvShape.square(1, 20, 1, 3)
        bands = iter_row_bands(shape, 64)
        (s0, b0), (s1, _) = bands[0], bands[1]
        assert s1 == s0 + b0.height - (shape.kernel_h - 1)

    def test_rejects_strided_or_padded(self):
        with pytest.raises(ValueError):
            iter_row_bands(ConvShape.square(1, 20, 1, 3, stride=2), 64)
        with pytest.raises(ValueError):
            iter_row_bands(ConvShape.square(1, 20, 1, 3, padding=1), 64)

    def test_rejects_impossible_geometry(self):
        with pytest.raises(ValueError):
            iter_row_bands(ConvShape.square(1, 128, 1, 3), 64)  # wide rows


class TestBandedConvolution:
    @pytest.mark.parametrize(
        "size,k,n",
        [
            (12, 3, 64),   # plane 144 > 64: several bands
            (16, 3, 64),
            (10, 1, 32),   # 1x1 kernel banding
            (9, 5, 64),    # large kernel relative to band
        ],
    )
    def test_matches_direct(self, size, k, n):
        rng = np.random.default_rng(size * 10 + k)
        shape = ConvShape.square(1, size, 2, k)
        x = rng.integers(-8, 8, size=(1, size, size))
        w = rng.integers(-8, 8, size=(2, 1, k, k))
        got = conv2d_via_polynomials(x, w, shape, n)
        assert np.array_equal(got, conv2d_direct(x, w))

    def test_banded_with_padding_and_stride(self):
        rng = np.random.default_rng(5)
        shape = ConvShape.square(1, 14, 2, 3, stride=2, padding=1)
        x = rng.integers(-8, 8, size=(1, 14, 14))
        w = rng.integers(-8, 8, size=(2, 1, 3, 3))
        got = conv2d_via_polynomials(x, w, shape, 64)
        assert np.array_equal(got, conv2d_direct(x, w, stride=2, padding=1))

    def test_banded_multichannel(self):
        rng = np.random.default_rng(6)
        shape = ConvShape.square(3, 10, 2, 3)
        x = rng.integers(-4, 4, size=(3, 10, 10))
        w = rng.integers(-4, 4, size=(2, 3, 3, 3))
        got = conv2d_via_polynomials(x, w, shape, 128)
        assert np.array_equal(got, conv2d_direct(x, w))

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_property_banded_random(self, data):
        size = data.draw(st.integers(9, 14))
        k = data.draw(st.integers(1, 3))
        seed = data.draw(st.integers(0, 1 << 16))
        rng = np.random.default_rng(seed)
        shape = ConvShape.square(1, size, 1, k)
        x = rng.integers(-6, 6, size=(1, size, size))
        w = rng.integers(-6, 6, size=(1, 1, k, k))
        got = conv2d_via_polynomials(x, w, shape, 64)
        assert np.array_equal(got, conv2d_direct(x, w))


class TestBandedProtocol:
    def test_protocol_runs_banded_layer(self):
        # One 12x12 plane needs 3 bands in a 64-degree ring; the protocol
        # must still reconstruct the exact convolution.
        params = toy_preset(n=64, share_bits=16)
        rng = np.random.default_rng(7)
        shape = ConvShape.square(1, 12, 2, 3)
        x = rng.integers(-8, 8, size=(1, 12, 12))
        w = rng.integers(-8, 8, size=(2, 1, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng)
        assert result.exact
        # Banding multiplies the input ciphertexts.
        assert result.stats.ciphertexts_sent >= 3


class TestConv1ScaleIntegration:
    def test_strided_7x7_banded_protocol(self):
        # A conv1-style layer (7x7 kernel, stride 2, padding 3) whose
        # padded plane exceeds the ring: stride phases + row bands + the
        # full BFV protocol, end to end.
        params = toy_preset(n=64, share_bits=18)
        rng = np.random.default_rng(11)
        shape = ConvShape.square(1, 14, 1, 7, stride=2, padding=3)
        x = rng.integers(-4, 4, size=(1, 14, 14))
        w = rng.integers(-4, 4, size=(1, 1, 7, 7))
        result = HybridConvProtocol(params, shape).run(x, w, rng)
        assert result.exact

    def test_strided_7x7_banded_plain(self):
        rng = np.random.default_rng(12)
        shape = ConvShape.square(2, 20, 2, 7, stride=2, padding=3)
        x = rng.integers(-4, 4, size=(2, 20, 20))
        w = rng.integers(-4, 4, size=(2, 2, 7, 7))
        got = conv2d_via_polynomials(x, w, shape, 128)
        assert np.array_equal(got, conv2d_direct(x, w, stride=2, padding=3))
