"""End-to-end integration: a full CNN classified under the BFV protocol."""

import numpy as np
import pytest

from repro.he import BfvParameters, flash_backend
from repro.nn import (
    QuantizedCnn,
    make_mini_cnn,
    make_synthetic_dataset,
    train,
    train_test_split,
)
from repro.protocol.private_network import PrivateCnnEvaluator


@pytest.fixture(scope="module")
def setup():
    ds = make_synthetic_dataset(900, size=8, channels=1, seed=4)
    tr, te = train_test_split(ds)
    model = make_mini_cnn(channels=1, size=8, width=4, seed=0)
    train(model, tr, epochs=6, lr=0.08, seed=1)
    qnet = QuantizedCnn.from_float(model, tr.images[:150], w_bits=4, a_bits=4)
    # Ring: n=256 holds the 8x8 planes; t sized for the worst sum-product.
    params = BfvParameters(n=256, plain_modulus=1 << 17, q_bits=(30, 30))
    return qnet, te, params


class TestPrivateCnnEvaluator:
    def test_exact_backend_matches_plain_inference(self, setup):
        qnet, te, params = setup
        evaluator = PrivateCnnEvaluator(qnet, params)
        rng = np.random.default_rng(0)
        trace = evaluator.infer(te.images[0], rng)
        assert trace.matches_plain
        assert trace.prediction == int(trace.expected_logits.argmax())

    def test_trace_accounting(self, setup):
        qnet, te, params = setup
        evaluator = PrivateCnnEvaluator(qnet, params)
        rng = np.random.default_rng(1)
        trace = evaluator.infer(te.images[1], rng)
        assert len(trace.layer_stats) == 3  # conv, conv, linear
        assert trace.total_bytes > 0
        assert trace.total_ciphertexts >= 6
        assert trace.min_noise_budget > 0

    def test_flash_backend_classification_robust(self, setup):
        qnet, te, params = setup
        backend = flash_backend(
            params.n, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
        )
        evaluator = PrivateCnnEvaluator(qnet, params, backend)
        rng = np.random.default_rng(2)
        agree = 0
        for i in range(3):
            trace = evaluator.infer(te.images[i], rng)
            if trace.prediction == int(trace.expected_logits.argmax()):
                agree += 1
        assert agree == 3

    def test_private_accuracy(self, setup):
        qnet, te, params = setup
        evaluator = PrivateCnnEvaluator(qnet, params)
        rng = np.random.default_rng(3)
        acc = evaluator.accuracy(te.images, te.labels, rng, max_samples=4)
        plain = qnet.accuracy_int(te.images[:4], te.labels[:4])
        assert acc == plain

    def test_rejects_undersized_plaintext_ring(self, setup):
        qnet, _, _ = setup
        small = BfvParameters(n=256, plain_modulus=1 << 8, q_bits=(30, 30))
        with pytest.raises(ValueError):
            PrivateCnnEvaluator(qnet, small)
