"""Tests for the FC/matvec coefficient encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import LinearEncoder, LinearShape, matvec_via_polynomials


class TestLinearShape:
    def test_macs(self):
        assert LinearShape(10, 4).macs == 40

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            LinearShape(0, 4)


class TestLinearEncoder:
    def test_packing_counts_small(self):
        enc = LinearEncoder(LinearShape(8, 6), 32)
        assert enc.chunk == 8
        assert enc.num_chunks == 1
        assert enc.rows_per_poly == 4
        assert enc.num_row_groups == 2

    def test_large_input_chunked(self):
        enc = LinearEncoder(LinearShape(100, 3), 32)
        assert enc.chunk == 32
        assert enc.num_chunks == 4  # ceil(100/32)
        assert enc.rows_per_poly == 1

    def test_output_indices(self):
        enc = LinearEncoder(LinearShape(8, 6), 32)
        assert enc.output_indices(0, 0).tolist() == [7, 15, 23, 31]
        assert enc.output_indices(0, 1).tolist() == [7, 15]

    @pytest.mark.parametrize(
        "ni,no,n",
        [
            (8, 4, 32),    # all rows in one poly
            (8, 12, 32),   # multiple row groups
            (40, 3, 16),   # chunked input
            (16, 16, 16),  # one row per poly exactly
            (7, 5, 32),    # non-power-of-two dims
        ],
    )
    def test_matches_direct_matvec(self, ni, no, n):
        rng = np.random.default_rng(ni * 100 + no)
        w = rng.integers(-8, 8, size=(no, ni))
        x = rng.integers(-16, 16, size=ni)
        got = matvec_via_polynomials(x, w, n)
        assert np.array_equal(got, w @ x)

    def test_validates_input_shape(self):
        enc = LinearEncoder(LinearShape(8, 4), 32)
        with pytest.raises(ValueError):
            enc.encode_input(np.zeros(9))
        with pytest.raises(ValueError):
            enc.encode_weights(np.zeros((4, 9)))

    def test_transforms_per_matvec(self):
        enc = LinearEncoder(LinearShape(40, 3), 16)  # 3 chunks of 16
        counts = enc.transforms_per_matvec()
        assert counts["input_forward"] == 3
        assert counts["weight_forward"] == counts["inverse"] == 3 * 3

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_random_matvec(self, data):
        ni = data.draw(st.integers(1, 20))
        no = data.draw(st.integers(1, 10))
        seed = data.draw(st.integers(0, 1 << 16))
        rng = np.random.default_rng(seed)
        w = rng.integers(-5, 5, size=(no, ni))
        x = rng.integers(-10, 10, size=ni)
        got = matvec_via_polynomials(x, w, 32)
        assert np.array_equal(got, w @ x)
