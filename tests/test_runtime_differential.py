"""Differential conformance tier for the batched runtime.

Every batched path must agree with the per-call reference it replaces:

* batched NTT results are **bit-identical** to the per-call pipeline over a
  randomized grid of convolution shapes and batch sizes;
* the batched approximate-FFT path is bit-identical to per-call
  ``hconv_flash`` / ``hconv_fft``, and its deviation from the exact
  convolution stays within the :mod:`repro.he.noise` error budget;
* the encrypted ``multiply_many`` backends match serial ``multiply``
  word for word.
"""

import numpy as np
import pytest

from repro.core.hconv import hconv_fft, hconv_flash, hconv_ntt
from repro.encoding.conv_encoding import ConvShape
from repro.encoding.plain_eval import conv2d_direct, conv2d_via_polynomials
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.backend import FftPolyMulBackend, NttPolyMulBackend
from repro.he.noise import fft_error_tolerance
from repro.he.params import toy_preset
from repro.he.poly import RingPoly
from repro.ntt import RnsBasis
from repro.protocol.hybrid import HybridConvProtocol, make_session
from repro.runtime import (
    BatchedFftBackend,
    BatchedHConvEngine,
    BatchedNttBackend,
)

N = 128
FLASH_CFG = ApproxFftConfig(
    n=N // 2, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)


def random_shape_grid(seed: int, count: int):
    """Randomized ConvShape grid: channels, kernel, stride and padding."""
    rng = np.random.default_rng(seed)
    shapes = []
    for _ in range(count):
        kh = int(rng.integers(1, 4))
        kw = int(rng.integers(1, 4))
        size = int(rng.integers(max(kh, kw), 8))
        shapes.append(
            ConvShape(
                in_channels=int(rng.integers(1, 4)),
                height=size,
                width=size,
                out_channels=int(rng.integers(1, 4)),
                kernel_h=kh,
                kernel_w=kw,
                stride=int(rng.choice([1, 2])),
                padding=int(rng.integers(0, 2)),
            )
        )
    return shapes


def random_batch(rng, shape: ConvShape, batch: int) -> np.ndarray:
    return rng.integers(
        -7, 8, size=(batch, shape.in_channels, shape.height, shape.width)
    )


def random_kernel(rng, shape: ConvShape) -> np.ndarray:
    return rng.integers(
        -4, 5,
        size=(
            shape.out_channels, shape.in_channels,
            shape.kernel_h, shape.kernel_w,
        ),
    )


class TestClearDomainDifferential:
    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_batched_ntt_bit_identical_to_per_call(self, batch):
        engine = BatchedHConvEngine(mode="ntt")
        rng = np.random.default_rng(batch)
        for shape in random_shape_grid(seed=11, count=6):
            xs = random_batch(rng, shape, batch)
            w = random_kernel(rng, shape)
            got = engine.conv2d_batch(xs, w, shape, N)
            ref = np.stack([hconv_ntt(x, w, shape, N) for x in xs])
            assert np.array_equal(got, ref), shape

    @pytest.mark.parametrize("batch", [1, 4])
    def test_batched_fft_bit_identical_to_per_call(self, batch):
        engine = BatchedHConvEngine(mode="fft")
        rng = np.random.default_rng(batch + 10)
        for shape in random_shape_grid(seed=13, count=4):
            xs = random_batch(rng, shape, batch)
            w = random_kernel(rng, shape)
            got = engine.conv2d_batch(xs, w, shape, N)
            ref = np.stack([hconv_fft(x, w, shape, N) for x in xs])
            assert np.array_equal(got, ref), shape

    @pytest.mark.parametrize("batch", [1, 4])
    def test_batched_flash_bit_identical_to_per_call(self, batch):
        engine = BatchedHConvEngine(mode="flash", weight_config=FLASH_CFG)
        rng = np.random.default_rng(batch + 20)
        for shape in random_shape_grid(seed=17, count=4):
            xs = random_batch(rng, shape, batch)
            w = random_kernel(rng, shape)
            got = engine.conv2d_batch(xs, w, shape, N)
            ref = np.stack(
                [hconv_flash(x, w, shape, N, FLASH_CFG) for x in xs]
            )
            assert np.array_equal(got, ref), shape

    def test_batched_flash_error_within_noise_budget(self):
        """Approximate-FFT deviation from the exact convolution stays
        within the tolerance the HE noise budget can absorb."""
        params = toy_preset(n=N, share_bits=16)
        tol = fft_error_tolerance(params)
        assert tol >= 1.0  # the budget leaves real headroom at this preset
        engine = BatchedHConvEngine(mode="flash", weight_config=FLASH_CFG)
        rng = np.random.default_rng(5)
        for shape in random_shape_grid(seed=19, count=4):
            xs = random_batch(rng, shape, 3)
            w = random_kernel(rng, shape)
            got = engine.conv2d_batch(xs, w, shape, N)
            exact = np.stack(
                [
                    conv2d_via_polynomials(x, w, shape, N)
                    for x in xs.astype(np.int64)
                ]
            )
            assert int(np.abs(got - exact).max()) <= tol, shape


class TestEncryptedDifferential:
    @pytest.fixture(scope="class")
    def basis(self):
        return RnsBasis.generate(64, [30, 30, 31, 32])

    def test_batched_ntt_backend_matches_serial(self, basis):
        rng = np.random.default_rng(0)
        serial = NttPolyMulBackend()
        batched = BatchedNttBackend()
        polys, weights = [], []
        for _ in range(6):
            coeffs = rng.integers(0, 1 << 62, size=basis.n)
            polys.append(RingPoly(basis, basis.to_rns(coeffs)))
            weights.append(rng.integers(-5, 6, size=basis.n))
        outs = batched.multiply_many(polys, weights)
        for poly, w, out in zip(polys, weights, outs):
            ref = serial.multiply(poly, np.asarray(w, dtype=np.int64))
            for a, b in zip(out.residues, ref.residues):
                assert np.array_equal(a, b)

    def test_batched_fft_backend_matches_serial(self, basis):
        rng = np.random.default_rng(1)
        cfg = ApproxFftConfig(
            n=basis.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )
        serial = FftPolyMulBackend(weight_config=cfg)
        batched = BatchedFftBackend(weight_config=cfg)
        polys, weights = [], []
        for _ in range(5):
            coeffs = rng.integers(0, 1 << 20, size=basis.n)
            polys.append(RingPoly(basis, basis.to_rns(coeffs)))
            weights.append(rng.integers(-5, 6, size=basis.n))
        outs = batched.multiply_many(polys, weights)
        for poly, w, out in zip(polys, weights, outs):
            ref = serial.multiply(poly, np.asarray(w, dtype=np.int64))
            for a, b in zip(out.residues, ref.residues):
                assert np.array_equal(a, b)

    def test_run_batch_matches_serial_fallback(self):
        params = toy_preset()
        shape = ConvShape(
            in_channels=2, height=6, width=6, out_channels=3,
            kernel_h=3, kernel_w=3, stride=2, padding=1,
        )
        rng = np.random.default_rng(7)
        w = rng.integers(-3, 4, size=(3, 2, 3, 3))
        xs = rng.integers(-7, 8, size=(3, 2, 6, 6))
        plain = HybridConvProtocol(params, shape, backend=None)
        batched = HybridConvProtocol(
            params, shape, backend=BatchedNttBackend()
        )
        r_plain = plain.run_batch(xs, w, np.random.default_rng(42))
        r_batch = batched.run_batch(xs, w, np.random.default_rng(42))
        for a, b in zip(r_plain, r_batch):
            assert np.array_equal(a.reconstructed, b.reconstructed)
            assert a.exact and b.exact


@pytest.mark.slow
class TestEncryptedRoundTripSlow:
    """Nightly-tier round trip: share -> encrypt -> batched HConv ->
    decrypt -> reconstruct, against the exact plaintext convolution."""

    SHAPE = ConvShape(
        in_channels=2, height=10, width=10, out_channels=4,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )

    def _data(self):
        rng = np.random.default_rng(3)
        xs = rng.integers(-4, 5, size=(4, 2, 10, 10))
        w = rng.integers(-3, 4, size=(4, 2, 3, 3))
        return xs, w

    def test_ntt_backend_round_trip_exact(self):
        params = toy_preset(n=256, share_bits=17)
        xs, w = self._data()
        protocol = HybridConvProtocol(
            params, self.SHAPE, backend=BatchedNttBackend(max_workers=2)
        )
        session = make_session(params, np.random.default_rng(9))
        results = protocol.run_batch(
            xs, w, np.random.default_rng(10), session=session
        )
        for x, result in zip(xs, results):
            expected = conv2d_direct(x, w, stride=1, padding=1)
            assert np.array_equal(result.expected, expected)
            assert result.exact
            assert result.stats.min_noise_budget > 0

    def test_flash_backend_round_trip_small_error(self):
        # The encrypted approximate path transforms full-range (~60-bit)
        # ciphertext coefficients, so -- as in the per-call protocol tests
        # -- exact twiddles keep the error to at most one LSB.
        params = toy_preset(n=256, share_bits=17)
        cfg = ApproxFftConfig(
            n=params.n // 2, stage_widths=30, twiddle_k=0
        )
        xs, w = self._data()
        protocol = HybridConvProtocol(
            params, self.SHAPE, backend=BatchedFftBackend(weight_config=cfg)
        )
        session = make_session(params, np.random.default_rng(9))
        results = protocol.run_batch(
            xs, w, np.random.default_rng(10), session=session
        )
        for result in results:
            assert result.max_error <= 1
