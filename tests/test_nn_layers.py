"""Tests for the numpy NN layers: gradients, shapes, training dynamics."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)


def _numeric_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def _loss_through(layer, x, seed=0):
    rng = np.random.default_rng(seed)
    out = layer.forward(x, training=True)
    target = rng.standard_normal(out.shape)

    def f():
        return float(0.5 * np.sum((layer.forward(x, training=True) - target) ** 2))

    out = layer.forward(x, training=True)
    grad_out = out - target
    return f, grad_out


class TestConvGradients:
    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 5, 5))
        f, grad_out = _loss_through(layer, x)
        gx = layer.backward(grad_out)
        num = _numeric_grad(f, x)
        np.testing.assert_allclose(gx, num, atol=1e-4)

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = Conv2d(1, 2, 3, stride=2, rng=rng)
        x = rng.standard_normal((2, 1, 7, 7))
        f, grad_out = _loss_through(layer, x)
        layer.backward(grad_out)
        num = _numeric_grad(f, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, num, atol=1e-4)

    def test_bias_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        layer = Conv2d(1, 2, 3, rng=rng)
        x = rng.standard_normal((3, 1, 5, 5))
        f, grad_out = _loss_through(layer, x)
        layer.backward(grad_out)
        num = _numeric_grad(f, layer.bias)
        np.testing.assert_allclose(layer.grad_bias, num, atol=1e-4)

    def test_output_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1)
        out = layer.forward(np.zeros((4, 3, 12, 12)), training=False)
        assert out.shape == (4, 8, 6, 6)


class TestLinearGradients:
    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(3)
        layer = Linear(6, 4, rng=rng)
        x = rng.standard_normal((5, 6))
        f, grad_out = _loss_through(layer, x)
        gx = layer.backward(grad_out)
        np.testing.assert_allclose(gx, _numeric_grad(f, x), atol=1e-4)
        np.testing.assert_allclose(
            layer.grad_weight, _numeric_grad(f, layer.weight), atol=1e-4
        )


class TestActivationsAndPooling:
    def test_relu_forward_backward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.5], [2.0, -3.0]])
        out = layer.forward(x)
        np.testing.assert_array_equal(out, [[0.0, 0.5], [2.0, 0.0]])
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_maxpool_forward(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_max(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad[0, 0, 1, 1] == 1.0
        assert grad[0, 0, 0, 0] == 0.0
        assert grad.sum() == 4.0

    def test_avgpool_gradient_numeric(self):
        rng = np.random.default_rng(4)
        layer = AvgPool2d(2)
        x = rng.standard_normal((2, 3, 4, 4))
        f, grad_out = _loss_through(layer, x)
        gx = layer.backward(grad_out)
        np.testing.assert_allclose(gx, _numeric_grad(f, x), atol=1e-5)

    def test_pool_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            MaxPool2d(3).forward(np.zeros((1, 1, 4, 4)))
        with pytest.raises(ValueError):
            AvgPool2d(3).forward(np.zeros((1, 1, 4, 4)))

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestSequentialAndLoss:
    def test_sequential_collects_parameters(self):
        model = Sequential(Conv2d(1, 2, 3), ReLU(), Flatten(), Linear(8, 2))
        assert len(model.parameters()) == 4  # two weights + two biases
        assert len(model.gradients()) == 4

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(5)
        logits = rng.standard_normal((4, 3))
        labels = np.array([0, 2, 1, 1])
        _, grad = softmax_cross_entropy(logits, labels)

        def f():
            loss, _ = softmax_cross_entropy(logits, labels)
            return loss

        num = _numeric_grad(f, logits)
        np.testing.assert_allclose(grad, num, atol=1e-6)

    def test_cross_entropy_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6
