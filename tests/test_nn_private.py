"""Tests for the private-inference error simulator (network-level study)."""

import numpy as np
import pytest

from repro.fftcore import ApproxFftConfig
from repro.nn import (
    QuantizedCnn,
    SharedPolyMulSimulator,
    evaluate_private_inference,
    hconv_output_error_variance,
    make_mini_cnn,
    make_private_conv_fn,
    make_private_linear_fn,
    make_synthetic_dataset,
    train,
    train_test_split,
)
from repro.ntt import negacyclic_convolution_naive


@pytest.fixture(scope="module")
def qnet_and_data():
    ds = make_synthetic_dataset(1000, size=12, channels=1, seed=3)
    tr, te = train_test_split(ds)
    model = make_mini_cnn(seed=0)
    train(model, tr, epochs=6, lr=0.08, seed=1)
    q = QuantizedCnn.from_float(model, tr.images[:200], w_bits=4, a_bits=4)
    return q, te


class TestSharedPolyMul:
    def test_fp_path_is_exact(self):
        sim = SharedPolyMulSimulator(
            n=64, share_bits=20, rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 8, size=64)
        w = np.zeros(64, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        out = sim.polymul(a, w)
        expected = negacyclic_convolution_naive(a, w)
        expected = np.array([int(v) for v in expected], dtype=np.int64)
        assert np.array_equal(out, expected)

    def test_weight_spectrum_cached(self):
        sim = SharedPolyMulSimulator(n=64, share_bits=16)
        w = np.zeros(64, dtype=np.int64)
        w[0] = 3
        a = np.arange(64)
        sim.polymul(a, w)
        sim.polymul(a, w)
        assert len(sim._spectra) == 1

    def test_error_behaves_like_weight_perturbation(self):
        # Key property: weight-path approximation acts as a perturbed
        # kernel, so the output error scales with the *activation*
        # magnitude, not the share magnitude t.
        cfg = ApproxFftConfig(n=32, stage_widths=16, twiddle_k=4)
        rng = np.random.default_rng(2)
        w = np.zeros(64, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        errors = {}
        for lim in (4, 64):
            sim = SharedPolyMulSimulator(
                n=64, share_bits=24, weight_config=cfg,
                rng=np.random.default_rng(3),
            )
            a = rng.integers(-lim, lim, size=64)
            out = sim.polymul(a % (1 << 24), w)
            exact = negacyclic_convolution_naive(a, w)
            exact = np.array([int(v) for v in exact], dtype=np.int64)
            errors[lim] = np.abs(out - exact).max()
        # 16x larger activations -> roughly ~16x larger error (allow slack).
        assert errors[64] > errors[4]
        assert errors[64] < max(errors[4], 1) * 200

    def test_error_shrinks_with_precision(self):
        rng = np.random.default_rng(4)
        w = np.zeros(64, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        a = rng.integers(-8, 8, size=64)
        exact = negacyclic_convolution_naive(a, w)
        exact = np.array([int(v) for v in exact], dtype=np.int64)
        errs = []
        for dw in (10, 16, 30):
            cfg = ApproxFftConfig(n=32, stage_widths=dw)
            sim = SharedPolyMulSimulator(
                n=64, share_bits=20, weight_config=cfg,
                rng=np.random.default_rng(5),
            )
            out = sim.polymul(a % (1 << 20), w)
            errs.append(int(np.abs(out - exact).max()))
        assert errs[0] >= errs[1] >= errs[2]
        assert errs[2] <= 1


class TestErrorVariance:
    def test_fp_pipeline_zero_variance(self):
        sim = SharedPolyMulSimulator(n=64, share_bits=20)
        w = np.zeros(64, dtype=np.int64)
        w[:9] = 5
        assert hconv_output_error_variance(sim, w, trials=3) == 0.0

    def test_variance_monotone_in_bitwidth(self):
        rng = np.random.default_rng(6)
        w = np.zeros(64, dtype=np.int64)
        w[:9] = rng.integers(1, 8, size=9)
        variances = []
        for dw in (8, 12, 20):
            cfg = ApproxFftConfig(n=32, stage_widths=dw)
            sim = SharedPolyMulSimulator(
                n=64, share_bits=20, weight_config=cfg,
                rng=np.random.default_rng(7),
            )
            variances.append(
                hconv_output_error_variance(sim, w, trials=4)
            )
        assert variances[0] >= variances[1] >= variances[2]


class TestEndToEndPrivateInference:
    def test_fp_pipeline_full_agreement(self, qnet_and_data):
        q, te = qnet_and_data
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, rng=np.random.default_rng(8)
        )
        report = evaluate_private_inference(q, te.images, te.labels, sim, max_samples=6)
        assert report.agreement == 1.0
        assert report.mean_logit_error == 0.0

    def test_moderate_approximation_preserves_classes(self, qnet_and_data):
        # Fig 5(b): with enough bits the classification is unchanged.
        q, te = qnet_and_data
        cfg = ApproxFftConfig(n=128, stage_widths=24, twiddle_k=0)
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, weight_config=cfg,
            rng=np.random.default_rng(9),
        )
        report = evaluate_private_inference(q, te.images, te.labels, sim, max_samples=6)
        assert report.agreement == 1.0

    def test_extreme_approximation_degrades(self, qnet_and_data):
        # Sanity: the study can detect damage (tiny widths break things).
        q, te = qnet_and_data
        cfg = ApproxFftConfig(n=128, stage_widths=5, twiddle_k=1)
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, weight_config=cfg,
            rng=np.random.default_rng(10),
        )
        report = evaluate_private_inference(q, te.images, te.labels, sim, max_samples=6)
        assert report.mean_logit_error > 0.0

    def test_private_linear_kernel(self, qnet_and_data):
        q, te = qnet_and_data
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, rng=np.random.default_rng(11)
        )
        logits = q.forward_with_kernels(
            te.images[0],
            conv_fn=make_private_conv_fn(sim),
            linear_fn=make_private_linear_fn(sim),
        )
        exact = q.forward_with_kernels(te.images[0])
        assert np.array_equal(logits, exact)


class TestMultiChannelPrivateInference:
    def test_three_channel_network(self):
        # RGB-like inputs exercise channel tiling inside the polynomial
        # encoding during private inference.
        ds = make_synthetic_dataset(600, size=8, channels=3, seed=9)
        tr, te = train_test_split(ds)
        model = make_mini_cnn(channels=3, size=8, width=4, seed=2)
        train(model, tr, epochs=5, lr=0.08, seed=3)
        q = QuantizedCnn.from_float(model, tr.images[:150], 4, 4)
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, rng=np.random.default_rng(10)
        )
        report = evaluate_private_inference(
            q, te.images, te.labels, sim, max_samples=5
        )
        assert report.agreement == 1.0
        assert report.mean_logit_error == 0.0
