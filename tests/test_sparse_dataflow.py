"""Tests for the skipping/merging sparse FFT engine.

Includes the paper's Example 4.1 (contiguous, 87.5% reduction) and
Example 4.2 (single scattered element, 4 multiplications) as exact cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fftcore import fft_dit
from repro.sparse import SparseFft


def _check_values(engine, x, valid=None):
    result = engine.run(x, valid=valid)
    expected = fft_dit(x, sign=engine.sign)
    np.testing.assert_allclose(result.values, expected, atol=1e-9)
    return result


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 16, 64, 256])
    def test_dense_input_matches_fft(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        _check_values(SparseFft(n), x)

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_sparse_random_patterns_match_fft(self, n):
        rng = np.random.default_rng(n + 1)
        for count in (1, 2, 5, n // 4):
            idx = rng.choice(n, size=count, replace=False)
            x = np.zeros(n, dtype=np.complex128)
            x[idx] = rng.standard_normal(count) + 1j * rng.standard_normal(count)
            _check_values(SparseFft(n), x)

    def test_all_zero_input(self):
        engine = SparseFft(16)
        result = engine.run(np.zeros(16, dtype=np.complex128))
        np.testing.assert_array_equal(result.values, np.zeros(16))
        assert result.mults == 0

    def test_structural_pattern_wider_than_values(self):
        # Hardware configures the dataflow from the structural pattern;
        # zero *values* inside the pattern must not change correctness.
        engine = SparseFft(32)
        x = np.zeros(32, dtype=np.complex128)
        x[3] = 2.0
        result = engine.run(x, valid=[3, 7, 11])
        np.testing.assert_allclose(result.values, fft_dit(x), atol=1e-10)

    def test_rejects_nonzero_outside_pattern(self):
        engine = SparseFft(16)
        x = np.zeros(16, dtype=np.complex128)
        x[5] = 1.0
        with pytest.raises(ValueError):
            engine.run(x, valid=[3])

    def test_sign_plus_one(self):
        rng = np.random.default_rng(9)
        x = np.zeros(64, dtype=np.complex128)
        x[rng.choice(64, 6, replace=False)] = rng.standard_normal(6)
        _check_values(SparseFft(64, sign=+1), x)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SparseFft(12)
        with pytest.raises(ValueError):
            SparseFft(16, sign=0)
        with pytest.raises(ValueError):
            SparseFft(16).run(np.zeros(8, dtype=np.complex128))

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_matches_fft_n32(self, data):
        count = data.draw(st.integers(0, 32))
        idx = data.draw(
            st.lists(
                st.integers(0, 31), min_size=count, max_size=count, unique=True
            )
        )
        seed = data.draw(st.integers(0, 1 << 16))
        rng = np.random.default_rng(seed)
        x = np.zeros(32, dtype=np.complex128)
        for i in idx:
            x[i] = complex(rng.standard_normal(), rng.standard_normal())
        _check_values(SparseFft(32), x)


class TestPaperExamples:
    def test_example_4_1_contiguous_skipping(self):
        # 4 contiguous valid values at bit-reversed positions 0..3, N=16:
        # classical dataflow = 32 mults; skipping leaves the 4-point
        # sub-network = 4 mults, an 87.5% reduction.
        engine = SparseFft(16)
        # Bit-reversed positions 0..3 correspond to natural inputs 0,8,4,12.
        valid_natural = [0, 8, 4, 12]
        x = np.zeros(16, dtype=np.complex128)
        x[valid_natural] = [1.0, 2.0, 3.0, 4.0]
        result = _check_values(engine, x)
        assert result.dense_mults == 32
        assert result.mults == 4
        assert result.reduction == pytest.approx(0.875)

    def test_example_4_2_single_scattered_merging(self):
        # One valid value at bit-reversed position 6 (natural index 6,
        # since 0110 reverses to 0110), N=16: merging collapses the first
        # three stages into 4 multiplications.
        engine = SparseFft(16)
        x = np.zeros(16, dtype=np.complex128)
        x[6] = 1.7 - 0.3j
        result = _check_values(engine, x)
        assert result.mults == 4
        # The honest count is even lower: W^0 and +-i coefficients are free.
        assert result.mults_nontrivial <= 2

    def test_dense_count_matches_classical_formula(self):
        for n in (4, 16, 64):
            engine = SparseFft(n)
            rng = np.random.default_rng(n)
            x = rng.standard_normal(n) + 0.1
            result = engine.run(x.astype(np.complex128))
            assert result.mults == (n // 2) * (n.bit_length() - 1)

    def test_half_valid_prefix_runs_half_size_network(self):
        # Valid inputs covering bit-reversed positions 0..n/2-1: skipping
        # reduces the transform to one (n/2)-point network plus free
        # duplication, i.e. (n/4)*log2(n/2) multiplications.
        n = 32
        engine = SparseFft(n)
        natural = [i for i in range(n) if i % 2 == 0]  # reverse to prefix
        x = np.zeros(n, dtype=np.complex128)
        x[natural] = np.arange(1, n // 2 + 1)
        result = _check_values(engine, x)
        assert result.mults == (n // 4) * ((n // 2).bit_length() - 1)


class TestCounting:
    def test_count_matches_run(self):
        engine = SparseFft(64)
        valid = [0, 8, 16, 24]
        by_count = engine.count(valid)
        x = np.zeros(64, dtype=np.complex128)
        x[valid] = [1.0, -2.0, 3.0, 0.5]
        by_run = engine.run(x, valid=valid)
        assert by_count.mults == by_run.mults

    def test_mults_monotone_in_density(self):
        engine = SparseFft(128)
        rng = np.random.default_rng(12)
        perm = rng.permutation(128)
        counts = [engine.count(perm[:k]).mults for k in (1, 4, 16, 64, 128)]
        assert counts == sorted(counts)

    def test_single_element_cost_at_most_n(self):
        # Merging bounds any single-valid transform by n multiplications
        # (paper: "streamlined to just N multiplications").
        n = 256
        engine = SparseFft(n)
        for src in (0, 1, 100, 255):
            assert engine.count([src]).mults <= n

    def test_stage_breakdown_sums_to_total(self):
        engine = SparseFft(64)
        result = engine.count([0, 3, 17])
        assert sum(result.stage_mults) == result.mults
        assert len(result.stage_mults) == engine.stages + 1

    def test_honest_never_exceeds_paper(self):
        engine = SparseFft(64)
        rng = np.random.default_rng(5)
        for count in (1, 3, 9, 33):
            valid = rng.choice(64, count, replace=False)
            r = engine.count(valid)
            assert r.mults_nontrivial <= r.mults

    def test_conv_like_pattern_large_reduction(self):
        # A 3x3 kernel footprint in a 58-wide plane inside a 2048-point
        # core: the paper reports >86% of computations skipped.
        from repro.sparse import conv_like_pattern

        n_core = 2048  # the N/2-point core of an N=4096 ring
        pattern = conv_like_pattern(
            n_core, channels=1, plane=58 * 58, kernel=3, row_stride=58
        )
        result = SparseFft(n_core).count(pattern)
        # Within the core the merging-heavy pattern drops ~72% of the
        # butterflies; against the N-point NTT the FFT replaces, the
        # combined saving exceeds the paper's 86% figure.
        assert result.reduction > 0.70
        ntt_dense = (2 * n_core // 2) * ((2 * n_core).bit_length() - 1)
        assert 1.0 - result.mults / ntt_dense > 0.86

    def test_empty_pattern_costs_nothing(self):
        assert SparseFft(32).count([]).mults == 0
