"""Tests for arithmetic secret sharing and the hybrid HE/2PC protocols."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import ConvShape, LinearShape
from repro.he import flash_backend, fp_fft_backend, toy_preset
from repro.protocol import (
    HybridConvProtocol,
    HybridLinearProtocol,
    ShareRing,
    make_session,
)


class TestShareRing:
    def test_share_reconstruct_roundtrip(self):
        ring = ShareRing(16)
        rng = np.random.default_rng(0)
        x = rng.integers(-1000, 1000, size=50)
        c, s = ring.share(x, rng)
        assert np.array_equal(ring.reconstruct(c, s), x)

    def test_shares_look_uniform(self):
        ring = ShareRing(16)
        rng = np.random.default_rng(1)
        x = np.zeros(4096, dtype=np.int64)
        c, _ = ring.share(x, rng)
        # Client share of an all-zero secret must span the ring.
        assert c.min() < ring.modulus // 8
        assert c.max() > ring.modulus * 7 // 8

    def test_signed_semantics(self):
        ring = ShareRing(8)
        assert ring.to_signed(np.array([255])).tolist() == [-1]
        assert ring.to_signed(np.array([127])).tolist() == [127]
        assert ring.to_signed(np.array([128])).tolist() == [-128]

    def test_arithmetic(self):
        ring = ShareRing(8)
        assert ring.add(250, 10).tolist() == 4
        assert ring.sub(3, 10).tolist() == 249
        assert ring.neg(1).tolist() == 255

    def test_fits_signed(self):
        ring = ShareRing(8)
        assert ring.fits_signed(np.array([-128, 127]))
        assert not ring.fits_signed(np.array([128]))

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ShareRing(1)
        with pytest.raises(ValueError):
            ShareRing(63)

    @given(
        bits=st.integers(4, 32),
        value=st.integers(-1000, 1000),
        seed=st.integers(0, 1 << 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, bits, value, seed):
        ring = ShareRing(bits)
        half = ring.modulus >> 1
        if not -half <= value < half:
            value %= half
        rng = np.random.default_rng(seed)
        c, s = ring.share(np.array([value]), rng)
        assert ring.reconstruct(c, s).tolist() == [value]


@pytest.fixture(scope="module")
def params():
    return toy_preset(n=64, share_bits=16)


@pytest.fixture(scope="module")
def session(params):
    return make_session(params, np.random.default_rng(1234))


class TestHybridConv:
    def test_exact_with_ntt_backend(self, params, session):
        rng = np.random.default_rng(2)
        shape = ConvShape.square(2, 4, 2, 3)
        x = rng.integers(-8, 8, size=(2, 4, 4))
        w = rng.integers(-8, 8, size=(2, 2, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng, session)
        assert result.exact
        assert result.stats.min_noise_budget > 0

    def test_exact_with_fp_fft_backend(self, params, session):
        rng = np.random.default_rng(3)
        shape = ConvShape.square(2, 4, 2, 3)
        x = rng.integers(-8, 8, size=(2, 4, 4))
        w = rng.integers(-8, 8, size=(2, 2, 3, 3))
        result = HybridConvProtocol(params, shape, fp_fft_backend()).run(
            x, w, rng, session
        )
        assert result.exact

    def test_flash_backend_small_error(self, params, session):
        rng = np.random.default_rng(4)
        shape = ConvShape.square(2, 4, 2, 3)
        x = rng.integers(-8, 8, size=(2, 4, 4))
        w = rng.integers(-8, 8, size=(2, 2, 3, 3))
        # Message-domain error scales as rel_fft_error * t: a 30-bit
        # datapath with exact twiddles keeps it below one LSB; a coarse
        # k=5 twiddle ROM (rel error ~2^-7) leaves errors in the low bits.
        exact_tw = flash_backend(params.n, stage_widths=30, twiddle_k=0)
        result = HybridConvProtocol(params, shape, exact_tw).run(
            x, w, rng, session
        )
        assert result.max_error <= 1
        coarse = flash_backend(params.n, stage_widths=30, twiddle_k=5)
        result2 = HybridConvProtocol(params, shape, coarse).run(
            x, w, rng, session
        )
        assert 0 < result2.max_error <= params.t >> 5

    def test_strided_padded_conv(self, params, session):
        rng = np.random.default_rng(5)
        shape = ConvShape.square(1, 7, 2, 3, stride=2, padding=1)
        x = rng.integers(-8, 8, size=(1, 7, 7))
        w = rng.integers(-8, 8, size=(2, 1, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng, session)
        assert result.exact

    def test_multi_tile_accumulation(self, params, session):
        rng = np.random.default_rng(6)
        # 8 channels of 4x4 = 2 tiles in a 64-degree ring.
        shape = ConvShape.square(8, 4, 1, 3)
        x = rng.integers(-4, 4, size=(8, 4, 4))
        w = rng.integers(-4, 4, size=(1, 8, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng, session)
        assert result.exact
        assert result.stats.ciphertexts_sent == 2

    def test_shares_are_additive(self, params, session):
        rng = np.random.default_rng(7)
        shape = ConvShape.square(1, 4, 1, 3)
        x = rng.integers(-8, 8, size=(1, 4, 4))
        w = rng.integers(-8, 8, size=(1, 1, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng, session)
        ring = ShareRing(16)
        assert np.array_equal(
            ring.reconstruct(result.client_share, result.server_share),
            result.expected,
        )

    def test_overflow_detected(self, params, session):
        shape = ConvShape.square(1, 4, 1, 3)
        x = np.full((1, 4, 4), 30000, dtype=np.int64)
        w = np.full((1, 1, 3, 3), 30000, dtype=np.int64)
        with pytest.raises(ValueError):
            HybridConvProtocol(params, shape).run(
                x, w, np.random.default_rng(8), session
            )

    def test_transform_accounting(self, params, session):
        rng = np.random.default_rng(9)
        shape = ConvShape.square(2, 4, 3, 3)  # 1 tile, 3 out channels
        x = rng.integers(-4, 4, size=(2, 4, 4))
        w = rng.integers(-4, 4, size=(3, 2, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng, session)
        assert result.stats.weight_transforms == 3
        assert result.stats.input_transforms == 1
        assert result.stats.ciphertexts_returned == 3

    def test_rejects_odd_plaintext_modulus(self):
        from repro.he import BfvParameters
        from repro.protocol.hybrid import _PartyPair

        odd = BfvParameters(n=64, plain_modulus=65537, q_bits=(30, 30))
        with pytest.raises(ValueError):
            _PartyPair(odd, np.random.default_rng(0))


class TestHybridLinear:
    def test_exact_matvec(self, params, session):
        rng = np.random.default_rng(10)
        shape = LinearShape(16, 6)
        x = rng.integers(-20, 20, size=16)
        w = rng.integers(-8, 8, size=(6, 16))
        result = HybridLinearProtocol(params, shape).run(x, w, rng, session)
        assert result.exact

    def test_chunked_input(self, params, session):
        rng = np.random.default_rng(11)
        shape = LinearShape(150, 4)  # 3 chunks in a 64-degree ring
        x = rng.integers(-4, 4, size=150)
        w = rng.integers(-4, 4, size=(4, 150))
        result = HybridLinearProtocol(params, shape).run(x, w, rng, session)
        assert result.exact
        assert result.stats.ciphertexts_sent == 3

    def test_flash_backend_linear(self, params, session):
        rng = np.random.default_rng(12)
        shape = LinearShape(16, 4)
        x = rng.integers(-20, 20, size=16)
        w = rng.integers(-8, 8, size=(4, 16))
        # k=18 twiddles with a deep fraction budget (the paper's "<1%
        # degradation without training" point) leave at most LSB error.
        backend = flash_backend(
            params.n, stage_widths=32, twiddle_k=18, twiddle_max_shift=26
        )
        result = HybridLinearProtocol(params, shape, backend).run(
            x, w, rng, session
        )
        assert result.max_error <= 2

    def test_overflow_detected(self, params, session):
        shape = LinearShape(4, 1)
        x = np.full(4, 20000, dtype=np.int64)
        w = np.full((1, 4), 20000, dtype=np.int64)
        with pytest.raises(ValueError):
            HybridLinearProtocol(params, shape).run(
                x, w, np.random.default_rng(13), session
            )
