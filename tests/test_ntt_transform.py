"""Tests for the negacyclic NTT and the RNS basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import (
    NegacyclicNtt,
    RnsBasis,
    find_ntt_primes,
    get_ntt,
    negacyclic_convolution_naive,
)


@pytest.fixture(scope="module")
def ntt64():
    (q,) = find_ntt_primes(30, 64)
    return NegacyclicNtt(64, q)


class TestNegacyclicNtt:
    def test_roundtrip_identity(self, ntt64):
        rng = np.random.default_rng(1)
        a = rng.integers(0, ntt64.q, size=64, dtype=np.uint64)
        assert np.array_equal(ntt64.inverse(ntt64.forward(a)), a)

    def test_forward_of_delta_is_psi_powers(self, ntt64):
        # NTT(X^0) evaluates the constant 1 at every root: all ones after
        # the psi pre-twist of a delta at position 0.
        delta = np.zeros(64, dtype=np.uint64)
        delta[0] = 1
        assert np.array_equal(
            ntt64.forward(delta), np.ones(64, dtype=np.uint64)
        )

    def test_multiply_matches_naive(self, ntt64):
        rng = np.random.default_rng(2)
        a = rng.integers(0, ntt64.q, size=64, dtype=np.uint64)
        b = rng.integers(0, ntt64.q, size=64, dtype=np.uint64)
        expected = negacyclic_convolution_naive(a, b, modulus=ntt64.q)
        assert np.array_equal(ntt64.multiply(a, b), expected)

    def test_negacyclic_wrap_sign(self, ntt64):
        # X^(n-1) * X = X^n = -1 in Z[X]/(X^n + 1).
        n, q = ntt64.n, ntt64.q
        a = np.zeros(n, dtype=np.uint64)
        b = np.zeros(n, dtype=np.uint64)
        a[n - 1] = 1
        b[1] = 1
        out = ntt64.multiply(a, b)
        expected = np.zeros(n, dtype=np.uint64)
        expected[0] = q - 1
        assert np.array_equal(out, expected)

    def test_linearity(self, ntt64):
        rng = np.random.default_rng(3)
        q = ntt64.q
        a = rng.integers(0, q, size=64, dtype=np.uint64)
        b = rng.integers(0, q, size=64, dtype=np.uint64)
        lhs = ntt64.forward((a + b) % q)
        rhs = (ntt64.forward(a).astype(object) + ntt64.forward(b).astype(object)) % q
        assert np.array_equal(lhs.astype(object), rhs)

    def test_39bit_modulus(self):
        (q,) = find_ntt_primes(39, 256)
        ntt = NegacyclicNtt(256, q)
        rng = np.random.default_rng(4)
        a = rng.integers(0, q, size=256, dtype=np.uint64)
        b = rng.integers(0, q, size=256, dtype=np.uint64)
        expected = negacyclic_convolution_naive(a, b, modulus=q)
        assert np.array_equal(ntt.multiply(a, b), expected)

    def test_large_n4096_roundtrip(self):
        (q,) = find_ntt_primes(30, 4096)
        ntt = get_ntt(4096, q)
        rng = np.random.default_rng(5)
        a = rng.integers(0, q, size=4096, dtype=np.uint64)
        assert np.array_equal(ntt.inverse(ntt.forward(a)), a)

    def test_butterfly_count(self, ntt64):
        assert ntt64.butterfly_count() == 32 * 6

    def test_cache_returns_same_instance(self):
        (q,) = find_ntt_primes(30, 64)
        assert get_ntt(64, q) is get_ntt(64, q)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NegacyclicNtt(63, 97)
        with pytest.raises(ValueError):
            NegacyclicNtt(64, 97)  # 97 != 1 mod 128

    def test_rejects_wrong_shape(self, ntt64):
        with pytest.raises(ValueError):
            ntt64.forward(np.zeros(32, dtype=np.uint64))

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_multiply_matches_naive_n16(self, data):
        (q,) = find_ntt_primes(20, 16)
        ntt = get_ntt(16, q)
        a = np.array(
            data.draw(
                st.lists(
                    st.integers(0, q - 1), min_size=16, max_size=16
                )
            ),
            dtype=np.uint64,
        )
        b = np.array(
            data.draw(
                st.lists(
                    st.integers(0, q - 1), min_size=16, max_size=16
                )
            ),
            dtype=np.uint64,
        )
        expected = negacyclic_convolution_naive(a, b, modulus=q)
        assert np.array_equal(ntt.multiply(a, b), expected)


class TestNaiveConvolution:
    def test_signed_inputs(self):
        a = np.array([1, -2, 3, -4])
        b = np.array([-1, 2, -3, 4])
        out = negacyclic_convolution_naive(a, b)
        # Verify against polynomial algebra: reduce full product mod X^4+1.
        full = np.convolve(a, b)
        expected = full[:4].astype(object)
        expected[: len(full) - 4] -= full[4:]
        assert np.array_equal(out, expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            negacyclic_convolution_naive([1, 2], [1, 2, 3])


class TestRnsBasis:
    @pytest.fixture(scope="class")
    def basis(self):
        return RnsBasis.generate(64, [30, 30])

    def test_modulus_is_product(self, basis):
        assert basis.modulus == basis.primes[0] * basis.primes[1]
        assert basis.modulus.bit_length() in (59, 60)

    def test_crt_roundtrip(self, basis):
        rng = np.random.default_rng(6)
        vals = [int(rng.integers(0, 1 << 58)) for _ in range(64)]
        residues = basis.to_rns(np.array(vals, dtype=object))
        back = basis.from_rns(residues)
        assert [int(v) for v in back] == vals

    def test_centered_reconstruction(self, basis):
        vals = np.array([-5, -1, 0, 1, 5] + [0] * 59, dtype=np.int64)
        residues = basis.to_rns(vals)
        cent = basis.centered(residues)
        assert [int(v) for v in cent[:5]] == [-5, -1, 0, 1, 5]

    def test_mul_matches_bigint_naive(self, basis):
        rng = np.random.default_rng(7)
        a = rng.integers(-(1 << 20), 1 << 20, size=64)
        b = rng.integers(-100, 100, size=64)
        prod = basis.mul(basis.to_rns(a), basis.to_rns(b))
        got = basis.centered(prod)
        expected = negacyclic_convolution_naive(a, b)
        assert [int(v) for v in got] == [int(v) for v in expected]

    def test_add_sub_neg(self, basis):
        rng = np.random.default_rng(8)
        a = rng.integers(0, 1 << 30, size=64)
        b = rng.integers(0, 1 << 30, size=64)
        ra, rb = basis.to_rns(a), basis.to_rns(b)
        s = basis.centered(basis.add(ra, rb))
        assert [int(v) for v in s] == [int(x) + int(y) for x, y in zip(a, b)]
        d = basis.centered(basis.sub(ra, rb))
        assert [int(v) for v in d] == [int(x) - int(y) for x, y in zip(a, b)]
        ng = basis.centered(basis.neg(ra))
        assert [int(v) for v in ng] == [-int(x) for x in a]

    def test_mul_scalar(self, basis):
        a = np.arange(64)
        out = basis.centered(basis.mul_scalar(basis.to_rns(a), 7))
        assert [int(v) for v in out] == [7 * i for i in range(64)]

    def test_zero(self, basis):
        z = basis.zero()
        assert all(int(v) == 0 for v in basis.from_rns(z))

    def test_rejects_non_ntt_prime(self):
        with pytest.raises(ValueError):
            RnsBasis([97], 64)

    def test_rejects_duplicate_primes(self):
        (p,) = find_ntt_primes(30, 64)
        with pytest.raises(ValueError):
            RnsBasis([p, p], 64)
