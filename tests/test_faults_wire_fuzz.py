"""Fuzzing the wire format: mutations must fail loudly, never crash oddly.

Two layers are fuzzed:

* bare :func:`repro.protocol.wire.deserialize_poly` /
  ``deserialize_ciphertext`` -- any byte mutation or truncation raises
  :class:`ValueError` (with a byte offset) or parses; nothing else escapes;
* CRC32-framed messages (:mod:`repro.faults.channel`) -- any mutation is
  either *detected* (``ValueError`` / ``ChecksumError``) or changes only
  the sequence number, which the session layer rejects; the payload can
  never silently change.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ChecksumError, decode_frame, encode_frame
from repro.he import BfvContext, toy_preset
from repro.protocol.wire import (
    _HEADER,
    _MAGIC,
    _VERSION,
    deserialize_ciphertext,
    deserialize_poly,
    serialize_ciphertext,
    serialize_poly,
)

PARAMS = toy_preset(n=64)


def _wire_ciphertext(seed=0):
    ctx = BfvContext(PARAMS)
    rng = np.random.default_rng(seed)
    sk, pk = ctx.keygen(rng)
    ct = ctx.encrypt(pk, rng.integers(0, PARAMS.t, size=PARAMS.n), rng)
    return serialize_ciphertext(ct)


WIRE = _wire_ciphertext()
POLY_WIRE = serialize_poly(
    BfvContext(PARAMS).keygen(np.random.default_rng(1))[1].p1
)


class TestHeaderFieldFuzz:
    @given(version=st.integers(min_value=0, max_value=0xFFFF))
    def test_any_wrong_version_is_value_error(self, version):
        data = bytearray(POLY_WIRE)
        struct.pack_into("<H", data, 4, version)
        if version == _VERSION:
            deserialize_poly(bytes(data), PARAMS)
            return
        with pytest.raises(ValueError, match="offset 4"):
            deserialize_poly(bytes(data), PARAMS)

    @given(num_primes=st.integers(min_value=0, max_value=0xFFFF))
    def test_any_wrong_num_primes_is_value_error(self, num_primes):
        data = bytearray(POLY_WIRE)
        struct.pack_into("<H", data, 6, num_primes)
        if num_primes == len(PARAMS.basis.primes):
            deserialize_poly(bytes(data), PARAMS)
            return
        with pytest.raises(ValueError, match="offset 6"):
            deserialize_poly(bytes(data), PARAMS)

    @given(n=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_any_wrong_degree_is_value_error(self, n):
        data = bytearray(POLY_WIRE)
        struct.pack_into("<I", data, 8, n)
        if n == PARAMS.n:
            deserialize_poly(bytes(data), PARAMS)
            return
        with pytest.raises(ValueError, match="offset 8"):
            deserialize_poly(bytes(data), PARAMS)

    @given(magic=st.binary(min_size=4, max_size=4))
    def test_any_wrong_magic_is_value_error(self, magic):
        data = magic + POLY_WIRE[4:]
        if magic == _MAGIC:
            deserialize_poly(data, PARAMS)
            return
        with pytest.raises(ValueError, match="offset 0"):
            deserialize_poly(data, PARAMS)


class TestTruncationFuzz:
    def test_every_boundary_truncation_is_value_error_with_offset(self):
        # Every prefix at a field boundary fails loudly with an offset.
        n = PARAMS.n
        boundaries = [0, 2, 4, 6, 8, _HEADER.size]
        offset = _HEADER.size
        for _ in PARAMS.basis.primes:
            boundaries.extend([offset + 4, offset + 8, offset + 8 + 4 * n])
            offset += 8 + 8 * n
        for cut in boundaries:
            if cut >= len(POLY_WIRE):
                continue
            with pytest.raises(ValueError, match="offset"):
                deserialize_poly(POLY_WIRE[:cut], PARAMS)

    @given(cut=st.integers(min_value=0, max_value=len(WIRE) - 1))
    def test_any_truncation_is_value_error(self, cut):
        with pytest.raises(ValueError):
            deserialize_ciphertext(WIRE[:cut], PARAMS)

    def test_trailing_bytes_rejected_with_offset(self):
        with pytest.raises(ValueError, match=f"offset {len(WIRE)}"):
            deserialize_ciphertext(WIRE + b"\x00" * 3, PARAMS)


class TestByteMutationFuzz:
    @settings(max_examples=300)
    @given(
        index=st.integers(min_value=0, max_value=len(WIRE) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_bare_wire_mutation_never_crashes_oddly(self, index, bit):
        """Unframed wire: mutations raise ValueError or parse; nothing else.

        (A mutated residue word can still parse as a *different* valid
        polynomial -- that is exactly why ciphertexts travel inside CRC32
        frames; see the framed test below.)
        """
        data = bytearray(WIRE)
        data[index] ^= 1 << bit
        try:
            deserialize_ciphertext(bytes(data), PARAMS)
        except ValueError:
            pass  # includes ChecksumError; anything else propagates = fail

    @settings(max_examples=300)
    @given(
        index=st.integers(min_value=0, max_value=len(WIRE) + 15),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_framed_wire_mutation_never_silently_alters_payload(
        self, index, bit
    ):
        frame = bytearray(encode_frame(21, WIRE))
        frame[index] ^= 1 << bit
        try:
            seq, payload = decode_frame(bytes(frame))
        except (ChecksumError, ValueError):
            return  # detected: the session retries
        # Undetected decode: only a seq-field flip survives the CRC, and
        # the payload is untouched.  The session discards foreign seqs.
        assert payload == WIRE
        assert seq != 21

    @settings(max_examples=200)
    @given(
        data=st.binary(min_size=0, max_size=200),
    )
    def test_random_garbage_never_crashes_oddly(self, data):
        with pytest.raises(ValueError):
            deserialize_poly(data + b"\x01", PARAMS)  # never a valid poly
        try:
            decode_frame(data)
        except (ChecksumError, ValueError):
            pass
