"""Failure-injection and robustness sanity checks across the stack."""

import numpy as np
import pytest

from repro.encoding import ConvShape
from repro.he import BfvContext, toy_preset
from repro.he.poly import RingPoly, uniform_poly
from repro.protocol import HybridConvProtocol, ShareRing


class TestBfvTampering:
    @pytest.fixture(scope="class")
    def setup(self):
        params = toy_preset(n=64, share_bits=12)
        ctx = BfvContext(params)
        rng = np.random.default_rng(0)
        sk, pk = ctx.keygen(rng)
        m = rng.integers(0, params.t, size=64)
        ct = ctx.encrypt(pk, m, rng)
        return params, ctx, sk, pk, m, ct

    def test_wrong_key_decrypts_garbage(self, setup):
        params, ctx, _, pk, m, ct = setup
        other_sk, _ = ctx.keygen(np.random.default_rng(99))
        wrong = ctx.decrypt(other_sk, ct)
        # A wrong ternary key scrambles essentially every coefficient.
        assert np.mean(wrong == m) < 0.2

    def test_large_tamper_corrupts_message(self, setup):
        params, ctx, sk, _, m, ct = setup
        tampered = ct.copy()
        big = np.zeros(64, dtype=np.int64)
        big[7] = params.q // 3
        tampered.c0 = tampered.c0 + RingPoly.from_signed(params.basis, big)
        out = ctx.decrypt(sk, tampered)
        assert out[7] != m[7]
        # Other slots are untouched (coefficient-wise independence).
        mask = np.arange(64) != 7
        assert np.array_equal(out[mask], m[mask])

    def test_sub_threshold_tamper_harmless(self, setup):
        # The kernel-level bound: perturbations below q/2t never flip any
        # coefficient.
        params, ctx, sk, _, m, ct = setup
        rng = np.random.default_rng(1)
        margin = params.noise_ceiling // 4
        tampered = ct.copy()
        tampered.c0 = tampered.c0 + RingPoly.from_signed(
            params.basis, rng.integers(-margin, margin, size=64)
        )
        assert np.array_equal(ctx.decrypt(sk, tampered), m)

    def test_ciphertexts_are_randomized(self, setup):
        params, ctx, _, pk, m, _ = setup
        rng = np.random.default_rng(2)
        a = ctx.encrypt(pk, m, rng)
        b = ctx.encrypt(pk, m, rng)
        assert a.c0 != b.c0  # fresh randomness per encryption

    def test_fresh_ciphertext_components_full_range(self, setup):
        # c1 is (pseudo)uniform mod q: it must span the whole range, not
        # leak small-magnitude structure.
        params, ctx, _, pk, m, ct = setup
        centered = ct.c1.to_centered()
        mags = np.array([abs(int(v)) for v in centered], dtype=np.float64)
        assert mags.max() > params.q / 4


class TestProtocolRobustness:
    def test_client_share_alone_reveals_nothing(self):
        # With a fresh mask per output, the client's share is uniform:
        # identical inputs produce unrelated client shares across runs.
        params = toy_preset(n=64, share_bits=16)
        shape = ConvShape.square(1, 4, 1, 3)
        rng_inputs = np.random.default_rng(3)
        x = rng_inputs.integers(-8, 8, size=(1, 4, 4))
        w = rng_inputs.integers(-8, 8, size=(1, 1, 3, 3))
        shares = []
        for seed in (10, 11):
            result = HybridConvProtocol(params, shape).run(
                x, w, np.random.default_rng(seed)
            )
            shares.append(result.client_share.copy())
            assert result.exact
        assert not np.array_equal(shares[0], shares[1])

    def test_share_ring_masks_are_fresh(self):
        ring = ShareRing(16)
        rng = np.random.default_rng(4)
        a = ring.random((100,), rng)
        b = ring.random((100,), rng)
        assert not np.array_equal(a, b)


class TestNumericalEdges:
    def test_ntt_handles_all_zero_and_all_max(self):
        from repro.ntt import find_ntt_primes, get_ntt

        (q,) = find_ntt_primes(30, 64)
        ntt = get_ntt(64, q)
        zeros = np.zeros(64, dtype=np.uint64)
        assert np.array_equal(ntt.inverse(ntt.forward(zeros)), zeros)
        maxed = np.full(64, q - 1, dtype=np.uint64)
        assert np.array_equal(ntt.inverse(ntt.forward(maxed)), maxed)

    def test_fxp_fft_saturating_input(self):
        from repro.fftcore import ApproxFftConfig, FixedPointFft

        cfg = ApproxFftConfig(n=32, stage_widths=10)
        fxp = FixedPointFft(cfg)
        x = np.full(32, 10.0 + 10.0j)  # far beyond the [-1, 1) range
        out = fxp(x)
        assert np.all(np.isfinite(out.view(np.float64)))

    def test_uniform_poly_spans_all_primes(self):
        from repro.he import toy_preset

        params = toy_preset(n=64)
        rng = np.random.default_rng(5)
        poly = uniform_poly(params.basis, rng)
        for residues, prime in zip(poly.residues, params.basis.primes):
            assert int(residues.max()) < prime

    def test_protocol_with_minimal_image(self):
        # 1x3x3 input with a 3x3 kernel: a single output pixel.
        params = toy_preset(n=64, share_bits=16)
        rng = np.random.default_rng(6)
        shape = ConvShape.square(1, 3, 1, 3)
        x = rng.integers(-8, 8, size=(1, 3, 3))
        w = rng.integers(-8, 8, size=(1, 1, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng)
        assert result.exact
        assert result.reconstructed.shape == (1, 1, 1)


class TestNoiseBudgetGuard:
    """Graceful approx->exact degradation when the noise budget runs out."""

    SHAPE = ConvShape(
        in_channels=1, height=4, width=4, out_channels=1,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )

    def _inputs(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.integers(-3, 4, size=(1, 4, 4))
        w = rng.integers(-2, 3, size=(1, 1, 3, 3))
        return x, w

    def _undersized_params(self):
        from repro.he import BfvParameters

        # Single 30-bit prime against t = 2^18: the predicted margin of
        # this kernel goes negative (the approximate path cannot absorb
        # its own rounding error here).
        return BfvParameters(n=64, plain_modulus=1 << 18, q_bits=(30,))

    def _bad_fft_backend(self):
        from repro.fftcore.fixed_point import ApproxFftConfig
        from repro.he.backend import FftPolyMulBackend

        # Aggressive approximation the noise model does not see: errors
        # surface only in the observed reconstructed-vs-expected check.
        cfg = ApproxFftConfig(
            n=32, stage_widths=12, twiddle_k=2, twiddle_max_shift=8
        )
        return FftPolyMulBackend(weight_config=cfg)

    def test_undersized_q_triggers_predicted_fallback_bit_exact(self):
        from repro.faults import BudgetGuard
        from repro.he.backend import FftPolyMulBackend
        from repro.protocol import make_session

        params = self._undersized_params()
        x, w = self._inputs()
        from repro.he.noise import conv_budget_margin_bits

        assert conv_budget_margin_bits(params, w, 1) < 1.0

        guard = BudgetGuard(params, policy="fallback")
        guarded = HybridConvProtocol(
            params, self.SHAPE, backend=FftPolyMulBackend(),
            guard=guard, layer_name="conv0",
        ).run(x, w, np.random.default_rng(42),
              session=make_session(params, np.random.default_rng(9)))
        exact = HybridConvProtocol(params, self.SHAPE).run(
            x, w, np.random.default_rng(42),
            session=make_session(params, np.random.default_rng(9)),
        )
        assert guarded.stats.degraded
        assert guard.events[0].reason == "predicted"
        assert guard.degraded_layers == ["conv0"]
        # Bit-exact vs the exact-NTT protocol under the same randomness.
        assert np.array_equal(guarded.reconstructed, exact.reconstructed)
        assert np.array_equal(guarded.client_share, exact.client_share)

    def test_observed_error_triggers_fallback_to_exact_result(self):
        from repro.faults import BudgetGuard
        from repro.he import toy_preset as preset

        params = preset(n=64)
        x, w = self._inputs(1)
        guard = BudgetGuard(params, policy="fallback")
        result = HybridConvProtocol(
            params, self.SHAPE, backend=self._bad_fft_backend(),
            guard=guard, layer_name="conv0",
        ).run(x, w, np.random.default_rng(1))
        assert result.exact  # the fallback rerun is exact
        assert result.stats.degraded
        assert guard.events[0].reason == "observed"
        assert guard.events[0].observed_error > 0

    def test_run_batch_degrades_whole_batch(self):
        from repro.faults import BudgetGuard
        from repro.he import toy_preset as preset

        params = preset(n=64)
        rng = np.random.default_rng(2)
        xs = rng.integers(-3, 4, size=(2, 1, 4, 4))
        _, w = self._inputs(2)
        guard = BudgetGuard(params, policy="fallback")
        results = HybridConvProtocol(
            params, self.SHAPE, backend=self._bad_fft_backend(), guard=guard,
        ).run_batch(xs, w, rng)
        assert all(r.exact and r.stats.degraded for r in results)
        assert len(guard.events) == 1  # one degradation for the batch

    def test_raise_policy_aborts_with_noise_budget_error(self):
        from repro.faults import BudgetGuard, NoiseBudgetError
        from repro.he.backend import FftPolyMulBackend

        params = self._undersized_params()
        x, w = self._inputs()
        guard = BudgetGuard(params, policy="raise")
        with pytest.raises(NoiseBudgetError, match="predicted"):
            HybridConvProtocol(
                params, self.SHAPE, backend=FftPolyMulBackend(), guard=guard,
            ).run(x, w, np.random.default_rng(0))

    def test_warn_policy_keeps_approximate_result(self):
        from repro.faults import BudgetGuard
        from repro.he import toy_preset as preset

        params = preset(n=64)
        x, w = self._inputs(3)
        guard = BudgetGuard(params, policy="warn")
        with pytest.warns(RuntimeWarning, match="observed"):
            result = HybridConvProtocol(
                params, self.SHAPE, backend=self._bad_fft_backend(),
                guard=guard,
            ).run(x, w, np.random.default_rng(3))
        assert not result.stats.degraded  # kept the approximate output
        assert result.max_error > 0

    def test_guard_ignores_exact_backends(self):
        from repro.faults import BudgetGuard

        params = self._undersized_params()
        x, w = self._inputs()
        guard = BudgetGuard(params, policy="raise")
        # Exact NTT backend: no fallback exists, the guard stays silent.
        HybridConvProtocol(params, self.SHAPE, guard=guard).run(
            x, w, np.random.default_rng(4)
        )
        assert guard.events == []

    def test_guard_validates_policy(self):
        from repro.faults import BudgetGuard

        with pytest.raises(ValueError, match="policy"):
            BudgetGuard(toy_preset(n=64), policy="panic")


class TestNoiseBudgetGuardSparseBatched:
    """The guard on the batched sparse hot path (SparseBatchedFftBackend).

    PR 7 compiled sparse plans into ``multiply_many``; these tests close
    the loop with :class:`TestNoiseBudgetGuard` by proving both guard
    policies behave identically when the protocol's batched path runs the
    sparse backend instead of the per-call FFT backend.
    """

    SHAPE = TestNoiseBudgetGuard.SHAPE

    def _batch_inputs(self, seed=0, batch=3):
        rng = np.random.default_rng(seed)
        xs = rng.integers(-3, 4, size=(batch, 1, 4, 4))
        w = rng.integers(-2, 3, size=(1, 1, 3, 3))
        return xs, w

    def _bad_sparse_backend(self):
        from repro.fftcore.fixed_point import ApproxFftConfig
        from repro.runtime import SparseBatchedFftBackend

        # Same aggressive fixed-point budget as the dense observed-error
        # trigger, but executed through compiled sparse plans.
        cfg = ApproxFftConfig(
            n=32, stage_widths=12, twiddle_k=2, twiddle_max_shift=8
        )
        return SparseBatchedFftBackend(weight_config=cfg)

    def _good_sparse_backend(self):
        from repro.fftcore.fixed_point import ApproxFftConfig
        from repro.runtime import SparseBatchedFftBackend

        cfg = ApproxFftConfig(
            n=32, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
        )
        return SparseBatchedFftBackend(weight_config=cfg)

    def test_predicted_trigger_degrades_sparse_batch_bit_exact(self):
        from repro.faults import BudgetGuard
        from repro.he import BfvParameters
        from repro.he.noise import conv_budget_margin_bits

        params = BfvParameters(n=64, plain_modulus=1 << 18, q_bits=(30,))
        xs, w = self._batch_inputs()
        assert conv_budget_margin_bits(params, w, 1) < 1.0

        guard = BudgetGuard(params, policy="fallback")
        rng_seed = 42
        guarded = HybridConvProtocol(
            params, self.SHAPE, backend=self._good_sparse_backend(),
            guard=guard, layer_name="conv0",
        ).run_batch(xs, w, np.random.default_rng(rng_seed))
        exact = HybridConvProtocol(params, self.SHAPE).run_batch(
            xs, w, np.random.default_rng(rng_seed)
        )
        assert all(r.stats.degraded for r in guarded)
        assert guard.events[0].reason == "predicted"
        assert guard.degraded_layers == ["conv0"]
        # Bit-exact vs the exact-NTT protocol under the same randomness.
        for g, e in zip(guarded, exact):
            assert np.array_equal(g.reconstructed, e.reconstructed)
            assert np.array_equal(g.client_share, e.client_share)

    def test_observed_trigger_degrades_whole_sparse_batch(self):
        from repro.faults import BudgetGuard
        from repro.he import toy_preset as preset

        params = preset(n=64)
        xs, w = self._batch_inputs(1)
        guard = BudgetGuard(params, policy="fallback")
        results = HybridConvProtocol(
            params, self.SHAPE, backend=self._bad_sparse_backend(),
            guard=guard,
        ).run_batch(xs, w, np.random.default_rng(1))
        assert all(r.exact and r.stats.degraded for r in results)
        assert guard.events[0].reason == "observed"
        assert guard.events[0].observed_error > 0
        assert len(guard.events) == 1  # one degradation covers the batch

    def test_warn_policy_keeps_approximate_sparse_batch(self):
        from repro.faults import BudgetGuard
        from repro.he import toy_preset as preset

        params = preset(n=64)
        xs, w = self._batch_inputs(2)
        guard = BudgetGuard(params, policy="warn")
        with pytest.warns(RuntimeWarning, match="observed"):
            results = HybridConvProtocol(
                params, self.SHAPE, backend=self._bad_sparse_backend(),
                guard=guard,
            ).run_batch(xs, w, np.random.default_rng(2))
        # The approximate sparse output is kept, degradation only logged.
        assert not any(r.stats.degraded for r in results)
        assert max(r.max_error for r in results) > 0
        assert guard.events[0].action == "warn"

    def test_good_sparse_config_passes_clean(self):
        from repro.faults import BudgetGuard
        from repro.he import toy_preset as preset

        params = preset(n=64)
        xs, w = self._batch_inputs(3)
        guard = BudgetGuard(params, policy="raise")
        results = HybridConvProtocol(
            params, self.SHAPE, backend=self._good_sparse_backend(),
            guard=guard,
        ).run_batch(xs, w, np.random.default_rng(3))
        assert guard.events == []  # a healthy sparse batch never triggers
        assert all(r.exact for r in results)
