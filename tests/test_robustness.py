"""Failure-injection and robustness sanity checks across the stack."""

import numpy as np
import pytest

from repro.encoding import ConvShape
from repro.he import BfvContext, toy_preset
from repro.he.poly import RingPoly, uniform_poly
from repro.protocol import HybridConvProtocol, ShareRing


class TestBfvTampering:
    @pytest.fixture(scope="class")
    def setup(self):
        params = toy_preset(n=64, share_bits=12)
        ctx = BfvContext(params)
        rng = np.random.default_rng(0)
        sk, pk = ctx.keygen(rng)
        m = rng.integers(0, params.t, size=64)
        ct = ctx.encrypt(pk, m, rng)
        return params, ctx, sk, pk, m, ct

    def test_wrong_key_decrypts_garbage(self, setup):
        params, ctx, _, pk, m, ct = setup
        other_sk, _ = ctx.keygen(np.random.default_rng(99))
        wrong = ctx.decrypt(other_sk, ct)
        # A wrong ternary key scrambles essentially every coefficient.
        assert np.mean(wrong == m) < 0.2

    def test_large_tamper_corrupts_message(self, setup):
        params, ctx, sk, _, m, ct = setup
        tampered = ct.copy()
        big = np.zeros(64, dtype=np.int64)
        big[7] = params.q // 3
        tampered.c0 = tampered.c0 + RingPoly.from_signed(params.basis, big)
        out = ctx.decrypt(sk, tampered)
        assert out[7] != m[7]
        # Other slots are untouched (coefficient-wise independence).
        mask = np.arange(64) != 7
        assert np.array_equal(out[mask], m[mask])

    def test_sub_threshold_tamper_harmless(self, setup):
        # The kernel-level bound: perturbations below q/2t never flip any
        # coefficient.
        params, ctx, sk, _, m, ct = setup
        rng = np.random.default_rng(1)
        margin = params.noise_ceiling // 4
        tampered = ct.copy()
        tampered.c0 = tampered.c0 + RingPoly.from_signed(
            params.basis, rng.integers(-margin, margin, size=64)
        )
        assert np.array_equal(ctx.decrypt(sk, tampered), m)

    def test_ciphertexts_are_randomized(self, setup):
        params, ctx, _, pk, m, _ = setup
        rng = np.random.default_rng(2)
        a = ctx.encrypt(pk, m, rng)
        b = ctx.encrypt(pk, m, rng)
        assert a.c0 != b.c0  # fresh randomness per encryption

    def test_fresh_ciphertext_components_full_range(self, setup):
        # c1 is (pseudo)uniform mod q: it must span the whole range, not
        # leak small-magnitude structure.
        params, ctx, _, pk, m, ct = setup
        centered = ct.c1.to_centered()
        mags = np.array([abs(int(v)) for v in centered], dtype=np.float64)
        assert mags.max() > params.q / 4


class TestProtocolRobustness:
    def test_client_share_alone_reveals_nothing(self):
        # With a fresh mask per output, the client's share is uniform:
        # identical inputs produce unrelated client shares across runs.
        params = toy_preset(n=64, share_bits=16)
        shape = ConvShape.square(1, 4, 1, 3)
        rng_inputs = np.random.default_rng(3)
        x = rng_inputs.integers(-8, 8, size=(1, 4, 4))
        w = rng_inputs.integers(-8, 8, size=(1, 1, 3, 3))
        shares = []
        for seed in (10, 11):
            result = HybridConvProtocol(params, shape).run(
                x, w, np.random.default_rng(seed)
            )
            shares.append(result.client_share.copy())
            assert result.exact
        assert not np.array_equal(shares[0], shares[1])

    def test_share_ring_masks_are_fresh(self):
        ring = ShareRing(16)
        rng = np.random.default_rng(4)
        a = ring.random((100,), rng)
        b = ring.random((100,), rng)
        assert not np.array_equal(a, b)


class TestNumericalEdges:
    def test_ntt_handles_all_zero_and_all_max(self):
        from repro.ntt import find_ntt_primes, get_ntt

        (q,) = find_ntt_primes(30, 64)
        ntt = get_ntt(64, q)
        zeros = np.zeros(64, dtype=np.uint64)
        assert np.array_equal(ntt.inverse(ntt.forward(zeros)), zeros)
        maxed = np.full(64, q - 1, dtype=np.uint64)
        assert np.array_equal(ntt.inverse(ntt.forward(maxed)), maxed)

    def test_fxp_fft_saturating_input(self):
        from repro.fftcore import ApproxFftConfig, FixedPointFft

        cfg = ApproxFftConfig(n=32, stage_widths=10)
        fxp = FixedPointFft(cfg)
        x = np.full(32, 10.0 + 10.0j)  # far beyond the [-1, 1) range
        out = fxp(x)
        assert np.all(np.isfinite(out.view(np.float64)))

    def test_uniform_poly_spans_all_primes(self):
        from repro.he import toy_preset

        params = toy_preset(n=64)
        rng = np.random.default_rng(5)
        poly = uniform_poly(params.basis, rng)
        for residues, prime in zip(poly.residues, params.basis.primes):
            assert int(residues.max()) < prime

    def test_protocol_with_minimal_image(self):
        # 1x3x3 input with a 3x3 kernel: a single output pixel.
        params = toy_preset(n=64, share_bits=16)
        rng = np.random.default_rng(6)
        shape = ConvShape.square(1, 3, 1, 3)
        x = rng.integers(-8, 8, size=(1, 3, 3))
        w = rng.integers(-8, 8, size=(1, 1, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng)
        assert result.exact
        assert result.reconstructed.shape == (1, 1, 1)
