"""The chaos campaign itself: survival, determinism, CLI exit codes."""

from repro.faults import ChaosReport, run_campaign


class TestChaosCampaign:
    def test_campaign_survives_at_twenty_percent(self):
        report = run_campaign(seed=0, iterations=4, max_rate=0.2)
        assert isinstance(report, ChaosReport)
        assert report.survived
        assert report.silent_corruptions == 0
        assert all(it.ok for it in report.iterations)
        # The campaign actually exercised the fault paths.
        assert sum(it.injected_channel_faults for it in report.iterations) > 0
        assert sum(it.guard_events for it in report.iterations) > 0
        assert sum(it.worker_faults_injected for it in report.iterations) > 0

    def test_campaign_is_deterministic(self):
        a = run_campaign(seed=3, iterations=3)
        b = run_campaign(seed=3, iterations=3)
        assert a.describe() == b.describe()

    def test_report_describe_mentions_verdict(self):
        report = run_campaign(seed=1, iterations=2)
        text = report.describe()
        assert "verdict" in text
        assert "SILENT corruptions" in text

    def test_cli_exit_code(self):
        from repro.cli import main

        assert main(["chaos", "--seed", "0", "--iterations", "2"]) == 0

    def test_campaign_validates_arguments(self):
        import pytest

        with pytest.raises(ValueError):
            run_campaign(iterations=0)
        with pytest.raises(ValueError):
            run_campaign(max_rate=1.5)
