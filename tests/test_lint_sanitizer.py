"""Tests for the dynamic race sanitizer (vector clocks, locks, instrument)."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint import RaceSanitizer, SanitizedLock, VectorClock, instrument
from repro.runtime import PlanCache

clock_dicts = st.dictionaries(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=20),
    max_size=5,
)


class TestVectorClock:
    def test_empty_clock_happens_before_everything(self):
        assert VectorClock().happens_before(VectorClock({1: 3}))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorClock())

    @given(clock_dicts)
    def test_reflexive(self, c):
        v = VectorClock(c)
        assert v.happens_before(v)

    @given(clock_dicts, st.integers(min_value=1, max_value=5))
    def test_increment_strictly_after(self, c, tid):
        v = VectorClock(c)
        w = v.copy()
        w.increment(tid)
        assert v.happens_before(w)
        assert not w.happens_before(v)

    @given(clock_dicts, clock_dicts)
    def test_join_is_least_upper_bound(self, a, b):
        va, vb = VectorClock(a), VectorClock(b)
        j = va.copy()
        j.join(vb)
        assert va.happens_before(j) and vb.happens_before(j)
        # Least: j is exactly the componentwise max, no slack.
        for tid in set(a) | set(b):
            assert j.get(tid) == max(va.get(tid), vb.get(tid))

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_transitive(self, a, b, c):
        va, vb, vc = VectorClock(a), VectorClock(b), VectorClock(c)
        if va.happens_before(vb) and vb.happens_before(vc):
            assert va.happens_before(vc)

    @given(clock_dicts, clock_dicts)
    def test_antisymmetric(self, a, b):
        va, vb = VectorClock(a), VectorClock(b)
        if va.happens_before(vb) and vb.happens_before(va):
            assert va == vb

    @given(clock_dicts, clock_dicts)
    def test_join_commutes(self, a, b):
        ab = VectorClock(a)
        ab.join(VectorClock(b))
        ba = VectorClock(b)
        ba.join(VectorClock(a))
        assert ab == ba


def run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestHappensBefore:
    def test_unordered_cross_thread_writes_race(self):
        """Sequential wall-clock order is NOT happens-before: two writes
        with no synchronization race even when they never overlap."""
        san = RaceSanitizer()
        san.start()
        run_threads(lambda: san.on_write("x"))
        run_threads(lambda: san.on_write("x"))
        assert any(r.kind == "write-write" for r in san.races)

    def test_lock_creates_order(self):
        san = RaceSanitizer()
        lock = SanitizedLock(threading.Lock(), san)
        san.start()

        def writer():
            with lock:
                san.on_write("x")

        t1 = threading.Thread(target=writer)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=writer)
        t2.start()
        t2.join()
        assert san.races == []

    def test_write_read_race_detected(self):
        san = RaceSanitizer()
        san.start()
        run_threads(lambda: san.on_write("x"))
        run_threads(lambda: san.on_read("x"))
        assert any(r.kind == "write-read" for r in san.races)

    def test_setup_writes_ordered_by_start(self):
        san = RaceSanitizer()
        san.on_write("x")  # single-threaded setup
        san.start()
        run_threads(lambda: san.on_read("x"))
        assert san.races == []

    def test_join_all_orders_assertions(self):
        san = RaceSanitizer()
        san.start()
        run_threads(lambda: san.on_write("x"))
        san.join_all()
        san.on_read("x")
        assert san.races == []

    def test_rlock_reentrancy_publishes_once(self):
        san = RaceSanitizer()
        lock = SanitizedLock(threading.RLock(), san)
        san.start()

        def writer():
            with lock:
                with lock:  # nested acquire of the same RLock
                    san.on_write("x")

        for _ in range(2):
            t = threading.Thread(target=writer)
            t.start()
            t.join()
        assert san.races == []

    def test_reports_deduplicated(self):
        san = RaceSanitizer()
        san.start()

        def hammer():
            for _ in range(50):
                san.on_write("x")

        run_threads(hammer, hammer)
        keys = [(r.var, r.kind, r.first_thread, r.second_thread)
                for r in san.races]
        assert len(keys) == len(set(keys))


class PlantedCounter:
    """Test double with one guarded and one unguarded increment path."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump_unsafe(self):
        self.value += 1  # repro-lint: disable=RACE002  the planted race

    def bump_safe(self):
        with self._lock:
            self.value += 1


class TestInstrument:
    def test_detects_planted_race(self):
        counter = PlantedCounter()
        san = instrument(counter, fields=("value",))
        san.start()
        run_threads(
            *[counter.bump_unsafe for _ in range(4)]
        )
        san.join_all()
        assert san.races != []
        assert any(r.kind in ("write-write", "read-write")
                   for r in san.races)
        assert "value" in san.describe()

    def test_guarded_counter_is_clean(self):
        counter = PlantedCounter()
        san = instrument(counter, fields=("value",))
        san.start()
        run_threads(*[counter.bump_safe for _ in range(4)])
        san.join_all()
        assert counter.value == 4
        assert san.races == [], san.describe()

    def test_isinstance_survives_instrumentation(self):
        counter = PlantedCounter()
        instrument(counter, fields=("value",))
        assert isinstance(counter, PlantedCounter)

    def test_missing_lock_attr_ignored(self):
        counter = PlantedCounter()
        san = instrument(
            counter, fields=("value",), lock_attrs=("_lock", "_nope")
        )
        assert isinstance(counter._lock, SanitizedLock)
        assert san is not None


class TestPlanCacheUnderSanitizer:
    """The real PlanCache passes a multi-worker stress race-free."""

    def stress(self, workers: int, ops: int = 60) -> RaceSanitizer:
        cache = PlanCache(capacity_bytes=1 << 16, check_integrity=False)
        san = instrument(
            cache,
            fields=("hits", "misses", "evictions", "corruptions", "_bytes"),
            mutable_fields=("_entries",),
        )
        san.start()

        def worker(seed: int):
            for i in range(ops):
                key = ("plan", (seed + i) % 7)
                cache.get_or_build(key, lambda: bytes(64))
                cache.get(key)
                len(cache)
                key in cache
                cache.stats()
                if i % 13 == 0:
                    cache.clear()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for f in [pool.submit(worker, s) for s in range(workers)]:
                f.result()
        san.join_all()
        assert cache.stats()["hits"] >= 0
        return san

    def test_two_workers_race_free(self):
        san = self.stress(workers=2)
        assert san.races == [], san.describe()

    @pytest.mark.slow
    def test_eight_workers_race_free(self):
        san = self.stress(workers=8, ops=120)
        assert san.races == [], san.describe()

    def test_unguarded_cache_access_would_race(self):
        """Negative control: bypassing the lock is caught immediately."""
        cache = PlanCache()
        san = instrument(cache, fields=("hits",))
        san.start()
        run_threads(lambda: setattr(cache, "hits", 1))
        run_threads(lambda: setattr(cache, "hits", 2))
        assert any(r.kind == "write-write" for r in san.races)
