"""Crash recovery, exactly-once application and graceful degradation.

Every test injects a deterministic fault (explicit job indices or a 100%
rate on first attempts) and asserts two things: the *result* is
bit-identical to the serial oracle, and the *accounting* in
:class:`ClusterStats` names the recovery that produced it.  A cluster
fault may cost time, never correctness -- these tests are the proof.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterError,
    ClusterExecutor,
    ClusterFaultInjector,
    ClusterPolicy,
    ClusterStats,
)
from repro.cluster.jobs import MSG_JOB_MUL, mul_job_payload
from repro.encoding.conv_encoding import ConvShape
from repro.faults.session import RetryPolicy
from repro.he.poly import RingPoly
from repro.ntt import RnsBasis
from repro.protocol.wire import serialize_poly
from repro.runtime import BatchedHConvEngine

N = 128
SHAPE = ConvShape(
    in_channels=2, height=6, width=6, out_channels=2,
    kernel_h=3, kernel_w=3, stride=1, padding=1,
)


def conv_inputs(seed=0, batch=4):
    rng = np.random.default_rng(seed)
    xs = rng.integers(-7, 8, size=(batch, 2, 6, 6))
    w = rng.integers(-3, 4, size=(2, 2, 3, 3))
    return xs, w


def serial_reference(xs, w):
    return BatchedHConvEngine(mode="ntt").conv2d_batch(xs, w, SHAPE, N)


def run_clustered(injector, policy=None, xs=None, w=None):
    if xs is None:
        xs, w = conv_inputs()
    policy = policy or ClusterPolicy(workers=2, heartbeat_timeout=30.0)
    with ClusterExecutor(policy=policy, fault_injector=injector) as ex:
        got = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
        stats = ex.stats
    assert np.array_equal(got, serial_reference(xs, w))
    return stats


class TestCrashRecovery:
    def test_sigkill_mid_job_requeues_and_respawns(self):
        stats = run_clustered(ClusterFaultInjector(kill_before_jobs=[0]))
        assert stats.worker_deaths >= 1
        assert stats.respawns >= 1
        assert stats.jobs_requeued >= 1
        assert stats.backoff_seconds > 0
        assert stats.dead_letters == 0
        assert stats.recoveries > 0

    def test_respawned_worker_replays_warmups(self):
        # The executor records one warmup per execution context before the
        # first dispatch, so the replacement spawned after the SIGKILL
        # rebuilds its plan caches before rejoining.
        stats = run_clustered(ClusterFaultInjector(kill_before_jobs=[0]))
        assert stats.warmup_replays >= 1

    def test_hang_detected_at_deadline(self):
        stats = run_clustered(
            ClusterFaultInjector(hang_jobs=[1]),
            policy=ClusterPolicy(workers=2, heartbeat_timeout=1.0),
        )
        assert stats.hang_timeouts >= 1
        assert stats.jobs_requeued >= 1

    def test_corrupted_job_frame_detected_and_requeued(self):
        # Every first dispatch arrives with a flipped byte: the worker's
        # CRC check reports a wire fault and the retry runs clean.
        stats = run_clustered(ClusterFaultInjector(corrupt_rate=1.0))
        assert stats.wire_errors >= 2
        assert stats.jobs_requeued >= 2
        assert stats.worker_deaths == 0  # detected in-band, nobody died

    def test_rate_based_kills_deterministic_under_seed(self):
        plans = []
        for _ in range(2):
            inj = ClusterFaultInjector(
                kill_rate=0.5, hang_rate=0.3, corrupt_rate=0.3,
                duplicate_rate=0.3, seed=17,
            )
            plans.append([inj.plan_dispatch(i, 1) for i in range(30)])
        assert plans[0] == plans[1]


class TestExactlyOnce:
    def test_duplicate_result_discarded(self):
        xs, w = conv_inputs()
        injector = ClusterFaultInjector(duplicate_rate=1.0)
        policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
        with ClusterExecutor(policy=policy, fault_injector=injector) as ex:
            got = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
            assert np.array_equal(got, serial_reference(xs, w))
            # Whatever the end-of-run sweep missed, the next liveness
            # probe consumes (the pipe is FIFO: stale results precede the
            # pong).  Every duplicated send must be counted as a discard.
            ex.supervisor.probe()
            assert ex.stats.duplicate_results == 2
            assert ex.stats.jobs_requeued == 0

    def test_kill_after_result_is_not_requeued(self):
        # The worker dies right after its result is applied: the job must
        # not run twice, and the next batch heals the pool.
        xs, w = conv_inputs()
        injector = ClusterFaultInjector(kill_after_jobs=[0])
        policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
        with ClusterExecutor(policy=policy, fault_injector=injector) as ex:
            got = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
            assert np.array_equal(got, serial_reference(xs, w))
            assert injector.injected["kills_after"] == 1
            first = ex.stats.to_dict()
            assert first["jobs_requeued"] == 0
            assert first["serial_fallback_jobs"] == 0
            # Second batch: the probe (or EOF) notices the corpse, the
            # pool is healed, results stay correct.
            got2 = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
            assert np.array_equal(got2, serial_reference(xs, w))
            assert ex.stats.worker_deaths >= 1
            assert ex.stats.respawns >= 1


class TestDegradation:
    def test_pool_shrink_falls_back_to_serial(self):
        # Both workers die, the respawn budget is zero: the pool shrinks
        # below min_workers and everything runs on the in-process path.
        stats = run_clustered(
            ClusterFaultInjector(kill_before_jobs=[0, 1]),
            policy=ClusterPolicy(
                workers=2, heartbeat_timeout=5.0,
                max_respawns=0, min_workers=2,
            ),
        )
        assert stats.pool_shrinks >= 1
        assert stats.serial_fallback_jobs >= 1
        assert stats.workers < 2

    def test_exhausted_retries_dead_letter_then_serial(self):
        # max_attempts=1 with guaranteed first-attempt corruption: every
        # job dead-letters after its only try, then the serial oracle
        # still produces the exact answer.
        stats = run_clustered(
            ClusterFaultInjector(corrupt_rate=1.0),
            policy=ClusterPolicy(
                workers=2, heartbeat_timeout=30.0,
                retry=RetryPolicy(max_attempts=1, timeout=30.0),
            ),
        )
        assert stats.dead_letters == 2
        assert stats.serial_fallback_jobs == 2
        assert len(stats.dead_letter_log) == 2
        assert all(
            letter.attempts == 1 for letter in stats.dead_letter_log
        )

    def test_poisoned_payload_reproduces_loudly_on_serial_path(self):
        # A *persistently* bad job (corrupt ciphertext bytes inside the
        # payload, not on the pipe) fails on every worker attempt and on
        # the serial path too: the supervisor must raise, never invent an
        # answer -- and the workers' deserialize_poly detections must
        # still be folded into the supervisor stats (satellite: worker
        # wire-error propagation).
        basis = RnsBasis.generate(64, [30, 31])
        rng = np.random.default_rng(0)
        poly = RingPoly(basis, basis.to_rns(rng.integers(0, 1 << 20, 64)))
        blob = bytearray(serialize_poly(poly))
        blob[0] ^= 0xFF  # break the wire header: structurally invalid
        payload = mul_job_payload(
            "ntt", None, None, basis, [bytes(blob)],
            [rng.integers(-5, 6, size=64)],
        )
        policy = ClusterPolicy(
            workers=1, heartbeat_timeout=30.0,
            retry=RetryPolicy(max_attempts=2, timeout=30.0),
        )
        with ClusterExecutor(policy=policy) as ex:
            with pytest.raises(ClusterError, match="serial fallback"):
                ex.supervisor.run_jobs(MSG_JOB_MUL, [payload])
            assert ex.stats.wire_errors >= 2  # one per worker attempt
            assert ex.stats.dead_letters == 1

    def test_worker_cache_tamper_detected_and_propagated(self):
        # Chaos hook: corrupt one cached plan inside each live worker;
        # the next job must detect it (integrity digest), evict,
        # recompute bit-identically, and the eviction count must survive
        # the process boundary into ClusterStats.
        xs, w = conv_inputs()
        policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
        with ClusterExecutor(policy=policy) as ex:
            got = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
            assert np.array_equal(got, serial_reference(xs, w))
            assert ex.supervisor.tamper_worker_caches() >= 1
            got2 = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
            assert np.array_equal(got2, serial_reference(xs, w))
            assert ex.stats.cache_corruptions >= 1


class TestAccounting:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClusterPolicy(workers=0)
        with pytest.raises(ValueError):
            ClusterPolicy(heartbeat_timeout=0.0)
        with pytest.raises(ValueError):
            ClusterPolicy(max_respawns=-1)
        with pytest.raises(ValueError):
            ClusterPolicy(workers=2, min_workers=0)
        with pytest.raises(ValueError):
            ClusterPolicy(workers=2, min_workers=3)

    def test_injector_rate_validation(self):
        with pytest.raises(ValueError):
            ClusterFaultInjector(kill_rate=1.5)
        with pytest.raises(ValueError):
            ClusterFaultInjector(corrupt_rate=-0.1)

    def test_faults_only_hit_first_attempts(self):
        inj = ClusterFaultInjector(
            kill_rate=1.0, hang_rate=1.0, corrupt_rate=1.0,
            duplicate_rate=1.0,
        )
        retry_plan = inj.plan_dispatch(0, attempt=2)
        assert not any(retry_plan.values())

    def test_snapshot_delta_treats_workers_as_gauge(self):
        stats = ClusterStats(workers=2, jobs=10, dispatches=12)
        before = stats.to_dict()
        stats.jobs += 3
        stats.dispatches += 4
        delta = stats.snapshot_delta(before)
        assert delta["workers"] == 2  # pool width, not a rate
        assert delta["jobs"] == 3
        assert delta["dispatches"] == 4

    def test_recoveries_rollup(self):
        stats = ClusterStats(
            worker_deaths=2, hang_timeouts=1, jobs_requeued=3,
            serial_fallback_jobs=4,
        )
        assert stats.recoveries == 10
        assert stats.to_dict()["recoveries"] == 10

    def test_closed_supervisor_rejects_work(self):
        ex = ClusterExecutor(policy=ClusterPolicy(workers=1))
        ex.close()
        xs, w = conv_inputs(batch=1)
        with pytest.raises(ClusterError, match="closed"):
            ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)


class TestPerJobDeadline:
    """Per-job ``deadline_ms`` arms a tighter hang deadline than the pool
    heartbeat, so a stuck worker is declared within the request SLO."""

    def test_hang_declared_within_deadline_not_heartbeat(self):
        import time

        xs, w = conv_inputs()
        # A 30s heartbeat alone would leave the hung worker undetected
        # for half a minute; the 0.5s request budget must win.
        policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
        injector = ClusterFaultInjector(hang_jobs=[0])
        with ClusterExecutor(policy=policy, fault_injector=injector) as ex:
            start = time.monotonic()
            got = ex.conv2d_batch(
                "ntt", None, xs, w, SHAPE, N, deadline_s=0.5
            )
            elapsed = time.monotonic() - start
            stats = ex.stats
        assert np.array_equal(got, serial_reference(xs, w))
        assert stats.hang_timeouts >= 1
        assert stats.jobs_requeued >= 1
        assert elapsed < 10.0  # far below the 30s heartbeat

    def test_deadline_run_bit_identical_to_undeadlined(self):
        xs, w = conv_inputs(seed=5)
        policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
        with ClusterExecutor(policy=policy) as ex:
            timed = ex.conv2d_batch(
                "ntt", None, xs, w, SHAPE, N, deadline_s=5.0
            )
        with ClusterExecutor(policy=policy) as ex:
            untimed = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
        assert np.array_equal(timed, untimed)

    def test_stamp_floors_and_skips(self):
        payloads = [{"mode": "ntt"}, {"mode": "ntt"}]
        ClusterExecutor._stamp_deadline(payloads, 0.25)
        assert all(p["deadline_ms"] == 250.0 for p in payloads)
        # Sub-millisecond budgets floor at 1ms so jobs are never armed
        # with a zero or negative deadline.
        floored = ClusterExecutor._stamp_deadline([{}], 1e-6)
        assert floored[0]["deadline_ms"] == 1.0
        # No deadline, no key: the envelope stays byte-identical.
        assert "deadline_ms" not in ClusterExecutor._stamp_deadline([{}], None)[0]
