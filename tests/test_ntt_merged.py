"""Tests for the merged-twist (SEAL-style) negacyclic NTT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import (
    NegacyclicNtt,
    find_ntt_primes,
    negacyclic_convolution_naive,
)
from repro.ntt.merged import MergedNtt, get_merged_ntt


@pytest.fixture(scope="module")
def pair():
    (q,) = find_ntt_primes(30, 64)
    return MergedNtt(64, q), NegacyclicNtt(64, q)


class TestMergedNtt:
    def test_roundtrip(self, pair):
        merged, _ = pair
        rng = np.random.default_rng(0)
        a = rng.integers(0, merged.q, size=64, dtype=np.uint64)
        assert np.array_equal(merged.inverse(merged.forward(a)), a)

    def test_forward_is_bit_reversed_two_pass(self, pair):
        # The merged transform equals the explicit-twist transform with
        # its output permuted into bit-reversed order.
        merged, two_pass = pair
        rng = np.random.default_rng(1)
        a = rng.integers(0, merged.q, size=64, dtype=np.uint64)
        natural = merged.to_natural_order(merged.forward(a))
        assert np.array_equal(natural, two_pass.forward(a))

    def test_multiply_matches_naive(self, pair):
        merged, _ = pair
        rng = np.random.default_rng(2)
        a = rng.integers(0, merged.q, size=64, dtype=np.uint64)
        b = rng.integers(0, merged.q, size=64, dtype=np.uint64)
        expected = negacyclic_convolution_naive(a, b, modulus=merged.q)
        assert np.array_equal(merged.multiply(a, b), expected)

    def test_multiply_matches_two_pass(self, pair):
        merged, two_pass = pair
        rng = np.random.default_rng(3)
        a = rng.integers(0, merged.q, size=64, dtype=np.uint64)
        b = rng.integers(0, merged.q, size=64, dtype=np.uint64)
        assert np.array_equal(merged.multiply(a, b), two_pass.multiply(a, b))

    def test_39bit_modulus(self):
        (q,) = find_ntt_primes(39, 128)
        merged = MergedNtt(128, q)
        rng = np.random.default_rng(4)
        a = rng.integers(0, q, size=128, dtype=np.uint64)
        b = rng.integers(0, q, size=128, dtype=np.uint64)
        expected = negacyclic_convolution_naive(a, b, modulus=q)
        assert np.array_equal(merged.multiply(a, b), expected)

    def test_large_n(self):
        (q,) = find_ntt_primes(30, 4096)
        merged = get_merged_ntt(4096, q)
        rng = np.random.default_rng(5)
        a = rng.integers(0, q, size=4096, dtype=np.uint64)
        assert np.array_equal(merged.inverse(merged.forward(a)), a)

    def test_cache(self):
        (q,) = find_ntt_primes(30, 64)
        assert get_merged_ntt(64, q) is get_merged_ntt(64, q)

    def test_validation(self):
        with pytest.raises(ValueError):
            MergedNtt(48, 97)
        with pytest.raises(ValueError):
            MergedNtt(64, 97)  # wrong congruence
        (q,) = find_ntt_primes(20, 16)
        ntt = MergedNtt(16, q)
        with pytest.raises(ValueError):
            ntt.forward(np.zeros(8, dtype=np.uint64))
        with pytest.raises(ValueError):
            ntt.inverse(np.zeros(8, dtype=np.uint64))

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_property_agrees_with_two_pass_n16(self, data):
        (q,) = find_ntt_primes(20, 16)
        merged = get_merged_ntt(16, q)
        from repro.ntt import get_ntt

        two_pass = get_ntt(16, q)
        a = np.array(
            data.draw(st.lists(st.integers(0, q - 1), min_size=16, max_size=16)),
            dtype=np.uint64,
        )
        b = np.array(
            data.draw(st.lists(st.integers(0, q - 1), min_size=16, max_size=16)),
            dtype=np.uint64,
        )
        assert np.array_equal(merged.multiply(a, b), two_pass.multiply(a, b))
