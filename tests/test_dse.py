"""Tests for the DSE: space, error model, GP/BO, Pareto, layer driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import (
    DesignPoint,
    DesignSpace,
    GaussianProcess,
    bayesian_optimize,
    expected_improvement,
    explore_layer,
    hconv_error_variance,
    hypervolume_2d,
    monte_carlo_hconv_error,
    monte_carlo_spectrum_error,
    pareto_front,
    pareto_mask,
    random_search,
    spectrum_error_variance,
    stage_twiddle_errors,
)
from repro.encoding import Conv2dEncoder, ConvShape
from repro.fftcore import ApproxFftConfig


class TestDesignSpace:
    def test_sample_in_bounds(self):
        space = DesignSpace(stages=5, width_range=(8, 39), k_range=(2, 18))
        rng = np.random.default_rng(0)
        for point in space.sample_many(50, rng):
            assert all(8 <= w <= 39 for w in point.stage_widths)
            assert 2 <= point.twiddle_k <= 18
            assert len(point.stage_widths) == 5

    def test_encode_normalized(self):
        space = DesignSpace(stages=3)
        point = space.uniform_point(39, 18)
        enc = space.encode(point)
        assert enc.shape == (4,)
        np.testing.assert_allclose(enc, 1.0)

    def test_neighbors_stay_in_bounds(self):
        space = DesignSpace(stages=4, width_range=(8, 20), k_range=(2, 6))
        rng = np.random.default_rng(1)
        point = space.uniform_point(8, 2)
        for nb in space.neighbors(point, rng, count=20):
            assert all(8 <= w <= 20 for w in nb.stage_widths)
            assert 2 <= nb.twiddle_k <= 6

    def test_point_to_config(self):
        point = DesignPoint((10, 12, 14), 5)
        cfg = point.to_config(8)
        assert cfg.stage_widths == [10, 12, 14]
        assert cfg.twiddle_k == 5
        with pytest.raises(ValueError):
            point.to_config(16)

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            DesignSpace(stages=0)
        with pytest.raises(ValueError):
            DesignSpace(stages=2, width_range=(10, 8))


class TestErrorModel:
    def test_data_quantization_term_accurate(self):
        for dw in (12, 16, 20):
            cfg = ApproxFftConfig(n=128, stage_widths=dw)
            pred = spectrum_error_variance(cfg, signal_power=0.125)
            mc = monte_carlo_spectrum_error(cfg, trials=6)
            assert 0.4 < pred / mc < 2.5

    def test_twiddle_term_within_factor(self):
        for dw, k in [(27, 5), (20, 8), (27, 18)]:
            cfg = ApproxFftConfig(n=128, stage_widths=dw, twiddle_k=k)
            pred = spectrum_error_variance(cfg, signal_power=0.125)
            mc = monte_carlo_spectrum_error(cfg, trials=6)
            assert 0.2 < pred / mc < 5.0

    def test_monotone_in_width(self):
        errs = [
            spectrum_error_variance(ApproxFftConfig(n=64, stage_widths=dw))
            for dw in (10, 14, 18, 22)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_monotone_in_k(self):
        errs = [
            spectrum_error_variance(
                ApproxFftConfig(n=64, stage_widths=30, twiddle_k=k)
            )
            for k in (2, 5, 10, 18)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_stage_twiddle_errors_trivial_early(self):
        eps = stage_twiddle_errors(64, 5)
        assert eps[0] == 0.0  # stage 1 uses W^0 = 1 only
        assert eps[-1] >= eps[1]

    def test_hconv_error_matches_bit_true_pipeline(self):
        # End-to-end surrogate validation against the exact simulator.
        n = 256
        enc = Conv2dEncoder(ConvShape.square(2, 8, 4, 3), n)
        rng = np.random.default_rng(0)
        w = rng.integers(-8, 8, size=(4, 2, 3, 3))
        wpoly = enc.encode_weights(w)[(0, 0)]
        from repro.fftcore.negacyclic import NegacyclicFft

        folded = NegacyclicFft(n).fold(wpoly.astype(float)) / 16.0
        p_in = float(np.mean(np.abs(folded) ** 2))
        act_var = (2 * 5) ** 2 / 12
        for dw, k in [(14, 4), (20, 6), (16, 8)]:
            cfg = ApproxFftConfig(n=n // 2, stage_widths=dw, twiddle_k=k)
            pred = (
                spectrum_error_variance(cfg, signal_power=p_in)
                * 16.0**2
                * act_var
            )
            mc = monte_carlo_hconv_error(cfg, wpoly, n, trials=6)
            assert 0.2 < pred / mc < 5.0

    def test_input_width_contributes(self):
        base = ApproxFftConfig(n=64, stage_widths=30)
        narrow = ApproxFftConfig(n=64, stage_widths=30, input_width=6)
        assert spectrum_error_variance(narrow) > spectrum_error_variance(base)

    def test_hconv_error_variance_scales_with_activation(self):
        cfg = ApproxFftConfig(n=32, stage_widths=16, twiddle_k=4)
        lo = hconv_error_variance(cfg, 0.01, activation_power=1.0, poly_n=64)
        hi = hconv_error_variance(cfg, 0.01, activation_power=16.0, poly_n=64)
        assert hi == pytest.approx(16 * lo)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(12, 3))
        y = np.sin(x.sum(axis=1) * 3)
        gp = GaussianProcess(noise_var=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        x = np.zeros((3, 2))
        x[:, 0] = [0.0, 0.1, 0.2]
        gp = GaussianProcess().fit(x, np.array([1.0, 1.1, 0.9]))
        _, std_near = gp.predict(np.array([[0.1, 0.0]]))
        _, std_far = gp.predict(np.array([[1.0, 1.0]]))
        assert std_far > std_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            GaussianProcess(length_scale=-1.0)

    def test_expected_improvement_properties(self):
        # EI is higher where the mean is lower (same std)...
        ei = expected_improvement(np.array([0.5, 0.1]), np.array([0.1, 0.1]), 0.4)
        assert ei[1] > ei[0]
        # ...and higher where std is larger (same mean at the incumbent).
        ei2 = expected_improvement(np.array([0.4, 0.4]), np.array([0.01, 0.3]), 0.4)
        assert ei2[1] > ei2[0]
        assert np.all(ei >= 0)


class TestPareto:
    def test_mask_simple(self):
        obj = np.array([[1, 5], [2, 2], [5, 1], [3, 3], [6, 6]])
        mask = pareto_mask(obj)
        assert mask.tolist() == [True, True, True, False, False]

    def test_front_sorted(self):
        points = ["a", "b", "c"]
        obj = np.array([[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]])
        front, arr = pareto_front(points, obj)
        assert front == ["b", "c", "a"]
        assert arr[0, 0] == 1.0

    def test_duplicate_points_survive(self):
        obj = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert pareto_mask(obj).sum() == 2

    def test_hypervolume(self):
        obj = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = hypervolume_2d(obj, (3.0, 3.0))
        # staircase: (3-1)*(3-2) + (3-2)*(2-1) = 3
        assert hv == pytest.approx(3.0)

    def test_hypervolume_clips_outside(self):
        obj = np.array([[5.0, 5.0]])
        assert hypervolume_2d(obj, (3.0, 3.0)) == 0.0

    def test_validates(self):
        with pytest.raises(ValueError):
            pareto_mask(np.zeros(3))
        with pytest.raises(ValueError):
            pareto_front(["a"], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            hypervolume_2d(np.zeros((2, 3)), (1.0, 1.0))


def _toy_objective(point: DesignPoint):
    # Smooth synthetic trade-off: power grows with widths/k, error shrinks.
    mean_w = float(np.mean(point.stage_widths))
    power = mean_w + 0.5 * point.twiddle_k
    error = 1000.0 * 2.0 ** -(mean_w / 2) + 50.0 * 2.0 ** -point.twiddle_k
    return power, error


class TestBayesianOptimization:
    def test_runs_within_budget(self):
        space = DesignSpace(stages=4)
        run = bayesian_optimize(
            space, _toy_objective, budget=25, initial=8,
            rng=np.random.default_rng(3),
        )
        assert len(run.points) == 25
        assert len(run.objectives) == 25

    def test_front_is_nondominated(self):
        space = DesignSpace(stages=4)
        run = bayesian_optimize(
            space, _toy_objective, budget=25, initial=8,
            rng=np.random.default_rng(4),
        )
        _, front = run.front()
        assert np.all(np.diff(front[:, 0]) >= 0)
        assert np.all(np.diff(front[:, 1]) <= 0)

    def test_beats_or_matches_random_on_hypervolume(self):
        space = DesignSpace(stages=4)
        wins = 0
        for seed in range(3):
            bo = bayesian_optimize(
                space, _toy_objective, budget=30, initial=10,
                rng=np.random.default_rng(seed),
            )
            rs = random_search(
                space, _toy_objective, budget=30,
                rng=np.random.default_rng(seed),
            )
            both = np.vstack([bo.as_array(), rs.as_array()])
            ref = tuple(both.max(axis=0) * 1.1)
            if hypervolume_2d(bo.as_array(), ref) >= hypervolume_2d(
                rs.as_array(), ref
            ):
                wins += 1
        assert wins >= 2

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            bayesian_optimize(DesignSpace(stages=2), _toy_objective, budget=2,
                              initial=10)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_property_no_duplicate_evaluations(self, seed):
        space = DesignSpace(stages=3, width_range=(8, 12), k_range=(2, 4))
        run = bayesian_optimize(
            space, _toy_objective, budget=15, initial=5,
            rng=np.random.default_rng(seed),
        )
        assert len(set(run.points)) == len(run.points)


class TestExploreLayer:
    @pytest.fixture(scope="class")
    def result(self):
        shape = ConvShape.square(2, 8, 4, 3)
        return explore_layer(shape, n=256, budget=24, seed=0)

    def test_front_nonempty(self, result):
        points, front = result.front()
        assert len(points) >= 2
        assert front.shape[1] == 2

    def test_tradeoff_exists(self, result):
        _, front = result.front()
        if len(front) >= 2:
            assert front[0, 1] >= front[-1, 1]
            assert front[0, 0] <= front[-1, 0]

    def test_best_under_error_threshold(self, result):
        arr = result.run.as_array()
        threshold = float(np.median(arr[:, 1]))
        best = result.best_under_error(threshold)
        assert best is not None
        power, err = result.problem.objective(best)
        assert err < threshold

    def test_impossible_threshold_returns_none(self, result):
        assert result.best_under_error(0.0) is None

    def test_random_method(self):
        shape = ConvShape.square(2, 8, 4, 3)
        res = explore_layer(shape, n=256, budget=10, method="random", seed=1)
        assert len(res.run.points) == 10
        with pytest.raises(ValueError):
            explore_layer(shape, n=256, budget=5, method="annealing")

    def test_power_objective_uses_sparsity(self, result):
        dense_like = result.problem.lut.fft_power_mw(
            result.run.points[0].to_config(128)
        )
        assert result.problem.power_mw(result.run.points[0]) < dense_like
