"""Concurrency regression tier: the worker pool must never change results.

Every fan-out in the runtime (RNS limbs, output-channel groups, batch
lifts) must produce byte-identical outputs for 1, 2 and 8 workers and for
the serial fallback -- including oversubscription, where the job count
exceeds the worker count and where workers exceed jobs.
"""

import numpy as np
import pytest

from repro.encoding.conv_encoding import ConvShape
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.backend import NttPolyMulBackend
from repro.he.poly import RingPoly
from repro.ntt import RnsBasis
from repro.runtime import (
    BatchedFftBackend,
    BatchedHConvEngine,
    BatchedNttBackend,
    fan_out,
)

WORKER_GRID = [None, 1, 2, 8]


class TestFanOut:
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_order_preserved(self, workers):
        jobs = list(range(23))
        assert fan_out(jobs, lambda j: j * j, workers) == [
            j * j for j in jobs
        ]

    def test_empty_jobs(self):
        assert fan_out([], lambda j: j, 4) == []


class TestEngineConcurrency:
    def test_worker_counts_byte_identical(self):
        shape = ConvShape(
            in_channels=3, height=7, width=7, out_channels=5,
            kernel_h=3, kernel_w=3, stride=1, padding=1,
        )
        rng = np.random.default_rng(0)
        xs = rng.integers(-7, 8, size=(6, 3, 7, 7))
        w = rng.integers(-4, 5, size=(5, 3, 3, 3))
        reference = None
        for mode, cfg in (
            ("ntt", None),
            ("flash", ApproxFftConfig(n=64, stage_widths=27, twiddle_k=18,
                                      twiddle_max_shift=24)),
        ):
            outs = []
            for workers in WORKER_GRID:
                engine = BatchedHConvEngine(
                    mode=mode, weight_config=cfg, max_workers=workers
                )
                outs.append(engine.conv2d_batch(xs, w, shape, 128))
            for other in outs[1:]:
                assert np.array_equal(outs[0], other), mode
            if mode == "ntt":
                reference = outs[0]
        assert reference is not None


class TestBackendConcurrency:
    @pytest.fixture(scope="class")
    def basis(self):
        # 4 limbs: workers=2 oversubscribes limbs, workers=8 oversubscribes
        # the pool.
        return RnsBasis.generate(64, [30, 30, 31, 32])

    @pytest.fixture(scope="class")
    def workload(self, basis):
        rng = np.random.default_rng(5)
        polys = [
            RingPoly(basis, basis.to_rns(rng.integers(0, 1 << 62, basis.n)))
            for _ in range(7)
        ]
        weights = [rng.integers(-6, 7, size=basis.n) for _ in range(7)]
        return polys, weights

    def test_ntt_backend_workers_byte_identical(self, basis, workload):
        polys, weights = workload
        serial = NttPolyMulBackend()
        refs = [
            serial.multiply(p, np.asarray(w, dtype=np.int64))
            for p, w in zip(polys, weights)
        ]
        for workers in WORKER_GRID:
            backend = BatchedNttBackend(max_workers=workers)
            outs = backend.multiply_many(polys, weights)
            for out, ref in zip(outs, refs):
                for a, b in zip(out.residues, ref.residues):
                    assert np.array_equal(a, b), workers

    def test_fft_backend_workers_byte_identical(self, basis, workload):
        polys, weights = workload
        cfg = ApproxFftConfig(
            n=basis.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )
        ref = BatchedFftBackend(weight_config=cfg).multiply_many(
            polys, weights
        )
        for workers in WORKER_GRID[1:]:
            backend = BatchedFftBackend(weight_config=cfg, max_workers=workers)
            outs = backend.multiply_many(polys, weights)
            for out, expect in zip(outs, ref):
                for a, b in zip(out.residues, expect.residues):
                    assert np.array_equal(a, b), workers

    def test_shared_plan_cache_thread_safety(self, basis, workload):
        """One PlanCache shared by concurrent multiply_many calls keeps
        deterministic results (first-insert-wins builds)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.runtime import PlanCache

        polys, weights = workload
        cache = PlanCache(capacity_bytes=8 << 20)
        backend = BatchedNttBackend(plan_cache=cache, max_workers=2)
        ref = backend.multiply_many(polys, weights)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(backend.multiply_many, polys, weights)
                for _ in range(4)
            ]
            for future in futures:
                for out, expect in zip(future.result(), ref):
                    for a, b in zip(out.residues, expect.residues):
                        assert np.array_equal(a, b)
        assert cache.hits > 0

    @pytest.mark.slow
    def test_shared_plan_cache_race_free_under_sanitizer(
        self, basis, workload
    ):
        """The dynamic race sanitizer observes the same stress and finds
        no happens-before violation on the cache's shared state."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.lint import instrument
        from repro.runtime import PlanCache

        polys, weights = workload
        cache = PlanCache(capacity_bytes=8 << 20)
        san = instrument(
            cache,
            fields=("hits", "misses", "evictions", "corruptions", "_bytes"),
            mutable_fields=("_entries",),
        )
        backend = BatchedNttBackend(plan_cache=cache, max_workers=2)
        san.start()
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(backend.multiply_many, polys, weights)
                for _ in range(8)
            ]
            for future in futures:
                future.result()
        san.join_all()
        assert cache.hits > 0
        assert san.races == [], san.describe()
