"""Tests for the reference DIT FFT and negacyclic FFT pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fftcore import (
    NegacyclicFft,
    fft_dit,
    fft_multiplication_count,
    ifft_dit,
    negacyclic_multiply_folded,
    negacyclic_multiply_twisted,
    round_to_integers,
    stage_twiddles,
    twiddle_exponent,
    twisted_forward,
    twisted_inverse,
)
from repro.ntt import negacyclic_convolution_naive


class TestFftDit:
    @pytest.mark.parametrize("n", [2, 4, 16, 64, 512])
    def test_matches_numpy_fft(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft_dit(x), np.fft.fft(x), atol=1e-9)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        np.testing.assert_allclose(ifft_dit(fft_dit(x)), x, atol=1e-10)

    def test_sign_plus_is_conjugate_transform(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        np.testing.assert_allclose(
            fft_dit(x, sign=+1), np.conj(np.fft.fft(np.conj(x))), atol=1e-9
        )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_dit(np.zeros(12))

    def test_multiplication_count(self):
        assert fft_multiplication_count(16) == 32
        assert fft_multiplication_count(2048) == 1024 * 11

    def test_stage_twiddles_first_stage_trivial(self):
        np.testing.assert_allclose(stage_twiddles(16, 1), [1.0])

    def test_stage_twiddles_last_stage(self):
        w = stage_twiddles(8, 3)
        expected = np.exp(-2j * np.pi * np.arange(4) / 8)
        np.testing.assert_allclose(w, expected)

    def test_twiddle_exponent_consistency(self):
        n = 64
        for stage in range(1, 7):
            m = 1 << stage
            for j in range(m // 2):
                e = twiddle_exponent(n, stage, j)
                np.testing.assert_allclose(
                    np.exp(-2j * np.pi * e / n),
                    stage_twiddles(n, stage)[j],
                    atol=1e-12,
                )

    def test_stage_out_of_range(self):
        with pytest.raises(ValueError):
            stage_twiddles(8, 4)


class TestTwistedNegacyclic:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_multiply_matches_naive(self, n):
        rng = np.random.default_rng(n)
        a = rng.integers(-50, 50, size=n)
        b = rng.integers(-50, 50, size=n)
        got = negacyclic_multiply_twisted(a, b)
        expected = negacyclic_convolution_naive(a, b)
        np.testing.assert_allclose(
            got, expected.astype(np.float64), atol=1e-6
        )

    def test_forward_inverse_roundtrip(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(32)
        np.testing.assert_allclose(
            twisted_inverse(twisted_forward(a)), a, atol=1e-10
        )

    def test_forward_evaluates_at_odd_roots(self):
        # Spectrum entry k must equal p(zeta^(2k+1)), zeta = exp(-i*pi/n).
        n = 8
        rng = np.random.default_rng(3)
        a = rng.standard_normal(n)
        spec = twisted_forward(a)
        zeta = np.exp(-1j * np.pi / n)
        for k in range(n):
            root = zeta ** (2 * k + 1)
            expected = np.polyval(a[::-1], root)
            np.testing.assert_allclose(spec[k], expected, atol=1e-9)


class TestFoldedNegacyclic:
    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_multiply_matches_naive(self, n):
        rng = np.random.default_rng(n)
        a = rng.integers(-100, 100, size=n)
        b = rng.integers(-15, 15, size=n)
        got = negacyclic_multiply_folded(a, b)
        expected = negacyclic_convolution_naive(a, b)
        np.testing.assert_allclose(got, expected.astype(np.float64), atol=1e-5)

    def test_forward_inverse_roundtrip(self):
        rng = np.random.default_rng(4)
        nfft = NegacyclicFft(64)
        a = rng.standard_normal(64)
        np.testing.assert_allclose(nfft.inverse(nfft.forward(a)), a, atol=1e-10)

    def test_forward_evaluates_at_4kplus1_roots(self):
        # Spectrum entry k must equal p(zeta^(4k+1)), zeta = exp(+i*pi/n).
        n = 8
        rng = np.random.default_rng(5)
        a = rng.standard_normal(n)
        spec = NegacyclicFft(n).forward(a)
        zeta = np.exp(1j * np.pi / n)
        for k in range(n // 2):
            root = zeta ** (4 * k + 1)
            expected = np.polyval(a[::-1], root)
            np.testing.assert_allclose(spec[k], expected, atol=1e-9)

    def test_spectrum_is_half_length(self):
        nfft = NegacyclicFft(128)
        assert nfft.forward(np.zeros(128)).shape == (64,)

    def test_agrees_with_twisted_pipeline(self):
        rng = np.random.default_rng(6)
        a = rng.integers(-30, 30, size=32)
        b = rng.integers(-30, 30, size=32)
        np.testing.assert_allclose(
            negacyclic_multiply_folded(a, b),
            negacyclic_multiply_twisted(a, b),
            atol=1e-6,
        )

    def test_negacyclic_wrap_sign(self):
        n = 16
        a = np.zeros(n)
        b = np.zeros(n)
        a[n - 1] = 1.0
        b[1] = 1.0
        out = negacyclic_multiply_folded(a, b)
        expected = np.zeros(n)
        expected[0] = -1.0
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_rejects_small_or_odd_length(self):
        with pytest.raises(ValueError):
            NegacyclicFft(2)
        with pytest.raises(ValueError):
            NegacyclicFft(24)

    def test_shape_validation(self):
        nfft = NegacyclicFft(16)
        with pytest.raises(ValueError):
            nfft.fold(np.zeros(8))
        with pytest.raises(ValueError):
            nfft.inverse(np.zeros(16))

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive_n16(self, data):
        ints = st.integers(-20, 20)
        a = np.array(data.draw(st.lists(ints, min_size=16, max_size=16)))
        b = np.array(data.draw(st.lists(ints, min_size=16, max_size=16)))
        got = round_to_integers(negacyclic_multiply_folded(a, b))
        expected = negacyclic_convolution_naive(a, b)
        assert [int(v) for v in got] == [int(v) for v in expected]


class TestRoundToIntegers:
    def test_plain_rounding(self):
        out = round_to_integers(np.array([1.2, -0.7, 3.5000001]))
        assert [int(v) for v in out] == [1, -1, 4]

    def test_modular_reduction(self):
        out = round_to_integers(np.array([5.1, -3.2]), modulus=7)
        assert out.dtype == np.uint64
        assert out.tolist() == [5, 4]

    def test_huge_modulus_object_dtype(self):
        out = round_to_integers(np.array([-1.0]), modulus=1 << 70)
        assert int(out[0]) == (1 << 70) - 1
