"""Tests for parameter selection and ciphertext serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import BfvContext, toy_preset
from repro.he.param_search import (
    ParameterError,
    ParameterReport,
    max_log_q,
    noise_bits_for_hconv,
    parameters_for_network,
    select_parameters,
)
from repro.protocol.wire import (
    ciphertext_bytes,
    deserialize_ciphertext,
    deserialize_poly,
    roundtrip_check,
    serialize_ciphertext,
    serialize_poly,
)


class TestMaxLogQ:
    def test_standard_values(self):
        assert max_log_q(4096, 128) == 109
        assert max_log_q(8192, 192) == 152

    def test_unknown_entry(self):
        with pytest.raises(ParameterError):
            max_log_q(4096, 100)


class TestSelectParameters:
    def test_w4a4_resnet_layer(self):
        # A 3x3 conv with 64 channels: 576 accumulation terms.
        report = select_parameters(
            n=4096, in_bits=4, w_bits=4, accumulation_terms=576,
            kernel_taps=9,
        )
        assert report.sum_product_bits == 17
        assert report.params.t == 1 << 17
        assert report.params.q.bit_length() <= report.max_logq
        assert report.headroom_bits > 0

    def test_selected_parameters_actually_work(self):
        # End-to-end: encrypt, multiply by a worst-case kernel, decrypt.
        from repro.ntt import negacyclic_convolution_naive

        # n=2048 is the smallest dimension with a standard security entry.
        report = select_parameters(
            n=2048, in_bits=4, w_bits=4, accumulation_terms=32,
            kernel_taps=9,
        )
        ctx = BfvContext(report.params)
        rng = np.random.default_rng(0)
        sk, pk = ctx.keygen(rng)
        t = report.params.t
        m = rng.integers(0, 1 << 4, size=2048)
        w = np.zeros(2048, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)
        ct = ctx.multiply_plain(ctx.encrypt(pk, m, rng), w)
        assert ctx.noise_budget(sk, ct) > 0
        expected = negacyclic_convolution_naive(m, w, modulus=t)
        assert np.array_equal(
            ctx.decrypt(sk, ct).astype(np.uint64), expected
        )

    def test_infeasible_raises(self):
        with pytest.raises(ParameterError):
            select_parameters(
                n=1024, in_bits=16, w_bits=16,
                accumulation_terms=1 << 20, kernel_taps=1 << 12,
            )

    def test_noise_bits_monotone(self):
        a = noise_bits_for_hconv(4096, 4, 9)
        b = noise_bits_for_hconv(4096, 8, 9)
        c = noise_bits_for_hconv(4096, 8, 900)
        assert a < b < c

    def test_network_level_takes_worst_case(self):
        report = parameters_for_network(
            [(64, 9), (576, 9), (128, 4)], n=4096
        )
        single = select_parameters(
            n=4096, in_bits=4, w_bits=4, accumulation_terms=576,
            kernel_taps=9,
        )
        assert report.params.t == single.params.t

    def test_empty_network_rejected(self):
        with pytest.raises(ParameterError):
            parameters_for_network([])

    def test_report_type(self):
        report = select_parameters(
            n=4096, in_bits=4, w_bits=4, accumulation_terms=100
        )
        assert isinstance(report, ParameterReport)


@pytest.fixture(scope="module")
def wire_setup():
    params = toy_preset(n=64, share_bits=12)
    ctx = BfvContext(params)
    rng = np.random.default_rng(1)
    sk, pk = ctx.keygen(rng)
    m = rng.integers(0, params.t, size=64)
    ct = ctx.encrypt(pk, m, rng)
    return params, ctx, sk, m, ct


class TestWireFormat:
    def test_poly_roundtrip(self, wire_setup):
        params, _, _, _, ct = wire_setup
        blob = serialize_poly(ct.c0)
        poly, used = deserialize_poly(blob, params)
        assert used == len(blob)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(poly.residues, ct.c0.residues)
        )

    def test_ciphertext_roundtrip_decrypts(self, wire_setup):
        params, ctx, sk, m, ct = wire_setup
        restored = deserialize_ciphertext(serialize_ciphertext(ct), params)
        assert np.array_equal(ctx.decrypt(sk, restored), m)
        assert roundtrip_check(ct, params)

    def test_wire_size_matches_prediction(self, wire_setup):
        params, _, _, _, ct = wire_setup
        assert len(serialize_ciphertext(ct)) == ciphertext_bytes(params)

    def test_bad_magic_rejected(self, wire_setup):
        params, _, _, _, ct = wire_setup
        blob = bytearray(serialize_ciphertext(ct))
        blob[0] = 0
        with pytest.raises(ValueError):
            deserialize_ciphertext(bytes(blob), params)

    def test_truncated_rejected(self, wire_setup):
        params, _, _, _, ct = wire_setup
        blob = serialize_ciphertext(ct)
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob[:-10], params)

    def test_out_of_range_residue_rejected(self, wire_setup):
        params, _, _, _, ct = wire_setup
        blob = bytearray(serialize_poly(ct.c0))
        # Overwrite the first residue word with an oversized value.
        import struct

        header = 12 + 8  # poly header + prime word
        blob[header : header + 8] = struct.pack("<Q", (1 << 62))
        with pytest.raises(ValueError):
            deserialize_poly(bytes(blob), params)

    def test_parameter_mismatch_rejected(self, wire_setup):
        params, _, _, _, ct = wire_setup
        other = toy_preset(n=128, share_bits=12)
        with pytest.raises(ValueError):
            deserialize_poly(serialize_poly(ct.c0), other)

    def test_protocol_reports_bytes(self):
        from repro.encoding import ConvShape
        from repro.protocol import HybridConvProtocol

        params = toy_preset(n=64, share_bits=16)
        rng = np.random.default_rng(2)
        shape = ConvShape.square(1, 4, 2, 3)
        x = rng.integers(-8, 8, size=(1, 4, 4))
        w = rng.integers(-8, 8, size=(2, 1, 3, 3))
        result = HybridConvProtocol(params, shape).run(x, w, rng)
        expected_ct = ciphertext_bytes(params)
        assert result.stats.bytes_sent == result.stats.ciphertexts_sent * expected_ct
        assert (
            result.stats.bytes_received
            == result.stats.ciphertexts_returned * expected_ct
        )
        assert result.stats.total_bytes > 0


class TestWireFuzzing:
    @given(data=st.binary(min_size=0, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_raise_value_error_only(self, data):
        params = toy_preset(n=64, share_bits=12)
        try:
            deserialize_poly(data, params)
        except ValueError:
            pass  # the only acceptable failure mode

    @given(seed=st.integers(0, 2**16), cut=st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_truncations_of_valid_blobs_rejected(self, seed, cut):
        params = toy_preset(n=64, share_bits=12)
        ctx = BfvContext(params)
        rng = np.random.default_rng(seed)
        sk, pk = ctx.keygen(rng)
        ct = ctx.encrypt(pk, rng.integers(0, params.t, size=64), rng)
        blob = serialize_ciphertext(ct)
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob[: len(blob) - cut], params)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip_random_ciphertexts(self, seed):
        params = toy_preset(n=64, share_bits=12)
        ctx = BfvContext(params)
        rng = np.random.default_rng(seed)
        sk, pk = ctx.keygen(rng)
        m = rng.integers(0, params.t, size=64)
        ct = ctx.encrypt(pk, m, rng)
        restored = deserialize_ciphertext(serialize_ciphertext(ct), params)
        assert np.array_equal(ctx.decrypt(sk, restored), m)
