"""Tests for residual layers and quantized residual networks."""

import numpy as np
import pytest

from repro.fftcore import ApproxFftConfig
from repro.nn import (
    Conv2d,
    QuantizedCnn,
    ReLU,
    Residual,
    Sequential,
    SharedPolyMulSimulator,
    accuracy,
    evaluate_private_inference,
    make_mini_resnet,
    make_synthetic_dataset,
    train,
    train_test_split,
)


def _numeric_grad(f, x, eps=1e-5):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestResidualLayer:
    def test_forward_adds_identity(self):
        rng = np.random.default_rng(0)
        block = Residual(Conv2d(2, 2, 3, padding=1, rng=rng))
        x = rng.standard_normal((1, 2, 4, 4))
        out = block.forward(x, training=False)
        branch = block.inner[0].forward(x, training=False)
        np.testing.assert_allclose(out, branch + x)

    def test_backward_matches_numeric(self):
        rng = np.random.default_rng(1)
        block = Residual(Conv2d(1, 1, 3, padding=1, rng=rng), ReLU())
        x = rng.standard_normal((2, 1, 4, 4))
        out = block.forward(x, training=True)
        target = rng.standard_normal(out.shape)

        def f():
            return float(
                0.5 * np.sum((block.forward(x, training=True) - target) ** 2)
            )

        out = block.forward(x, training=True)
        gx = block.backward(out - target)
        np.testing.assert_allclose(gx, _numeric_grad(f, x), atol=1e-4)

    def test_weight_gradient_through_block(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(1, 1, 3, padding=1, rng=rng)
        block = Residual(conv)
        x = rng.standard_normal((1, 1, 4, 4))
        out = block.forward(x, training=True)
        target = np.zeros_like(out)

        def f():
            return float(
                0.5 * np.sum((block.forward(x, training=True) - target) ** 2)
            )

        out = block.forward(x, training=True)
        block.backward(out - target)
        np.testing.assert_allclose(
            conv.grad_weight, _numeric_grad(f, conv.weight), atol=1e-4
        )

    def test_shape_mismatch_rejected(self):
        block = Residual(Conv2d(2, 3, 3, padding=1))
        with pytest.raises(ValueError):
            block.forward(np.zeros((1, 2, 4, 4)))

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            Residual()

    def test_parameters_collected(self):
        block = Residual(Conv2d(1, 1, 3), ReLU(), Conv2d(1, 1, 3))
        assert len(block.parameters()) == 4
        model = Sequential(block)
        assert len(model.parameters()) == 4


@pytest.fixture(scope="module")
def trained_resnet():
    ds = make_synthetic_dataset(1200, size=12, channels=1, seed=3)
    tr, te = train_test_split(ds)
    model = make_mini_resnet(seed=0)
    train(model, tr, epochs=6, lr=0.08, seed=1)
    return model, tr, te


class TestQuantizedResidual:
    def test_float_model_learns(self, trained_resnet):
        model, _, te = trained_resnet
        assert accuracy(model, te) > 0.9

    def test_w4a4_quantization(self, trained_resnet):
        model, tr, te = trained_resnet
        q = QuantizedCnn.from_float(model, tr.images[:200], 4, 4)
        assert q.accuracy_int(te.images, te.labels) > 0.85

    def test_ops_contain_residual_markers(self, trained_resnet):
        model, tr, _ = trained_resnet
        q = QuantizedCnn.from_float(model, tr.images[:200], 4, 4)
        kinds = [op[0] for op in q.ops]
        assert "res_push" in kinds
        assert "res_add" in kinds
        assert kinds.index("res_push") < kinds.index("res_add")

    def test_multiplier_calibrated(self, trained_resnet):
        model, tr, _ = trained_resnet
        q = QuantizedCnn.from_float(model, tr.images[:200], 4, 4)
        (info,) = [op[1] for op in q.ops if op[0] == "res_add"]
        assert info["multiplier"] > 0

    def test_single_image_path_matches_batch(self, trained_resnet):
        model, tr, te = trained_resnet
        q = QuantizedCnn.from_float(model, tr.images[:200], 4, 4)
        batch = q.forward_int(te.images[:4])
        for i in range(4):
            assert np.array_equal(q.forward_with_kernels(te.images[i]), batch[i])

    def test_private_inference_on_residual_net(self, trained_resnet):
        model, tr, te = trained_resnet
        q = QuantizedCnn.from_float(model, tr.images[:200], 4, 4)
        cfg = ApproxFftConfig(n=128, stage_widths=24, twiddle_k=0)
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, weight_config=cfg,
            rng=np.random.default_rng(7),
        )
        report = evaluate_private_inference(
            q, te.images, te.labels, sim, max_samples=6
        )
        assert report.agreement == 1.0
