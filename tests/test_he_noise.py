"""Tests for analytic noise estimates vs measured BFV noise."""

import numpy as np
import pytest

from repro.he import (
    BfvContext,
    fft_error_tolerance,
    fresh_noise_bound,
    plain_mult_noise_factor,
    predicted_budget_after_hconv,
    accumulation_noise_factor,
    toy_preset,
)


@pytest.fixture(scope="module")
def ctx():
    return BfvContext(toy_preset())


class TestFreshNoiseBound:
    def test_bound_exceeds_measured(self, ctx):
        rng = np.random.default_rng(0)
        sk, pk = ctx.keygen(rng)
        bound = fresh_noise_bound(ctx.params)
        for seed in range(5):
            m = np.random.default_rng(seed).integers(
                0, ctx.params.t, size=ctx.params.n
            )
            ct = ctx.encrypt(pk, m, rng)
            assert ctx.noise_infinity(sk, ct) <= bound

    def test_bound_is_not_vacuous(self, ctx):
        # The bound must be far below the decryption ceiling.
        assert fresh_noise_bound(ctx.params) < ctx.params.noise_ceiling / 4


class TestGrowthFactors:
    def test_plain_mult_factor_is_l1_norm(self):
        assert plain_mult_noise_factor([1, -2, 3, 0]) == 6

    def test_accumulation_factor(self):
        assert accumulation_noise_factor(4) == 4
        with pytest.raises(ValueError):
            accumulation_noise_factor(0)

    def test_predicted_budget_positive_for_small_kernels(self, ctx):
        w = np.zeros(ctx.params.n, dtype=np.int64)
        w[:9] = 7  # 3x3 kernel of 4-bit weights
        assert predicted_budget_after_hconv(ctx.params, w) > 0

    def test_predicted_budget_sane_vs_measured(self, ctx):
        rng = np.random.default_rng(1)
        sk, pk = ctx.keygen(rng)
        w = np.zeros(ctx.params.n, dtype=np.int64)
        w[:9] = rng.integers(1, 8, size=9)
        m = rng.integers(0, ctx.params.t, size=ctx.params.n)
        ct = ctx.multiply_plain(ctx.encrypt(pk, m, rng), w)
        measured = ctx.noise_budget(sk, ct)
        predicted = predicted_budget_after_hconv(ctx.params, w)
        # Prediction is a worst-case bound: it must not exceed measured
        # budget by more than a small slack, nor be wildly pessimistic.
        assert predicted <= measured + 1.0
        assert predicted >= measured - 16.0


class TestFftErrorTolerance:
    def test_tolerance_below_ceiling(self, ctx):
        tol = fft_error_tolerance(ctx.params)
        assert 0 < tol < ctx.params.noise_ceiling

    def test_margin_shrinks_tolerance(self, ctx):
        assert fft_error_tolerance(ctx.params, margin_bits=4.0) < (
            fft_error_tolerance(ctx.params, margin_bits=1.0)
        )

    def test_tolerated_error_injection_decrypts_correctly(self, ctx):
        # Inject coefficient errors up to the advertised tolerance into a
        # fresh ciphertext and verify decryption is unchanged (kernel-level
        # robustness, Section III-A).
        from repro.he.poly import RingPoly

        rng = np.random.default_rng(2)
        sk, pk = ctx.keygen(rng)
        m = rng.integers(0, ctx.params.t, size=ctx.params.n)
        ct = ctx.encrypt(pk, m, rng)
        tol = int(fft_error_tolerance(ctx.params, margin_bits=2.0))
        errors = rng.integers(-tol, tol + 1, size=ctx.params.n)
        ct.c0 = ct.c0 + RingPoly.from_signed(ctx.basis, errors)
        assert np.array_equal(ctx.decrypt(sk, ct), m % ctx.params.t)
