"""Tests for quantization, the quantized CNN, training and datasets."""

import numpy as np
import pytest

from repro.nn import (
    QuantParams,
    QuantizedCnn,
    calibrate,
    choose_requant_shift,
    conv2d_int_batch,
    make_mini_cnn,
    make_synthetic_dataset,
    requantize_shift,
    sum_product_bits,
    train,
    train_test_split,
    accuracy,
)


class TestQuantParams:
    def test_range(self):
        p = QuantParams(bits=4, scale=0.5)
        assert (p.qmin, p.qmax) == (-8, 7)

    def test_quantize_dequantize(self):
        p = QuantParams(bits=8, scale=0.1)
        x = np.array([0.05, -0.31, 1.0])
        q = p.quantize(x)
        assert q.dtype == np.int64
        np.testing.assert_allclose(p.dequantize(q), x, atol=0.05 + 1e-9)

    def test_saturation(self):
        p = QuantParams(bits=4, scale=1.0)
        assert p.quantize(np.array([100.0, -100.0])).tolist() == [7, -8]

    def test_calibrate_covers_max(self):
        x = np.array([0.0, 0.5, -2.0])
        p = calibrate(x, bits=4)
        assert p.quantize(np.array([-2.0]))[0] == -7

    def test_calibrate_empty_or_zero(self):
        p = calibrate(np.zeros(4), bits=4)
        assert p.scale > 0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            QuantParams(bits=1, scale=1.0)
        with pytest.raises(ValueError):
            QuantParams(bits=4, scale=0.0)


class TestRequantize:
    def test_shift_rounds(self):
        out = requantize_shift(np.array([7, 8, -8]), shift=3, bits=8)
        assert out.tolist() == [1, 1, -1]

    def test_zero_shift_identity(self):
        out = requantize_shift(np.array([5, -5]), shift=0, bits=8)
        assert out.tolist() == [5, -5]

    def test_clipping(self):
        out = requantize_shift(np.array([1000, -1000]), shift=0, bits=4)
        assert out.tolist() == [7, -8]

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            requantize_shift(np.array([1]), shift=-1, bits=4)

    def test_choose_shift_fits(self):
        sp = np.array([1000, -2000, 50])
        shift = choose_requant_shift(sp, bits=4)
        out = requantize_shift(sp, shift, bits=4)
        assert np.abs(out).max() <= 7
        # The chosen shift is minimal under the (conservative) float
        # halving rule the calibrator uses.
        assert np.abs(sp).max() / 2.0 ** max(shift - 1, 0) > 7

    def test_percentile_shift_is_smaller(self):
        rng = np.random.default_rng(0)
        sp = rng.integers(-100, 100, size=10000)
        sp[0] = 100000  # one outlier
        assert choose_requant_shift(sp, 4, percentile=99.0) < (
            choose_requant_shift(sp, 4, percentile=100.0)
        )

    def test_sum_product_bits(self):
        # W4A4 with 576 accumulation terms: 3+3 magnitude bits + 10
        # accumulation bits + sign = 17.
        assert sum_product_bits(4, 4, 576) == 17
        with pytest.raises(ValueError):
            sum_product_bits(4, 4, 0)


class TestIntConv:
    def test_matches_direct(self):
        from repro.encoding import conv2d_direct

        rng = np.random.default_rng(1)
        x = rng.integers(-8, 8, size=(2, 3, 6, 6))
        w = rng.integers(-8, 8, size=(4, 3, 3, 3))
        out = conv2d_int_batch(x, w, stride=2, padding=1)
        for b in range(2):
            assert np.array_equal(out[b], conv2d_direct(x[b], w, 2, 1))


@pytest.fixture(scope="module")
def trained_setup():
    ds = make_synthetic_dataset(1200, size=12, channels=1, seed=3)
    tr, te = train_test_split(ds)
    model = make_mini_cnn(seed=0)
    train(model, tr, epochs=6, lr=0.08, seed=1)
    return model, tr, te


class TestTrainingAndQuantizedCnn:
    def test_float_model_learns(self, trained_setup):
        model, _, te = trained_setup
        assert accuracy(model, te) > 0.9

    def test_w8a8_matches_float_closely(self, trained_setup):
        model, tr, te = trained_setup
        q = QuantizedCnn.from_float(model, tr.images[:200], w_bits=8, a_bits=8)
        assert q.accuracy_int(te.images, te.labels) > accuracy(model, te) - 0.05

    def test_w4a4_retains_accuracy(self, trained_setup):
        model, tr, te = trained_setup
        q = QuantizedCnn.from_float(model, tr.images[:200], w_bits=4, a_bits=4)
        assert q.accuracy_int(te.images, te.labels) > 0.85

    def test_forward_with_kernels_matches_forward_int(self, trained_setup):
        model, tr, te = trained_setup
        q = QuantizedCnn.from_float(model, tr.images[:200])
        batch_logits = q.forward_int(te.images[:5])
        for i in range(5):
            single = q.forward_with_kernels(te.images[i])
            assert np.array_equal(single, batch_logits[i])

    def test_collect_sp(self, trained_setup):
        model, tr, te = trained_setup
        q = QuantizedCnn.from_float(model, tr.images[:200])
        _, sps = q.forward_with_kernels(te.images[0], collect_sp=True)
        assert len(sps) == 3  # two convs + one linear

    def test_activations_respect_bit_width(self, trained_setup):
        model, tr, _ = trained_setup
        q = QuantizedCnn.from_float(model, tr.images[:200], w_bits=4, a_bits=4)
        for spec in q.conv_specs():
            assert np.abs(spec.weight_q).max() <= 8

    def test_max_sum_product_terms(self, trained_setup):
        model, tr, _ = trained_setup
        q = QuantizedCnn.from_float(model, tr.images[:200])
        # widest accumulation: conv2 with 8 channels * 3 * 3 = 72 or the
        # final linear of 2*8*(12/4)^2 = 144 inputs.
        assert q.max_sum_product_terms() == 144

    def test_rejects_unsupported_layer(self):
        from repro.nn.layers import Layer, Sequential

        class Odd(Layer):
            def forward(self, x, training=True):
                return x

        with pytest.raises(TypeError):
            QuantizedCnn.from_float(Sequential(Odd()), np.zeros((1, 1, 4, 4)))


class TestDataset:
    def test_deterministic(self):
        a = make_synthetic_dataset(50, seed=7)
        b = make_synthetic_dataset(50, seed=7)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_ranges(self):
        ds = make_synthetic_dataset(100, seed=0)
        assert ds.images.min() >= -1.0
        assert ds.images.max() <= 1.0
        assert set(np.unique(ds.labels)) <= set(range(10))

    def test_split_disjoint_and_complete(self):
        ds = make_synthetic_dataset(100, seed=0)
        tr, te = train_test_split(ds, test_fraction=0.25, seed=2)
        assert len(tr) == 75
        assert len(te) == 25

    def test_batches_cover_dataset(self):
        ds = make_synthetic_dataset(55, seed=1)
        rng = np.random.default_rng(0)
        seen = sum(len(y) for _, y in ds.batches(16, rng))
        assert seen == 55

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_synthetic_dataset(10, num_classes=1)
        ds = make_synthetic_dataset(10)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=1.5)


class TestResNetTables:
    def test_resnet18_has_20_convs(self):
        from repro.nn import resnet18_conv_layers

        assert len(resnet18_conv_layers()) == 20

    def test_resnet50_has_53_convs(self):
        from repro.nn import resnet50_conv_layers

        assert len(resnet50_conv_layers()) == 53

    def test_layer_dimension_chaining(self):
        from repro.nn import resnet50_conv_layers

        layers = resnet50_conv_layers()
        # Final stage operates at 7x7 with 512-wide bottlenecks.
        assert layers[-1].shape.height == 7
        assert layers[-1].shape.out_channels == 2048

    def test_macs_match_published_scale(self):
        from repro.nn import total_macs

        # ResNet-50 ~4.1 GMACs, ResNet-18 ~1.8 GMACs (conv only).
        assert 3.5e9 < total_macs("resnet50") < 4.5e9
        assert 1.5e9 < total_macs("resnet18") < 2.1e9

    def test_get_layer_bounds(self):
        from repro.nn import get_layer

        assert get_layer("resnet50", 28).shape is not None
        with pytest.raises(IndexError):
            get_layer("resnet18", 21)
        with pytest.raises(KeyError):
            from repro.nn import conv_layers

            conv_layers("vgg")

    def test_residual_block(self):
        from repro.nn import residual_block_layers

        block = residual_block_layers("resnet50")
        assert len(block) == 4  # conv1/conv2/conv3 + downsample
