"""Cluster message and job codecs: framing, wire forms, warmup keys."""

import pickle

import numpy as np
import pytest

from repro.cluster.jobs import (
    MSG_JOB_CONV,
    MSG_JOB_MUL,
    MSG_PING,
    MSG_RESULT,
    basis_from_wire,
    basis_to_wire,
    config_from_wire,
    config_to_wire,
    conv_job_payload,
    decode_message,
    encode_message,
    mul_job_payload,
    shape_from_wire,
    shape_to_wire,
    warmup_key,
    warmup_payload,
)
from repro.encoding.conv_encoding import ConvShape
from repro.faults.channel import ChecksumError, encode_frame
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.ntt import RnsBasis

SHAPE = ConvShape(
    in_channels=2, height=6, width=6, out_channels=3,
    kernel_h=3, kernel_w=3, stride=2, padding=1,
)
CFG = ApproxFftConfig(
    n=64, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)


class TestEnvelope:
    def test_roundtrip_with_arrays(self):
        payload = {"x": np.arange(12, dtype=np.int64).reshape(3, 4), "k": 7}
        kind, job_id, out = decode_message(
            encode_message(MSG_RESULT, 0xDEADBEEF, payload)
        )
        assert kind == MSG_RESULT
        assert job_id == 0xDEADBEEF
        assert out["k"] == 7
        assert np.array_equal(out["x"], payload["x"])

    def test_none_payload_roundtrip(self):
        assert decode_message(encode_message(MSG_PING, 0, None)) == (
            MSG_PING, 0, None,
        )

    def test_job_id_above_32_bits_survives_in_envelope(self):
        # The frame seq only carries the low 32 bits; the envelope carries
        # the full id (call_seq << 20 grows past 2**32 in long sessions).
        job_id = (1 << 40) + 5
        _, got, _ = decode_message(encode_message(MSG_RESULT, job_id, None))
        assert got == job_id

    def test_flipped_byte_raises_checksum_error(self):
        frame = bytearray(encode_message(MSG_RESULT, 1, {"v": 3}))
        frame[len(frame) // 2] ^= 0x40
        with pytest.raises((ChecksumError, ValueError)):
            decode_message(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = encode_message(MSG_RESULT, 1, {"v": 3})
        with pytest.raises(ValueError):
            decode_message(frame[: len(frame) // 2])

    def test_valid_frame_with_garbage_body_rejected(self):
        # The CRC passes (the garbage was framed honestly) but the
        # envelope does not unpickle: still a loud ValueError, not junk.
        with pytest.raises(ValueError, match="undecodable"):
            decode_message(encode_frame(0, b"not a pickle"))

    def test_non_string_kind_rejected(self):
        body = pickle.dumps((42, 1, None), protocol=4)
        with pytest.raises(ValueError, match="bad message kind"):
            decode_message(encode_frame(1, body))


class TestWireForms:
    def test_config_roundtrip(self):
        wire = config_to_wire(CFG)
        assert wire == (64, (27,) * 6, 18, 24, None)
        back = config_from_wire(wire)
        assert back.n == CFG.n
        assert list(back.stage_widths) == list(CFG.stage_widths)
        assert back.twiddle_k == CFG.twiddle_k
        assert back.twiddle_max_shift == CFG.twiddle_max_shift
        assert back.input_width == CFG.input_width

    def test_config_none_passthrough(self):
        assert config_to_wire(None) is None
        assert config_from_wire(None) is None

    def test_shape_roundtrip(self):
        assert shape_from_wire(shape_to_wire(SHAPE)) == SHAPE

    def test_basis_roundtrip(self):
        basis = RnsBasis.generate(64, [30, 30, 31])
        back = basis_from_wire(basis_to_wire(basis))
        assert back.n == basis.n
        assert list(back.primes) == list(basis.primes)

    def test_wire_forms_are_plain_picklable_tuples(self):
        # Job payloads must cross a process boundary without importing
        # repro classes at unpickle time.
        for wire in (
            config_to_wire(CFG),
            shape_to_wire(SHAPE),
            basis_to_wire(RnsBasis.generate(64, [30, 31])),
        ):
            assert isinstance(wire, tuple)
            assert pickle.loads(pickle.dumps(wire)) == wire


class TestJobPayloads:
    def test_conv_payload_casts_and_copies(self):
        xs = np.ones((2, 2, 6, 6), dtype=np.int32)
        w = np.ones((3, 2, 3, 3), dtype=np.int32)
        payload = conv_job_payload("ntt", None, 128, SHAPE, xs, w)
        assert payload["mode"] == "ntt"
        assert payload["n"] == 128
        assert payload["x"].dtype == np.int64
        assert payload["w"].dtype == np.int64
        assert payload["x"].flags["C_CONTIGUOUS"]

    def test_mul_payload_structure(self):
        basis = RnsBasis.generate(64, [30, 31])
        payload = mul_job_payload(
            "ntt", None, None, basis, [b"blob0", b"blob1"],
            [np.zeros(64), np.ones(64)],
        )
        assert payload["backend"] == "ntt"
        assert payload["pattern"] is None
        assert payload["basis"] == basis_to_wire(basis)
        assert payload["polys"] == [b"blob0", b"blob1"]
        assert all(w.dtype == np.int64 for w in payload["weights"])

    def test_mul_payload_pattern_normalized(self):
        basis = RnsBasis.generate(64, [30, 31])
        payload = mul_job_payload(
            "sparse", CFG, np.array([1, 0, 1]), basis, [], [],
        )
        assert payload["pattern"] == [1, 0, 1]


class TestWarmupKeys:
    def test_conv_key_distinguishes_mode_degree_config(self):
        base = conv_job_payload("ntt", None, 128, SHAPE,
                                np.zeros((1, 2, 6, 6)), np.zeros((3, 2, 3, 3)))
        other_mode = dict(base, mode="flash", config=config_to_wire(CFG))
        other_n = dict(base, n=256)
        keys = {
            warmup_key(MSG_JOB_CONV, p)
            for p in (base, other_mode, other_n)
        }
        assert len(keys) == 3

    def test_same_context_same_key_regardless_of_data(self):
        a = conv_job_payload("ntt", None, 128, SHAPE,
                             np.zeros((1, 2, 6, 6)), np.zeros((3, 2, 3, 3)))
        b = conv_job_payload("ntt", None, 128, SHAPE,
                             np.ones((4, 2, 6, 6)), np.ones((3, 2, 3, 3)))
        assert warmup_key(MSG_JOB_CONV, a) == warmup_key(MSG_JOB_CONV, b)

    def test_mul_key_uses_backend_and_degree(self):
        basis = RnsBasis.generate(64, [30, 31])
        a = mul_job_payload("ntt", None, None, basis, [], [])
        b = mul_job_payload("flash", CFG, None, basis, [], [])
        assert warmup_key(MSG_JOB_MUL, a) != warmup_key(MSG_JOB_MUL, b)
        assert warmup_key(MSG_JOB_MUL, a) != warmup_key(MSG_JOB_CONV, {
            "mode": "ntt", "n": 64, "config": None,
        })

    def test_warmup_payload_wraps_job(self):
        wrapped = warmup_payload(MSG_JOB_CONV, {"mode": "ntt"})
        assert wrapped == {"job_kind": MSG_JOB_CONV, "job": {"mode": "ntt"}}
