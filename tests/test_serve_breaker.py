"""Circuit-breaker state machine, driven by a fake clock.

The breaker guards the cluster executor: repeated failure signals must
route traffic to the serial fallback (open), a probe must be admitted
after the recovery timeout (half-open), and exactly one probe decides
whether the breaker closes again.
"""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += float(dt)


def breaker(**kwargs):
    clock = kwargs.pop("clock", FakeClock())
    defaults = dict(failure_threshold=3, recovery_timeout=1.0)
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults), clock


class TestTrip:
    def test_closed_allows_traffic(self):
        b, _ = breaker()
        assert b.state() == CLOSED
        assert b.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        b, _ = breaker(failure_threshold=3)
        b.record_failure("boom")
        b.record_failure("boom")
        assert b.state() == CLOSED
        b.record_failure("boom")
        assert b.state() == OPEN
        assert not b.allow()

    def test_success_resets_the_failure_count(self):
        b, _ = breaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state() == CLOSED  # never two *consecutive* failures

    def test_trip_reason_recorded_in_transitions(self):
        b, _ = breaker(failure_threshold=1)
        b.record_failure("worker churn")
        (t,) = b.transitions
        assert (t["from"], t["to"]) == (CLOSED, OPEN)
        assert "worker churn" in t["reason"]

    def test_fallback_failures_do_not_rearm_the_open_clock(self):
        b, clock = breaker(failure_threshold=1, recovery_timeout=1.0)
        b.record_failure()
        clock.advance(0.9)
        b.record_failure("serial path hiccup")  # not the guarded resource
        clock.advance(0.1)
        assert b.allow()  # probe window opened on schedule


class TestProbe:
    def tripped(self, recovery_timeout=1.0):
        b, clock = breaker(
            failure_threshold=1, recovery_timeout=recovery_timeout
        )
        b.record_failure("trip")
        return b, clock

    def test_open_blocks_until_recovery_timeout(self):
        b, clock = self.tripped(recovery_timeout=1.0)
        assert not b.allow()
        clock.advance(0.999)
        assert not b.allow()
        clock.advance(0.001)
        assert b.allow()
        assert b.state() == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        b, clock = self.tripped()
        clock.advance(1.0)
        assert b.allow()          # the probe
        assert not b.allow()      # concurrent caller: wait for the probe
        assert not b.allow()

    def test_probe_success_closes(self):
        b, clock = self.tripped()
        clock.advance(1.0)
        assert b.allow()
        b.record_success()
        assert b.state() == CLOSED
        assert b.allow()
        tos = [t["to"] for t in b.transitions]
        assert tos == [OPEN, HALF_OPEN, CLOSED]

    def test_probe_failure_reopens_and_rearms(self):
        b, clock = self.tripped()
        clock.advance(1.0)
        assert b.allow()
        b.record_failure("still churning")
        assert b.state() == OPEN
        # The recovery clock restarted at the probe failure.
        clock.advance(0.5)
        assert not b.allow()
        clock.advance(0.5)
        assert b.allow()
        b.record_success()
        assert b.state() == CLOSED

    def test_next_probe_available_after_failed_probe_resolves(self):
        b, clock = self.tripped()
        clock.advance(1.0)
        assert b.allow()
        b.record_failure()
        clock.advance(1.0)
        assert b.allow()  # a fresh probe slot, not starved


class TestObservability:
    def test_on_transition_callback_sees_every_change(self):
        seen = []
        clock = FakeClock()
        b = CircuitBreaker(
            failure_threshold=1,
            recovery_timeout=1.0,
            clock=clock,
            on_transition=lambda frm, to, reason: seen.append((frm, to)),
        )
        b.record_failure()
        clock.advance(1.0)
        b.allow()
        b.record_success()
        assert seen == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
        ]

    def test_to_dict_snapshot(self):
        b, _ = breaker(failure_threshold=2)
        b.record_failure()
        d = b.to_dict()
        assert d["state"] == CLOSED
        assert d["failures"] == 1
        assert d["failure_threshold"] == 2
        assert d["transitions"] == []

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_timeout=0.0)
