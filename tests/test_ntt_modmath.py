"""Unit and property tests for repro.ntt.modmath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import modmath


PRIME_39 = modmath.find_ntt_primes(39, 4096)[0]
PRIME_30 = modmath.find_ntt_primes(30, 4096)[0]
# The largest supported modulus class: a full 40-bit NTT prime.  This is
# the boundary the MOD001 lint rule protects -- the 20-bit split of mulmod
# needs q * 2**20 < 2**63, which holds up to exactly MAX_MODULUS_BITS.
PRIME_40 = modmath.find_ntt_primes(modmath.MAX_MODULUS_BITS, 4096)[0]

# Operands clustered at the dangerous end of the range: near q-1 the raw
# product approaches q**2 ~ 2**80, far beyond uint64.
_near_top = st.integers(min_value=PRIME_40 - 4096, max_value=PRIME_40 - 1)
_full_range = st.integers(min_value=0, max_value=PRIME_40 - 1)
_boundary = st.one_of(_near_top, _full_range)


class TestMulmod:
    def test_matches_python_ints_small(self):
        q = 97
        a = np.arange(97, dtype=np.uint64)
        b = np.arange(97, dtype=np.uint64)[::-1].copy()
        expected = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert modmath.mulmod(a, b, q).tolist() == expected

    def test_matches_python_ints_39bit(self):
        rng = np.random.default_rng(0)
        q = PRIME_39
        a = rng.integers(0, q, size=1000, dtype=np.uint64)
        b = rng.integers(0, q, size=1000, dtype=np.uint64)
        expected = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert modmath.mulmod(a, b, q).tolist() == expected

    def test_near_modulus_operands(self):
        q = PRIME_39
        a = np.array([q - 1, q - 1, 1, 0], dtype=np.uint64)
        b = np.array([q - 1, 1, q - 1, q - 1], dtype=np.uint64)
        expected = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert modmath.mulmod(a, b, q).tolist() == expected

    def test_broadcasting_scalar(self):
        q = PRIME_30
        a = np.array([1, 2, 3], dtype=np.uint64)
        out = modmath.mulmod(a, 5, q)
        assert out.tolist() == [5, 10, 15]

    def test_rejects_oversized_modulus(self):
        with pytest.raises(modmath.ModulusError):
            modmath.mulmod(np.array([1], dtype=np.uint64), 1, 1 << 41)

    @given(
        a=st.integers(min_value=0, max_value=PRIME_39 - 1),
        b=st.integers(min_value=0, max_value=PRIME_39 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_random_39bit(self, a, b):
        out = modmath.mulmod(np.array([a], dtype=np.uint64), b, PRIME_39)
        assert int(out[0]) == (a * b) % PRIME_39


class TestAddSubNeg:
    @given(
        a=st.integers(min_value=0, max_value=PRIME_39 - 1),
        b=st.integers(min_value=0, max_value=PRIME_39 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_add_sub_roundtrip(self, a, b):
        q = PRIME_39
        av = np.array([a], dtype=np.uint64)
        s = modmath.addmod(av, b, q)
        assert int(modmath.submod(s, b, q)[0]) == a

    def test_neg(self):
        q = 97
        a = np.array([0, 1, 96], dtype=np.uint64)
        assert modmath.negmod(a, q).tolist() == [0, 96, 1]

    def test_sub_wraps(self):
        q = 97
        out = modmath.submod(np.array([1], dtype=np.uint64), 5, q)
        assert int(out[0]) == 93


class TestBoundaryModuli:
    """Property tests at the 40-bit modulus boundary.

    These encode the invariants the ``repro lint`` MOD rules protect: the
    vectorized kernels must agree with exact Python-int arithmetic for the
    *largest* supported modulus and operands pushed against ``q - 1``,
    where a raw ``a * b % q`` on uint64 wraps and silently corrupts.
    """

    def test_prime_is_at_the_bit_limit(self):
        assert PRIME_40.bit_length() == modmath.MAX_MODULUS_BITS
        # The split-safety preconditions documented in modmath.
        assert PRIME_40 << modmath.SPLIT_BITS < 1 << 63
        assert PRIME_40**2 >> modmath.SPLIT_BITS < 1 << 63

    @given(a=_boundary, b=_boundary)
    @settings(max_examples=300, deadline=None)
    def test_mulmod_exact_at_40_bits(self, a, b):
        out = modmath.mulmod(np.array([a], dtype=np.uint64), b, PRIME_40)
        assert int(out[0]) == a * b % PRIME_40

    @given(a=_near_top, b=_near_top)
    @settings(max_examples=200, deadline=None)
    def test_addmod_no_wrap_near_top(self, a, b):
        out = modmath.addmod(np.array([a], dtype=np.uint64), b, PRIME_40)
        assert int(out[0]) == (a + b) % PRIME_40

    @given(a=_boundary, b=_boundary)
    @settings(max_examples=200, deadline=None)
    def test_submod_stays_unsigned(self, a, b):
        out = modmath.submod(np.array([a], dtype=np.uint64), b, PRIME_40)
        assert int(out[0]) == (a - b) % PRIME_40

    @given(base=_boundary, e1=st.integers(0, 1 << 20), e2=st.integers(0, 1 << 20))
    @settings(max_examples=100, deadline=None)
    def test_powmod_exponent_law(self, base, e1, e2):
        q = PRIME_40
        lhs = modmath.powmod(base, e1 + e2, q)
        rhs = modmath.mulmod(
            np.array([modmath.powmod(base, e1, q)], dtype=np.uint64),
            modmath.powmod(base, e2, q),
            q,
        )
        assert int(rhs[0]) == lhs

    @given(a=_boundary, b=_boundary, c=_boundary)
    @settings(max_examples=100, deadline=None)
    def test_mulmod_distributes_over_addmod(self, a, b, c):
        """c*(a+b) == c*a + c*b (mod q): the butterfly identity chain."""
        q = PRIME_40
        cv = np.array([c], dtype=np.uint64)
        lhs = modmath.mulmod(cv, modmath.addmod(
            np.array([a], dtype=np.uint64), b, q), q)
        rhs = modmath.addmod(
            modmath.mulmod(cv, a, q), modmath.mulmod(cv, b, q), q
        )
        assert int(lhs[0]) == int(rhs[0])

    def test_wraparound_counterexample_documented(self):
        """The raw pattern MOD001 bans really does corrupt at 40 bits."""
        q = PRIME_40
        a = np.array([q - 1], dtype=np.uint64)
        with np.errstate(over="ignore"):
            raw = (a * np.uint64(q - 1)) % np.uint64(q)
        good = modmath.mulmod(a, q - 1, q)
        assert int(raw[0]) != int(good[0])
        assert int(good[0]) == (q - 1) * (q - 1) % q


class TestCentered:
    def test_roundtrip(self):
        q = 97
        a = np.arange(q, dtype=np.uint64)
        c = modmath.centered(a, q)
        assert c.max() <= q // 2
        assert c.min() >= -(q // 2)
        back = modmath.from_centered(c, q)
        assert back.tolist() == a.tolist()

    def test_half_maps_positive(self):
        # q odd: floor(q/2) stays positive, floor(q/2)+1 goes negative.
        q = 97
        c = modmath.centered(np.array([48, 49], dtype=np.uint64), q)
        assert c.tolist() == [48, -48]


class TestPrimes:
    def test_is_prime_small(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
        for n in range(30):
            assert modmath.is_prime(n) == (n in primes)

    def test_is_prime_carmichael(self):
        # 561 = 3*11*17 is a Carmichael number (fools Fermat tests).
        assert not modmath.is_prime(561)
        assert not modmath.is_prime(41041)

    def test_find_ntt_primes_congruence(self):
        for bits in (20, 30, 39):
            for n in (64, 4096):
                (p,) = modmath.find_ntt_primes(bits, n)
                assert p.bit_length() == bits
                assert p % (2 * n) == 1
                assert modmath.is_prime(p)

    def test_find_multiple_distinct(self):
        primes = modmath.find_ntt_primes(30, 4096, count=3)
        assert len(set(primes)) == 3

    def test_primitive_root(self):
        for q in (97, 257, 7681):
            g = modmath.primitive_root(q)
            seen = set()
            x = 1
            for _ in range(q - 1):
                x = x * g % q
                seen.add(x)
            assert len(seen) == q - 1

    def test_root_of_unity_order(self):
        q = 7681  # 7681 = 1 + 2^9 * 15, supports order-512 roots
        w = modmath.root_of_unity(512, q)
        assert pow(w, 512, q) == 1
        assert pow(w, 256, q) == q - 1

    def test_root_of_unity_rejects_bad_order(self):
        with pytest.raises(ValueError):
            modmath.root_of_unity(1 << 20, 97)


class TestBitReverse:
    def test_n8(self):
        assert modmath.bit_reverse_indices(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_paper_example_index6(self):
        # Figure 3: m[6] = (110)b moves to position (011)b = 3.
        rev = modmath.bit_reverse_indices(8)
        assert rev[3] == 6

    def test_involution(self):
        for n in (2, 16, 128):
            rev = modmath.bit_reverse_indices(n)
            assert rev[rev].tolist() == list(range(n))

    def test_bit_reverse_array(self):
        a = np.arange(16)
        assert np.array_equal(modmath.bit_reverse(modmath.bit_reverse(a)), a)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            modmath.bit_reverse_indices(12)


class TestInvPow:
    @given(a=st.integers(min_value=1, max_value=PRIME_30 - 1))
    @settings(max_examples=100, deadline=None)
    def test_invmod_property(self, a):
        inv = modmath.invmod(a, PRIME_30)
        assert a * inv % PRIME_30 == 1

    def test_invmod_noninvertible(self):
        with pytest.raises(ZeroDivisionError):
            modmath.invmod(0, 97)

    def test_powmod(self):
        assert modmath.powmod(3, 10, 1000003) == 3**10 % 1000003
