"""Loadgen campaigns: verdict accounting, flood shedding, chaos recovery.

These are small end-to-end campaigns against an in-process server; each
one asserts the loadgen's own verdict machinery (no silent drops,
bit-identical serial replay) on top of scenario-specific behaviour.
"""

import numpy as np
import pytest

from repro.serve import LoadgenConfig, run_loadgen


def small_config(**overrides):
    defaults = dict(
        seed=0,
        clients=2,
        requests_per_client=6,
        tenants=2,
        mode="sparse",
        n=64,
        size=4,
        think_ms=0.5,
        slo_ms=2000.0,
    )
    defaults.update(overrides)
    return LoadgenConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadgenConfig(slow_client_rate=1.5)
        with pytest.raises(ValueError):
            # Worker SIGKILL chaos needs workers to kill.
            LoadgenConfig(chaos_kill_rate=0.5, cluster_workers=0)


class TestCleanRun:
    def test_verdict_ok_and_books_balance(self):
        report = run_loadgen(small_config())
        verdict = report["verdict"]
        assert verdict["ok"]
        assert verdict["sent"] == 12
        assert verdict["replies"] == verdict["sent"]
        assert verdict["silent_drops"] == 0
        assert verdict["replay_mismatches"] == 0
        assert verdict["replay_checked"] == verdict["completed"] > 0
        assert verdict["breaker_trips"] == 0
        assert report["serve"]["accounting"]["unaccounted"] == 0
        assert report["schema"] == "serve-loadgen/v1"

    def test_campaigns_are_seeded(self):
        # Same seed, same request tensors: replay counts line up exactly
        # across two runs (timings differ, the workload does not).
        a = run_loadgen(small_config(seed=7))
        b = run_loadgen(small_config(seed=7))
        assert a["verdict"]["sent"] == b["verdict"]["sent"]
        assert a["params"] == b["params"]

    def test_report_params_round_trip_config(self):
        config = small_config(mode="ntt")
        report = run_loadgen(config)
        assert report["params"]["mode"] == "ntt"
        assert report["params"]["requests_per_client"] == 6


class TestFlood:
    def test_flood_tenant_is_rate_shed_without_starving_polite(self):
        report = run_loadgen(small_config(
            clients=2,
            requests_per_client=8,
            flood_clients=2,
            tenant_rate=25.0,
            tenant_burst=4,
        ))
        verdict = report["verdict"]
        serve = report["serve"]
        assert verdict["ok"]  # sheds are explicit, never a failure
        assert verdict["silent_drops"] == 0
        assert serve["shed"]["rate"] > 0
        flood = serve["per_tenant"]["flood"]
        assert flood["shed"] > 0
        # Every polite tenant still completed work during the flood.
        for name, row in serve["per_tenant"].items():
            if name != "flood":
                assert row["completed"] > 0


class TestSlowClients:
    def test_stale_deadlines_terminate_explicitly(self):
        report = run_loadgen(small_config(
            requests_per_client=8,
            slow_client_rate=0.5,
            slo_ms=150.0,
            think_ms=0.0,
        ))
        verdict = report["verdict"]
        serve = report["serve"]
        assert verdict["silent_drops"] == 0
        assert verdict["replay_mismatches"] == 0
        # Every request ends in exactly one named terminal reply: slow
        # clients' stale arrivals become infeasible sheds or deadline
        # notices, never silence.
        assert verdict["replies"] == verdict["sent"]
        assert (
            verdict["completed"] + verdict["shed"]
            + verdict["deadline"] + verdict["errors"]
        ) == verdict["replies"]
        assert serve["accounting"]["unaccounted"] == 0


class TestChaos:
    def test_worker_sigkill_chaos_trips_and_recovers(self):
        # The acceptance scenario: tenant flood + mid-request worker
        # SIGKILLs against a real 2-process cluster.  Zero silent drops,
        # bit-identical replay of every completed result, and the breaker
        # must both trip and recover with transitions in the stats.
        report = run_loadgen(LoadgenConfig(
            seed=3,
            clients=4,
            requests_per_client=20,
            tenants=2,
            mode="sparse",
            n=64,
            size=4,
            think_ms=1.0,
            slo_ms=2000.0,
            flood_clients=2,
            slow_client_rate=0.1,
            chaos_kill_rate=0.35,
            cluster_workers=2,
            tenant_rate=60.0,
            tenant_burst=8,
            breaker_failures=2,
            breaker_recovery_s=0.2,
        ))
        verdict = report["verdict"]
        serve = report["serve"]
        assert verdict["silent_drops"] == 0
        assert verdict["replay_mismatches"] == 0
        assert verdict["completed"] > 0
        assert verdict["chaos_requested"]
        assert verdict["chaos_ok"]
        assert verdict["breaker_trips"] >= 1
        assert verdict["breaker_recoveries"] >= 1
        transitions = serve["breaker"]["transitions"]
        assert any(t["to"] == "open" for t in transitions)
        assert any(t["to"] == "closed" for t in transitions)
        assert serve["cluster_recoveries"] >= 1
        assert serve["accounting"]["unaccounted"] == 0
        assert verdict["ok"]


class TestReplayOracle:
    def test_external_server_path(self):
        # run_loadgen accepts a caller-owned server (and must not close it).
        from repro.serve import InferenceServer, ServeConfig

        server = InferenceServer(ServeConfig())
        try:
            report = run_loadgen(
                small_config(clients=1, requests_per_client=2), server=server
            )
            assert report["verdict"]["ok"]
            assert server.ready()  # still alive: the campaign did not close it
        finally:
            server.close()

    def test_replay_detects_a_corrupted_result(self):
        # The verdict's replay stage is itself load-bearing: a record with
        # a wrong output tensor must be counted and must fail the verdict.
        from repro.cluster.jobs import config_to_wire, shape_to_wire
        from repro.serve import InferenceServer, ServeConfig
        from repro.serve.loadgen import _ClientTally, _conv_shape, _verdict
        from repro.serve.messages import REP_RESULT

        config = small_config(clients=1, requests_per_client=1, mode="ntt")
        server = InferenceServer(ServeConfig())
        try:
            rng = np.random.default_rng(0)
            w = rng.integers(-8, 8, size=(1, 1, 3, 3))
            tally = _ClientTally(sent=1)
            tally.records.append({
                "tenant": "t",
                "reply": REP_RESULT,
                "x": rng.integers(-8, 8, size=(1, 4, 4)),
                "body": {
                    "mode": "ntt",
                    "out": np.full((1, 4, 4), 12345, dtype=np.int64),
                },
            })
            report = _verdict(
                config, server, [tally],
                server.stats.accounting(in_flight=0), 0.0,
                config_to_wire(None), shape_to_wire(_conv_shape(config)),
                w, lambda *_args: None,
            )
        finally:
            server.close()
        assert report["verdict"]["replay_mismatches"] == 1
        assert not report["verdict"]["ok"]
