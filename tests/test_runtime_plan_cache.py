"""Property tests for :class:`repro.runtime.PlanCache` and the bounded
backend caches that route through it.

Hypothesis drives randomized get/put sequences against a reference model:
hit/miss counters must match exact bookkeeping, the byte-accounted LRU
must never exceed its capacity, and cached plans must be the same objects
(and produce identical transforms) as freshly built ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.backend import CachedNttBackend, FftPolyMulBackend
from repro.he.poly import RingPoly
from repro.ntt import RnsBasis, get_ntt
from repro.runtime import PlanCache, approx_config_key, estimate_nbytes

# An operation is (key, nbytes): puts insert a payload of that size,
# gets look the key up.
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),  # True = put, False = get
        st.integers(min_value=0, max_value=7),  # key id
        st.integers(min_value=0, max_value=64),  # payload size
    ),
    max_size=60,
)


class TestPlanCacheProperties:
    @given(ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_hit_miss_counting_matches_reference(self, ops):
        cache = PlanCache()  # unbounded: pure counting semantics
        model = {}
        hits = misses = 0
        for is_put, key, size in ops:
            if is_put:
                cache.put(key, bytes(size))
                model[key] = size
            else:
                got = cache.get(key)
                if key in model:
                    hits += 1
                    assert got == bytes(model[key])
                else:
                    misses += 1
                    assert got is None
        assert cache.hits == hits
        assert cache.misses == misses
        assert len(cache) == len(model)

    @given(
        ops=ops_strategy,
        capacity=st.integers(min_value=0, max_value=128),
    )
    @settings(max_examples=200, deadline=None)
    def test_lru_never_exceeds_capacity(self, ops, capacity):
        cache = PlanCache(capacity_bytes=capacity)
        for is_put, key, size in ops:
            if is_put:
                cache.put(key, bytes(size))
            else:
                cache.get(key)
            assert cache.cached_bytes <= capacity
            assert cache.cached_bytes == sum(
                len(cache._entries[k][0]) for k in cache.keys()
            )

    @given(
        ops=ops_strategy,
        capacity=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=100, deadline=None)
    def test_lru_eviction_order_matches_reference_model(self, ops, capacity):
        from collections import OrderedDict

        cache = PlanCache(capacity_bytes=capacity)
        model = OrderedDict()  # key -> size, most-recent last

        for is_put, key, size in ops:
            if is_put:
                cache.put(key, bytes(size))
                model.pop(key, None)
                model[key] = size
                if size <= capacity:
                    while sum(model.values()) > capacity:
                        model.popitem(last=False)
                else:
                    model.pop(key)  # oversized entries are not retained
            else:
                cache.get(key)
                if key in model:
                    model.move_to_end(key)
        assert cache.keys() == list(model.keys())

    @given(entries=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_max_entries_bound(self, entries):
        cache = PlanCache(max_entries=entries)
        for i in range(3 * entries):
            cache.put(i, i)
            assert len(cache) <= entries
        assert cache.keys() == list(range(2 * entries, 3 * entries))

    def test_cached_plan_identical_to_fresh(self):
        cache = PlanCache()
        built = cache.get_or_build("plan", lambda: get_ntt(64, 7681))
        again = cache.get_or_build("plan", lambda: get_ntt(64, 7681))
        assert built is again
        fresh = get_ntt(64, 7681)
        x = np.arange(64, dtype=np.uint64) % 7681
        assert np.array_equal(built.forward(x), fresh.forward(x))
        assert cache.hits == 1 and cache.misses == 1

    def test_error_policy_raises_after_insert(self):
        cache = PlanCache(capacity_bytes=16, on_full="error")
        cache.put("a", bytes(10))
        with pytest.raises(MemoryError):
            cache.put("b", bytes(10))
        assert cache.cached_bytes == 20  # footprint is reported, not hidden

    def test_estimate_nbytes_understands_arrays_and_plans(self):
        assert estimate_nbytes(np.zeros(8, dtype=np.int64)) == 64
        assert estimate_nbytes([np.zeros(4), np.zeros(4)]) == 64
        plan = get_ntt(64, 7681)
        assert estimate_nbytes(plan) == plan.plan_bytes > 0

    def test_approx_config_key_distinguishes_configs(self):
        from repro.fftcore.fixed_point import ApproxFftConfig

        a = ApproxFftConfig(n=32, stage_widths=27, twiddle_k=5)
        b = ApproxFftConfig(n=32, stage_widths=27, twiddle_k=6)
        assert approx_config_key(a) != approx_config_key(b)
        assert approx_config_key(None) == ("fp64",)


class TestBoundedBackendCaches:
    """Regression: the ad-hoc unbounded dict caches in repro.he.backend
    are gone; spectra now live in capacity-honoring PlanCaches."""

    def test_fft_spectrum_cache_honors_capacity(self):
        basis = RnsBasis.generate(64, [30, 30])
        one_spectrum = 64 // 2 * 16 + 8  # complex128 half-spectrum + scale
        backend = FftPolyMulBackend(
            spectrum_cache_bytes=3 * one_spectrum
        )
        rng = np.random.default_rng(0)
        poly = RingPoly(basis, basis.to_rns(rng.integers(0, 1 << 20, 64)))
        for i in range(10):
            backend.multiply(poly, rng.integers(-5, 6, size=64))
            assert (
                backend._spectrum_cache.cached_bytes <= 3 * one_spectrum
            )
        assert len(backend._spectrum_cache) <= 3
        assert backend.cache_stats["evictions"] > 0

    def test_fft_backend_clear_cache(self):
        basis = RnsBasis.generate(64, [30, 30])
        backend = FftPolyMulBackend()
        rng = np.random.default_rng(1)
        poly = RingPoly(basis, basis.to_rns(rng.integers(0, 1 << 20, 64)))
        backend.multiply(poly, rng.integers(-5, 6, size=64))
        assert len(backend._spectrum_cache) == 1
        backend.clear_cache()
        assert len(backend._spectrum_cache) == 0
        assert backend._spectrum_cache.cached_bytes == 0

    def test_cached_ntt_backend_memory_wall_preserved(self):
        basis = RnsBasis.generate(64, [30, 30])
        rng = np.random.default_rng(2)
        poly = RingPoly(basis, basis.to_rns(rng.integers(0, 1 << 20, 64)))
        backend = CachedNttBackend(capacity_bytes=3 * 2 * 64 * 8)
        for i in range(3):
            backend.multiply(poly, rng.integers(-5, 6, size=64))
        assert backend.misses == 3 and backend.hits == 0
        with pytest.raises(MemoryError):
            backend.multiply(poly, rng.integers(-5, 6, size=64))
        backend.clear_cache()
        backend.multiply(poly, rng.integers(-5, 6, size=64))

    def test_cached_backend_results_identical_to_fresh(self):
        basis = RnsBasis.generate(64, [30, 30])
        rng = np.random.default_rng(3)
        poly = RingPoly(basis, basis.to_rns(rng.integers(0, 1 << 20, 64)))
        w = rng.integers(-5, 6, size=64)
        backend = CachedNttBackend()
        first = backend.multiply(poly, w)
        second = backend.multiply(poly, w)  # cache hit
        assert backend.hits == 1
        for a, b in zip(first.residues, second.residues):
            assert np.array_equal(a, b)
