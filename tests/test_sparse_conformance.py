"""Sparse differential-conformance tier for the batched sparse runtime.

The batched sparse path (:class:`repro.sparse.plan.SparsePlan` and
everything built on it) must be **bit-identical** to the per-call
skipping/merging oracles it replaces, across a randomized
shape x batch x sparsity grid:

* ``SparsePlan.execute`` row-by-row equals
  ``SparseFixedPointFft.run(..., valid=pattern)`` -- values *and*
  multiplication count;
* ``SparseWeightPipeline.weight_forward_batch`` equals per-call
  ``SparseApproxNegacyclic.weight_forward`` -- values *and* scales;
* ``BatchedHConvEngine(mode="sparse")`` equals per-call
  :func:`repro.core.hconv.hconv_sparse`;
* ``SparseBatchedFftBackend.multiply_many`` equals the serial encrypted
  pipeline with the per-call sparse weight transform, word for word;
* realized mult counts reported by the runtime stats match the
  :mod:`repro.sparse.opcount` analytical model within the 2% acceptance
  band (they are exactly equal on every tested pattern).
"""

import numpy as np
import pytest

from repro.core.hconv import hconv_sparse
from repro.encoding.conv_encoding import ConvShape
from repro.encoding.plain_eval import conv2d_via_polynomials
from repro.fftcore.approx_pipeline import ApproxNegacyclic
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.noise import fft_error_tolerance
from repro.he.params import toy_preset
from repro.he.poly import RingPoly
from repro.ntt import RnsBasis
from repro.protocol.hybrid import HybridConvProtocol
from repro.runtime import BatchedHConvEngine, SparseBatchedFftBackend
from repro.sparse import SparsePlan, SparseWeightPipeline
from repro.sparse.opcount import sparse_fft_mults
from repro.sparse.patterns import (
    contiguous_block_pattern,
    fold_valid_indices,
    uniform_stride_pattern,
)
from repro.sparse.sparse_fxp import SparseApproxNegacyclic, SparseFixedPointFft

from tests.test_runtime_differential import (
    FLASH_CFG,
    N,
    random_batch,
    random_kernel,
    random_shape_grid,
)

CORE_CFG = ApproxFftConfig(
    n=N // 2, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)

#: Realized-vs-model acceptance band (the PR's contract is 2%; in practice
#: the counts are exactly equal on every pattern in this grid).
MULT_MODEL_TOLERANCE = 0.02


def random_patterns(n: int, seed: int, count: int):
    """Randomized sparsity grid in natural coefficient order: structured
    (stride / block) and unstructured supports at varying densities."""
    rng = np.random.default_rng(seed)
    patterns = [
        uniform_stride_pattern(n, max(1, n // 8)),
        contiguous_block_pattern(n, max(2, n // 6)),
        np.arange(n, dtype=np.int64),  # dense: sparse path == full grid
    ]
    for _ in range(count):
        k = int(rng.integers(1, max(2, n // 3)))
        patterns.append(
            np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
        )
    return patterns


def random_supported_weights(rng, n: int, pattern, batch: int) -> np.ndarray:
    """Integer weight stack supported on ``pattern`` (rows may be sparser)."""
    weights = np.zeros((batch, n), dtype=np.int64)
    weights[:, pattern] = rng.integers(-4, 5, size=(batch, len(pattern)))
    return weights


class TestPlanVsSparseFxpOracle:
    """SparsePlan.execute vs the per-call SparseFixedPointFft walk."""

    @pytest.mark.parametrize("sign", [1, -1])
    def test_plan_bit_identical_to_engine(self, sign):
        n_core = CORE_CFG.n
        engine = SparseFixedPointFft(CORE_CFG, sign=sign)
        rng = np.random.default_rng(31 + sign)
        for pattern in random_patterns(n_core, seed=23, count=5):
            folded = np.array(sorted({int(v) % n_core for v in pattern}))
            plan = SparsePlan(CORE_CFG, folded, sign=sign)
            x = np.zeros((4, n_core), dtype=np.complex128)
            x[:, folded] = (
                rng.uniform(-0.5, 0.5, size=(4, folded.size))
                + 1j * rng.uniform(-0.5, 0.5, size=(4, folded.size))
            )
            got = plan.execute(x)
            for row, got_row in zip(x, got):
                ref = engine.run(row, valid=folded)
                assert np.array_equal(got_row, ref.values), folded[:5]
                assert plan.mults == ref.mults
                assert plan.dense_mults == ref.dense_mults

    def test_plan_mults_match_opcount_model(self):
        n_core = CORE_CFG.n
        for pattern in random_patterns(n_core, seed=29, count=6):
            folded = tuple(sorted({int(v) % n_core for v in pattern}))
            plan = SparsePlan(CORE_CFG, folded)
            model = sparse_fft_mults(folded, n_core)
            assert plan.dense_mults > 0
            gap = abs(plan.mults - model) / plan.dense_mults
            assert gap <= MULT_MODEL_TOLERANCE, (plan.mults, model)


class TestWeightPipelineVsNegacyclicOracle:
    """SparseWeightPipeline vs per-call SparseApproxNegacyclic."""

    def test_batch_bit_identical_to_per_call(self):
        rng = np.random.default_rng(7)
        for i, pattern in enumerate(random_patterns(N, seed=41, count=5)):
            pipe = SparseWeightPipeline(N, CORE_CFG, pattern)
            oracle = SparseApproxNegacyclic(
                N, CORE_CFG, valid_pattern=pattern
            )
            weights = random_supported_weights(rng, N, pattern, batch=4)
            spec = pipe.weight_forward_batch(weights)
            for b, w in enumerate(weights):
                ref = oracle.weight_forward(w)
                assert np.array_equal(spec.values[b], ref.values), i
                assert float(spec.scale[b]) == ref.scale
                assert pipe.mults == oracle.last_mults

    def test_single_weight_wrapper_matches_batch(self):
        rng = np.random.default_rng(11)
        pattern = uniform_stride_pattern(N, N // 8)
        pipe = SparseWeightPipeline(N, CORE_CFG, pattern)
        w = random_supported_weights(rng, N, pattern, batch=1)[0]
        one = pipe.weight_forward(w)
        many = pipe.weight_forward_batch(w[None, :])
        assert np.array_equal(one.values, many.values[0])
        assert one.scale == float(many.scale[0])

    def test_accepts_prefolded_pattern(self):
        """Folding is idempotent: natural and folded patterns compile to
        the same plan and produce the same spectra."""
        rng = np.random.default_rng(13)
        natural = contiguous_block_pattern(N, N // 6)
        folded = fold_valid_indices(natural, N)
        a = SparseWeightPipeline(N, CORE_CFG, natural)
        b = SparseWeightPipeline(N, CORE_CFG, folded)
        assert np.array_equal(a.pattern, b.pattern)
        assert a.plan.to_bytes() == b.plan.to_bytes()
        w = random_supported_weights(rng, N, natural, batch=2)
        sa, sb = a.weight_forward_batch(w), b.weight_forward_batch(w)
        assert np.array_equal(sa.values, sb.values)


class TestClearSparseDifferential:
    """Engine mode="sparse" vs per-call hconv_sparse over the shape grid."""

    @pytest.mark.parametrize("batch", [1, 4])
    def test_batched_sparse_bit_identical_to_per_call(self, batch):
        engine = BatchedHConvEngine(mode="sparse", weight_config=FLASH_CFG)
        rng = np.random.default_rng(batch + 30)
        for shape in random_shape_grid(seed=37, count=4):
            xs = random_batch(rng, shape, batch)
            w = random_kernel(rng, shape)
            got = engine.conv2d_batch(xs, w, shape, N)
            ref = np.stack(
                [hconv_sparse(x, w, shape, N, FLASH_CFG) for x in xs]
            )
            assert np.array_equal(got, ref), shape

    def test_realized_mults_within_model_band(self):
        engine = BatchedHConvEngine(mode="sparse", weight_config=FLASH_CFG)
        rng = np.random.default_rng(2)
        for shape in random_shape_grid(seed=43, count=4):
            xs = random_batch(rng, shape, 2)
            w = random_kernel(rng, shape)
            engine.conv2d_batch(xs, w, shape, N)
            stats = engine.last_stats
            assert stats.weight_transforms > 0
            assert stats.weight_mults_dense > 0
            assert 0 < stats.weight_mults_realized <= stats.weight_mults_dense
            gap = abs(
                stats.realized_mult_reduction - stats.model_mult_reduction
            )
            assert gap <= MULT_MODEL_TOLERANCE, shape
            # Encoder tiles are genuinely sparse: the plans must skip work.
            assert stats.realized_mult_reduction > 0.2, shape

    def test_sparse_error_within_noise_budget(self):
        params = toy_preset(n=N, share_bits=16)
        tol = fft_error_tolerance(params)
        engine = BatchedHConvEngine(mode="sparse", weight_config=FLASH_CFG)
        rng = np.random.default_rng(6)
        for shape in random_shape_grid(seed=47, count=4):
            xs = random_batch(rng, shape, 3)
            w = random_kernel(rng, shape)
            got = engine.conv2d_batch(xs, w, shape, N)
            exact = np.stack(
                [
                    conv2d_via_polynomials(x, w, shape, N)
                    for x in xs.astype(np.int64)
                ]
            )
            assert int(np.abs(got - exact).max()) <= tol, shape


class TestEncryptedSparseDifferential:
    @pytest.fixture(scope="class")
    def basis(self):
        return RnsBasis.generate(64, [30, 30, 31, 32])

    @pytest.fixture(scope="class")
    def cfg(self, basis):
        return ApproxFftConfig(
            n=basis.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )

    def _serial_sparse_multiply(self, poly, weights, cfg):
        """Per-call encrypted oracle: the FftPolyMulBackend pipeline with
        the weight transform on SparseApproxNegacyclic."""
        n = poly.basis.n
        q = poly.basis.modulus
        pipe = ApproxNegacyclic(n, cfg)
        weights = np.asarray(weights, dtype=np.int64)
        oracle = SparseApproxNegacyclic(
            n, cfg, valid_pattern=np.nonzero(weights)[0]
        )
        w_spec = oracle.weight_forward(weights)
        centered = np.array(
            [float(v) for v in poly.to_centered()], dtype=np.float64
        )
        a_spec = pipe.activation_forward(centered)
        product = pipe.multiply_spectra(w_spec, a_spec)
        ints = [int(round(float(v))) % q for v in product]
        return RingPoly(
            poly.basis, poly.basis.to_rns(np.array(ints, dtype=object))
        )

    def _workload(self, basis, seed, count=5, support=10):
        rng = np.random.default_rng(seed)
        polys, weights = [], []
        for _ in range(count):
            coeffs = rng.integers(0, 1 << 20, size=basis.n)
            polys.append(RingPoly(basis, basis.to_rns(coeffs)))
            w = np.zeros(basis.n, dtype=np.int64)
            pos = rng.choice(basis.n, size=support, replace=False)
            w[pos] = rng.integers(1, 6, size=support) * rng.choice(
                [-1, 1], size=support
            )
            weights.append(w)
        return polys, weights

    def test_sparse_backend_matches_serial_oracle(self, basis, cfg):
        polys, weights = self._workload(basis, seed=3)
        backend = SparseBatchedFftBackend(weight_config=cfg)
        outs = backend.multiply_many(polys, weights)
        for poly, w, out in zip(polys, weights, outs):
            ref = self._serial_sparse_multiply(poly, w, cfg)
            for a, b in zip(out.residues, ref.residues):
                assert np.array_equal(a, b)

    def test_fixed_pattern_matches_inferred(self, basis, cfg):
        """A fixed layer pattern covering every support gives the same
        words as per-weight inference when the supports coincide."""
        rng = np.random.default_rng(9)
        pattern = np.sort(rng.choice(basis.n, size=12, replace=False))
        polys, weights = [], []
        for _ in range(4):
            coeffs = rng.integers(0, 1 << 20, size=basis.n)
            polys.append(RingPoly(basis, basis.to_rns(coeffs)))
            w = np.zeros(basis.n, dtype=np.int64)
            w[pattern] = rng.integers(1, 5, size=pattern.size)
            weights.append(w)
        inferred = SparseBatchedFftBackend(weight_config=cfg)
        fixed = SparseBatchedFftBackend(weight_config=cfg, pattern=pattern)
        a_outs = inferred.multiply_many(polys, weights)
        b_outs = fixed.multiply_many(polys, weights)
        for a, b in zip(a_outs, b_outs):
            for ra, rb in zip(a.residues, b.residues):
                assert np.array_equal(ra, rb)

    def test_backend_stats_match_oracle_counts(self, basis, cfg):
        polys, weights = self._workload(basis, seed=4, count=4)
        backend = SparseBatchedFftBackend(weight_config=cfg)
        backend.multiply_many(polys, weights)
        stats = backend.last_stats
        # Distinct weights each charge one transform (c0/c1 reuse is free).
        assert stats.weight_transforms == len(set(w.tobytes() for w in weights))
        assert 0 < stats.weight_mults_realized < stats.weight_mults_dense
        # Per-weight realized counts equal the per-call oracle's.
        total = 0
        for w in {w.tobytes(): w for w in weights}.values():
            oracle = SparseApproxNegacyclic(
                basis.n, cfg, valid_pattern=np.nonzero(w)[0]
            )
            oracle.weight_forward(w)
            total += oracle.last_mults
        assert stats.weight_mults_realized == total
        gap = abs(
            stats.realized_mult_reduction - stats.model_mult_reduction
        )
        assert gap <= MULT_MODEL_TOLERANCE

    def test_protocol_run_batch_reports_sparse_stats(self, cfg):
        params = toy_preset()
        shape = ConvShape(
            in_channels=2, height=6, width=6, out_channels=3,
            kernel_h=3, kernel_w=3, stride=1, padding=1,
        )
        rng = np.random.default_rng(17)
        xs = rng.integers(-7, 8, size=(3, 2, 6, 6))
        w = rng.integers(-3, 4, size=(3, 2, 3, 3))
        weight_cfg = ApproxFftConfig(
            n=params.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )
        protocol = HybridConvProtocol(
            params, shape,
            backend=SparseBatchedFftBackend(weight_config=weight_cfg),
        )
        results = protocol.run_batch(xs, w, np.random.default_rng(42))
        tol = fft_error_tolerance(params)
        for result in results:
            assert result.max_error <= max(1, tol)
            st = result.stats
            assert st.weight_mults_dense > 0
            assert 0 < st.weight_mults_realized <= st.weight_mults_dense
            assert (
                abs(st.realized_mult_reduction - st.model_mult_reduction)
                <= MULT_MODEL_TOLERANCE
            )
