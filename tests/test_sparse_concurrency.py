"""Concurrency tier for the batched sparse runtime.

The sparse plan caches and the worker pool must never change results:
1 / 2 / 8 workers (and the serial fallback) are byte-identical through
``SparseBatchedFftBackend.multiply_many`` and through the engine's
sparse mode, and a shared sparse-plan :class:`PlanCache` survives an
8-worker stress run under the dynamic race sanitizer with no
happens-before violation.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.hconv import hconv_sparse
from repro.encoding.conv_encoding import ConvShape
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.poly import RingPoly
from repro.lint import instrument
from repro.ntt import RnsBasis
from repro.runtime import BatchedHConvEngine, SparseBatchedFftBackend

WORKER_GRID = [None, 1, 2, 8]


class TestSparseEngineConcurrency:
    def test_worker_counts_byte_identical(self):
        shape = ConvShape(
            in_channels=3, height=7, width=7, out_channels=5,
            kernel_h=3, kernel_w=3, stride=1, padding=1,
        )
        cfg = ApproxFftConfig(
            n=64, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
        )
        rng = np.random.default_rng(21)
        xs = rng.integers(-7, 8, size=(6, 3, 7, 7))
        w = rng.integers(-4, 5, size=(5, 3, 3, 3))
        ref = np.stack([hconv_sparse(x, w, shape, 128, cfg) for x in xs])
        for workers in WORKER_GRID:
            engine = BatchedHConvEngine(
                mode="sparse", weight_config=cfg, max_workers=workers
            )
            got = engine.conv2d_batch(xs, w, shape, 128)
            assert np.array_equal(got, ref), workers

    def test_stats_independent_of_workers(self):
        """Mult accounting is deterministic: charged per requested
        transform, never per cache state or pool schedule."""
        shape = ConvShape(
            in_channels=2, height=6, width=6, out_channels=3,
            kernel_h=3, kernel_w=3, stride=1, padding=1,
        )
        cfg = ApproxFftConfig(
            n=64, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
        )
        rng = np.random.default_rng(22)
        xs = rng.integers(-7, 8, size=(4, 2, 6, 6))
        w = rng.integers(-4, 5, size=(3, 2, 3, 3))
        counts = set()
        for workers in WORKER_GRID:
            engine = BatchedHConvEngine(
                mode="sparse", weight_config=cfg, max_workers=workers
            )
            engine.conv2d_batch(xs, w, shape, 128)
            st = engine.last_stats
            counts.add(
                (
                    st.weight_transforms,
                    st.weight_mults_realized,
                    st.weight_mults_dense,
                    st.weight_mults_model,
                )
            )
        assert len(counts) == 1
        assert next(iter(counts))[1] > 0


class TestSparseBackendConcurrency:
    @pytest.fixture(scope="class")
    def basis(self):
        return RnsBasis.generate(64, [30, 30, 31, 32])

    @pytest.fixture(scope="class")
    def cfg(self, basis):
        return ApproxFftConfig(
            n=basis.n // 2, stage_widths=27, twiddle_k=18,
            twiddle_max_shift=24,
        )

    @pytest.fixture(scope="class")
    def workload(self, basis):
        # 7 weights over 3 distinct supports: the plan cache is shared
        # across jobs while the pool fans out.
        rng = np.random.default_rng(23)
        supports = [
            np.sort(rng.choice(basis.n, size=k, replace=False))
            for k in (6, 10, 14)
        ]
        polys, weights = [], []
        for i in range(7):
            coeffs = rng.integers(0, 1 << 20, size=basis.n)
            polys.append(RingPoly(basis, basis.to_rns(coeffs)))
            sup = supports[i % len(supports)]
            w = np.zeros(basis.n, dtype=np.int64)
            w[sup] = rng.integers(1, 6, size=sup.size)
            weights.append(w)
        return polys, weights

    def test_workers_byte_identical(self, basis, cfg, workload):
        polys, weights = workload
        ref = SparseBatchedFftBackend(weight_config=cfg).multiply_many(
            polys, weights
        )
        for workers in WORKER_GRID[1:]:
            backend = SparseBatchedFftBackend(
                weight_config=cfg, max_workers=workers
            )
            outs = backend.multiply_many(polys, weights)
            for out, expect in zip(outs, ref):
                for a, b in zip(out.residues, expect.residues):
                    assert np.array_equal(a, b), workers

    def test_concurrent_calls_share_plan_cache(self, basis, cfg, workload):
        """Concurrent multiply_many calls against one backend keep
        deterministic results (first-insert-wins plan builds)."""
        polys, weights = workload
        backend = SparseBatchedFftBackend(weight_config=cfg, max_workers=2)
        ref = backend.multiply_many(polys, weights)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(backend.multiply_many, polys, weights)
                for _ in range(4)
            ]
            for future in futures:
                for out, expect in zip(future.result(), ref):
                    for a, b in zip(out.residues, expect.residues):
                        assert np.array_equal(a, b)
        assert backend.plan_cache.hits > 0

    @pytest.mark.slow
    def test_sparse_plan_cache_race_free_under_sanitizer(
        self, basis, cfg, workload
    ):
        """8 workers hammering the sparse-plan cache: the dynamic race
        sanitizer observes the stress and finds no happens-before
        violation on the cache's shared state."""
        polys, weights = workload
        backend = SparseBatchedFftBackend(weight_config=cfg, max_workers=2)
        san = instrument(
            backend.plan_cache,
            fields=("hits", "misses", "evictions", "corruptions", "_bytes"),
            mutable_fields=("_entries",),
        )
        san.start()
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [
                pool.submit(backend.multiply_many, polys, weights)
                for _ in range(8)
            ]
            for future in futures:
                future.result()
        san.join_all()
        assert backend.plan_cache.hits > 0
        assert san.races == [], san.describe()
