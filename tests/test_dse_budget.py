"""Tests for error budgets and the network-wide DSE."""

import math

import numpy as np
import pytest

from repro.dse import (
    explore_network,
    requant_error_budget,
    uniform_fallback_plan,
)
from repro.encoding import ConvShape


def _toy_layers():
    return [
        ("conv1", ConvShape.square(2, 8, 4, 3), 8),
        ("conv2", ConvShape.square(4, 8, 4, 3), 9),
        ("conv2b", ConvShape.square(4, 8, 4, 3), 9),  # duplicate geometry
    ]


class TestRequantBudget:
    def test_grows_with_shift(self):
        budgets = [requant_error_budget(s) for s in (0, 4, 8, 12)]
        assert budgets == sorted(budgets)

    def test_value(self):
        # shift 4: threshold 8, 3-sigma -> variance (8/3)^2.
        assert requant_error_budget(4) == pytest.approx((8 / 3) ** 2)

    def test_confidence_tightens(self):
        assert requant_error_budget(8, 6.0) < requant_error_budget(8, 3.0)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            requant_error_budget(-1)


class TestExploreNetwork:
    @pytest.fixture(scope="class")
    def plan(self):
        return explore_network(
            _toy_layers(), n=256, budget_per_layer=24, seed=0
        )

    def test_plan_covers_all_layers(self, plan):
        assert len(plan.layers) == 3
        assert [l.name for l in plan.layers] == ["conv1", "conv2", "conv2b"]

    def test_feasible_layers_meet_budget(self, plan):
        for layer in plan.layers:
            if layer.feasible:
                assert layer.error_variance < layer.error_budget
                assert layer.power_mw > 0

    def test_total_power(self, plan):
        total = sum(l.power_mw for l in plan.layers if l.feasible)
        assert plan.total_power_mw == pytest.approx(total)

    def test_dedupe_reuses_geometry(self, plan):
        # conv2 and conv2b share geometry and shift: identical picks.
        a = plan.layers[1]
        b = plan.layers[2]
        if a.feasible and b.feasible:
            assert a.point == b.point

    def test_summary_rows(self, plan):
        rows = plan.summary_rows()
        assert len(rows) == 3
        assert rows[0][0] == "conv1"

    def test_infeasible_budget_marked(self):
        # A zero-shift layer demands sub-LSB error variance the coarse
        # search may miss; with shift 0 and 1 eval it must not crash.
        plan = explore_network(
            [("hard", ConvShape.square(2, 8, 4, 3), 0)],
            n=256, budget_per_layer=14, seed=1,
        )
        layer = plan.layers[0]
        if not layer.feasible:
            assert math.isnan(layer.power_mw)
            assert not plan.all_feasible

    def test_strided_layer_accepted(self):
        plan = explore_network(
            [("down", ConvShape.square(2, 8, 4, 1, stride=2), 6)],
            n=256, budget_per_layer=16, seed=2,
        )
        assert len(plan.layers) == 1


class TestUniformFallback:
    def test_uniform_plan_structure(self):
        plan = uniform_fallback_plan(_toy_layers(), n=256)
        assert plan.all_feasible
        for layer in plan.layers:
            assert layer.point.twiddle_k == 5
            assert set(layer.point.stage_widths) == {27}

    def test_dse_beats_or_matches_uniform_power(self):
        # The searched plan should not spend more power than the fixed
        # dw=27/k=5 setting while meeting generous budgets.
        layers = [(n, s, max(sh, 10)) for n, s, sh in _toy_layers()]
        searched = explore_network(layers, n=256, budget_per_layer=30, seed=3)
        uniform = uniform_fallback_plan(layers, n=256)
        if searched.all_feasible:
            assert searched.total_power_mw <= uniform.total_power_mw * 1.1
