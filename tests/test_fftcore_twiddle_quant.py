"""Tests for CSD twiddle-factor quantization (Section IV-C1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fftcore import (
    QuantizedTwiddle,
    TwiddleRom,
    csd_decompose,
    csd_value,
    shift_add_count,
)


class TestCsdDecompose:
    def test_paper_example_21_over_32(self):
        # omega = 21/32 = 2^-1 + 2^-3 + 2^-5 (the paper's shift-add example).
        terms = csd_decompose(21 / 32, k=3, max_shift=5)
        assert csd_value(terms) == pytest.approx(21 / 32)
        assert set(terms) == {(1, 1), (1, 3), (1, 5)}

    def test_exact_powers_need_one_term(self):
        for shift in range(6):
            terms = csd_decompose(2.0**-shift, k=5)
            assert terms == [(1, shift)]

    def test_zero_needs_no_terms(self):
        assert csd_decompose(0.0, k=5) == []

    def test_negative_value_exact_with_mixed_signs(self):
        # Canonical signed digits: -0.75 = -1 + 1/4 (two terms, mixed sign).
        terms = csd_decompose(-0.75, k=2)
        assert csd_value(terms) == pytest.approx(-0.75)
        assert terms[0] == (-1, 0)

    def test_error_decreases_with_k(self):
        value = float(np.cos(2 * np.pi / 4096 * 371))
        errors = [
            abs(csd_value(csd_decompose(value, k, max_shift=20)) - value)
            for k in range(1, 8)
        ]
        assert all(e2 <= e1 + 1e-15 for e1, e2 in zip(errors, errors[1:]))
        assert errors[-1] < 1e-4

    def test_respects_term_budget(self):
        terms = csd_decompose(0.7071067811865476, k=3, max_shift=30)
        assert len(terms) <= 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            csd_decompose(2.5, k=3)
        with pytest.raises(ValueError):
            csd_decompose(0.5, k=-1)

    @given(
        value=st.floats(min_value=-1.0, max_value=1.0),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_error_bounded_by_coarsest_term(self, value, k):
        terms = csd_decompose(value, k, max_shift=24)
        err = abs(csd_value(terms) - value)
        # Greedy CSD halves the residual (at worst keeps it below the
        # smallest selected term); with k terms of max_shift 24 the error
        # is below the first term's half-step unless value is tiny.
        assert err <= max(abs(value) * 2.0 ** -(k - 1), 2.0**-24 + 1e-12)


class TestTwiddleRom:
    @pytest.fixture(scope="class")
    def rom(self):
        return TwiddleRom(n=64, k=5, max_shift=16)

    def test_unit_entries_exact(self, rom):
        # W^0 = 1 and W^(n/4) = -i are exactly representable.
        assert rom.entry(0).value == pytest.approx(1.0)
        assert rom.entry(16).value == pytest.approx(-1j)
        assert rom.entry(32).value == pytest.approx(-1.0)

    def test_exponent_wraps(self, rom):
        assert rom.entry(64).value == rom.entry(0).value
        assert rom.entry(-1).value == rom.entry(63).value

    def test_lookup_vectorized(self, rom):
        out = rom.lookup([0, 16, 32])
        np.testing.assert_allclose(out, [1.0, -1j, -1.0], atol=1e-12)

    def test_error_small_at_k5(self, rom):
        stats = rom.stats()
        assert stats.max_error < 0.03
        assert stats.rms_error < 0.01

    def test_error_shrinks_with_k(self):
        errs = [TwiddleRom(64, k).stats().rms_error for k in (1, 3, 5, 8)]
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < errs[0] / 10

    def test_stage_values_match_entries(self, rom):
        vals = rom.stage_values(3)  # block size 8 -> twiddles W64^(8j)
        expected = rom.lookup(np.arange(4) * 8)
        np.testing.assert_allclose(vals, expected)

    def test_stage_out_of_range(self, rom):
        with pytest.raises(ValueError):
            rom.stage_values(7)

    def test_conjugate_rom(self):
        fwd = TwiddleRom(32, k=4, sign=-1)
        inv = TwiddleRom(32, k=4, sign=+1)
        np.testing.assert_allclose(
            inv.lookup(np.arange(32)),
            np.conj(fwd.lookup(np.arange(32))),
            atol=1e-12,
        )

    def test_mean_terms_at_most_k(self, rom):
        assert rom.stats().mean_terms_per_part <= 5.0

    def test_mux_sizes_reported(self, rom):
        stats = rom.stats()
        assert len(stats.mux_sizes) >= 1
        assert stats.max_mux_size >= 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TwiddleRom(12, 3)
        with pytest.raises(ValueError):
            TwiddleRom(16, 3, sign=0)


class TestShiftAddCount:
    def test_counts_both_parts_twice(self):
        entry = QuantizedTwiddle(
            exponent=1,
            exact=0.6 + 0.8j,
            real_terms=((1, 1), (1, 3)),
            imag_terms=((1, 0),),
        )
        # 4 real products, each costing len(terms) of its twiddle part:
        # 2*(2 + 1) = 6 shifted adds.
        assert shift_add_count(entry) == 6
