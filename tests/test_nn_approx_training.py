"""Tests for approximation-aware training (Section IV-C1's enabler)."""

import numpy as np
import pytest

from repro.encoding import Conv2dEncoder, ConvShape, conv2d_direct
from repro.fftcore import ApproxFftConfig
from repro.nn import (
    QuantizedCnn,
    SharedPolyMulSimulator,
    evaluate_private_inference,
    make_mini_cnn,
    make_synthetic_dataset,
    train,
    train_test_split,
)
from repro.nn.approx_training import (
    adapt_to_config,
    effective_kernel,
    kernel_perturbation_rel,
    train_approx_aware,
)


class TestEffectiveKernel:
    def test_exact_config_is_identity(self):
        shape = ConvShape.square(2, 6, 3, 3)
        rng = np.random.default_rng(0)
        w = rng.integers(-8, 8, size=(3, 2, 3, 3))
        cfg = ApproxFftConfig(n=64, stage_widths=45)
        w_eff = effective_kernel(w, shape, 128, cfg)
        np.testing.assert_allclose(w_eff, w, atol=1e-6)

    def test_effective_kernel_predicts_approx_conv(self):
        # conv(x, w_eff) computed exactly ~= approx pipeline's conv(x, w).
        from repro.core import hconv_flash

        shape = ConvShape.square(1, 6, 2, 3)
        rng = np.random.default_rng(1)
        w = rng.integers(-8, 8, size=(2, 1, 3, 3))
        x = rng.integers(-8, 8, size=(1, 6, 6))
        cfg = ApproxFftConfig(n=32, stage_widths=12, twiddle_k=3)
        w_eff = effective_kernel(w, shape, 64, cfg)
        predicted = conv2d_direct(
            (x * 1000), np.rint(w_eff * 1000).astype(np.int64)
        ) / 1e6
        actual = hconv_flash(x, w, shape, 64, cfg).astype(np.float64)
        # w_eff captures the bulk of the perturbation (activation-path
        # float error and rounding account for the residual).
        scale = max(1.0, np.abs(actual).max())
        assert np.abs(predicted - actual).max() / scale < 0.05

    def test_perturbation_grows_with_coarseness(self):
        shape = ConvShape.square(2, 8, 4, 3)
        rels = [
            kernel_perturbation_rel(
                shape, 256, ApproxFftConfig(n=128, stage_widths=dw, twiddle_k=k)
            )
            for dw, k in [(30, 18), (27, 5), (10, 2)]
        ]
        assert rels == sorted(rels)
        assert rels[0] < 1e-3
        assert rels[2] > 0.02


class TestApproxAwareTraining:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = make_synthetic_dataset(1200, size=12, channels=1, seed=3)
        tr, te = train_test_split(ds)
        return tr, te

    def _private_accuracy(self, model, tr, te, cfg, samples=40):
        qnet = QuantizedCnn.from_float(model, tr.images[:200], 4, 4)
        sim = SharedPolyMulSimulator(
            n=256, share_bits=26, weight_config=cfg,
            rng=np.random.default_rng(9),
        )
        report = evaluate_private_inference(
            qnet, te.images, te.labels, sim, max_samples=samples
        )
        return report.private_accuracy, report.agreement

    def test_recovers_accuracy_under_coarse_config(self, setup):
        tr, te = setup
        cfg = ApproxFftConfig(n=128, stage_widths=9, twiddle_k=1)

        baseline = make_mini_cnn(seed=0)
        train(baseline, tr, epochs=6, lr=0.08, seed=1)
        acc_before, agree_before = self._private_accuracy(baseline, tr, te, cfg)

        adapted = make_mini_cnn(seed=0)
        train(adapted, tr, epochs=6, lr=0.08, seed=1)
        train_approx_aware(adapted, tr, noise_rel=0.08, epochs=4, seed=5)
        acc_after, agree_after = self._private_accuracy(adapted, tr, te, cfg)

        # The coarse config hurts the baseline; adaptation recovers (or at
        # minimum does not worsen) accuracy under approximation.
        assert agree_before < 1.0
        assert acc_after >= acc_before

    def test_adapt_to_config_measures_noise(self, setup):
        tr, _ = setup
        model = make_mini_cnn(seed=2)
        train(model, tr, epochs=2, lr=0.08, seed=1)
        cfg = ApproxFftConfig(n=128, stage_widths=12, twiddle_k=2)
        result = adapt_to_config(model, tr, cfg, epochs=1, seed=3)
        assert result.noise_rel > 0
        assert len(result.losses) == 1

    def test_zero_noise_is_plain_training(self, setup):
        tr, _ = setup
        model = make_mini_cnn(seed=4)
        result = train_approx_aware(model, tr, noise_rel=0.0, epochs=1, seed=6)
        assert result.losses[0] > 0

    def test_rejects_negative_noise(self, setup):
        tr, _ = setup
        with pytest.raises(ValueError):
            train_approx_aware(make_mini_cnn(), tr, noise_rel=-0.1)

    def test_weights_not_left_perturbed(self, setup):
        # After a training step the stored weights are the *clean* updated
        # weights, not the noisy forward copies: repeated eval is stable.
        tr, te = setup
        model = make_mini_cnn(seed=5)
        train_approx_aware(model, tr, noise_rel=0.3, epochs=1, seed=7)
        logits_a = model.forward(te.images[:4], training=False)
        logits_b = model.forward(te.images[:4], training=False)
        np.testing.assert_array_equal(logits_a, logits_b)
