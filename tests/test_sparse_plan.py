"""Property tests for the compiled sparse-plan layer.

Hypothesis drives the two compile-time contracts the batched sparse
runtime rests on:

* the **tag algebra** of :func:`repro.sparse.plan.butterfly_tags` -- ZERO
  absorbs (skipping), SCALED chains compose exponents (merging), GENERAL
  is terminal;
* **plan-compilation determinism** -- the same pattern always compiles to
  a byte-identical :class:`repro.sparse.plan.SparsePlan`, whose replay is
  bit-identical to the per-call :class:`SparseFixedPointFft` walk.

Plus the :class:`repro.runtime.PlanCache` integration: byte accounting via
``plan_bytes``, content digests via ``digest_payload``, and eviction of
tampered cached plans.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fftcore.fixed_point import ApproxFftConfig
from repro.runtime import PlanCache
from repro.runtime.plan_cache import estimate_nbytes, value_digest
from repro.sparse import (
    GENERAL,
    ZERO,
    SparsePlan,
    butterfly_tags,
    compile_sparse_plan,
    scaled,
)
from repro.sparse.sparse_fxp import SparseFixedPointFft

N_CORE = 32
CFG = ApproxFftConfig(
    n=N_CORE, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
)

scaled_tags = st.builds(
    scaled,
    st.integers(0, N_CORE - 1),
    st.integers(0, 4 * N_CORE),
    st.sampled_from([1, -1]),
)
any_tag = st.one_of(st.just(ZERO), st.just(GENERAL), scaled_tags)
exponents = st.integers(0, N_CORE - 1)


def patterns(min_size=1):
    return st.sets(
        st.integers(0, N_CORE - 1), min_size=min_size, max_size=N_CORE
    ).map(lambda s: tuple(sorted(s)))


class TestTagAlgebra:
    @given(tag=any_tag, exponent=exponents)
    @settings(max_examples=50, deadline=None)
    def test_zero_absorbs(self, tag, exponent):
        """A ZERO second operand degenerates the butterfly to a copy:
        no new GENERAL values appear and SCALED chains pass unchanged."""
        out_u, out_v = butterfly_tags(tag, ZERO, exponent)
        if tag == ZERO:
            assert (out_u, out_v) == (ZERO, ZERO)
        elif tag[0] == "scaled":
            assert out_u == tag and out_v == tag
        else:
            assert (out_u, out_v) == (GENERAL, GENERAL)

    @given(tag=scaled_tags, e1=exponents, e2=exponents)
    @settings(max_examples=50, deadline=None)
    def test_scaled_chains_compose_exponents(self, tag, e1, e2):
        """Two consecutive merges accumulate both butterfly exponents on
        the chain (reduced mod n only at materialization) and track the
        sign flip of the difference output."""
        _, src, e0, sgn = tag
        u1, v1 = butterfly_tags(ZERO, tag, e1)
        assert u1 == scaled(src, e0 + e1, sgn)
        assert v1 == scaled(src, e0 + e1, -sgn)
        u2, _ = butterfly_tags(ZERO, v1, e2)
        assert u2 == scaled(src, e0 + e1 + e2, -sgn)
        # mod-n reduction at consumption matches composing reduced steps
        assert u2[2] % N_CORE == (e0 + e1 + e2) % N_CORE

    @given(other=any_tag, exponent=exponents)
    @settings(max_examples=50, deadline=None)
    def test_general_is_terminal(self, other, exponent):
        """Once a node carries a computed value, every butterfly it feeds
        (against any non-ZERO operand) produces GENERAL outputs."""
        if other == ZERO:
            return
        assert butterfly_tags(GENERAL, other, exponent) == (GENERAL, GENERAL)
        assert butterfly_tags(other, GENERAL, exponent) == (GENERAL, GENERAL)

    @given(tag_u=any_tag, tag_v=any_tag, exponent=exponents)
    @settings(max_examples=100, deadline=None)
    def test_transition_is_total_and_closed(self, tag_u, tag_v, exponent):
        """Every operand pair transitions, and outputs stay in the tag
        language (ZERO / SCALED / GENERAL)."""
        out_u, out_v = butterfly_tags(tag_u, tag_v, exponent)
        for out in (out_u, out_v):
            assert out[0] in ("zero", "scaled", "general")
        # ZERO outputs only ever come from two ZERO inputs.
        if ZERO in (out_u, out_v):
            assert tag_u == ZERO and tag_v == ZERO


class TestPlanDeterminism:
    @given(pattern=patterns())
    @settings(max_examples=25, deadline=None)
    def test_same_pattern_byte_identical_plan(self, pattern):
        a = compile_sparse_plan(CFG, pattern)
        b = compile_sparse_plan(CFG, pattern)
        assert a.to_bytes() == b.to_bytes()
        assert a.mults == b.mults
        assert value_digest(a) == value_digest(b)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_distinct_patterns_distinct_plans(self, data):
        p1 = data.draw(patterns())
        p2 = data.draw(patterns())
        if p1 == p2:
            return
        a = compile_sparse_plan(CFG, p1)
        b = compile_sparse_plan(CFG, p2)
        assert a.to_bytes() != b.to_bytes()

    @given(pattern=patterns())
    @settings(max_examples=20, deadline=None)
    def test_plan_replay_bit_identical_to_per_call(self, pattern):
        rng = np.random.default_rng(sum(pattern) + len(pattern))
        plan = SparsePlan(CFG, pattern)
        engine = SparseFixedPointFft(CFG, sign=1)
        x = np.zeros((3, N_CORE), dtype=np.complex128)
        cols = np.array(pattern)
        x[:, cols] = (
            rng.uniform(-0.5, 0.5, size=(3, cols.size))
            + 1j * rng.uniform(-0.5, 0.5, size=(3, cols.size))
        )
        got = plan.execute(x)
        for row, got_row in zip(x, got):
            ref = engine.run(row, valid=cols)
            assert np.array_equal(got_row, ref.values)
            assert plan.mults == ref.mults

    def test_rejects_input_outside_valid_set(self):
        plan = SparsePlan(CFG, (0, 3, 5))
        x = np.zeros(N_CORE, dtype=np.complex128)
        x[7] = 0.25
        with pytest.raises(ValueError, match="outside the valid set"):
            plan.execute(x)


class TestPlanCacheIntegration:
    def test_plan_bytes_accounting(self):
        plan = compile_sparse_plan(CFG, (0, 4, 8, 12))
        assert plan.plan_bytes > 0
        assert estimate_nbytes(plan) == plan.plan_bytes
        cache = PlanCache(capacity_bytes=8 << 20)
        cache.put("p", plan)
        assert cache.cached_bytes == plan.plan_bytes

    def test_digest_covers_plan_content(self):
        plan = compile_sparse_plan(CFG, (0, 4, 8, 12))
        digest = value_digest(plan)
        assert digest is not None
        other = compile_sparse_plan(CFG, (0, 4, 8, 13))
        assert value_digest(other) != digest

    def test_tampered_cached_plan_is_evicted(self):
        cache = PlanCache(capacity_bytes=8 << 20, check_integrity=True)
        key = ("sparse-plan", N_CORE, (0, 4, 8))
        plan = cache.get_or_build(
            key, lambda: compile_sparse_plan(CFG, (0, 4, 8))
        )
        assert cache.get(key) is plan
        plan._raw_tw[0] += 0.5  # corrupt the compiled twiddle table
        assert cache.get(key) is None
        assert cache.corruptions == 1
        rebuilt = cache.get_or_build(
            key, lambda: compile_sparse_plan(CFG, (0, 4, 8))
        )
        assert rebuilt is not plan
