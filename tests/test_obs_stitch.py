"""Cross-process trace stitching: engine -> cluster workers -> serve.

The acceptance property (ISSUE 10): a traced request produces **one
connected span tree** -- a single root, zero orphans -- even when parts
of the work ran in forked cluster worker processes, and a worker killed
mid-span leaves a ``status="truncated"`` marker instead of a hole or a
hang.

All tests drive the process-wide ``obs_trace.tracer`` (that is the one
the instrumented code paths read) and restore it in ``finally`` blocks
so the rest of the suite sees tracing disabled.
"""

import os
import threading

import numpy as np
import pytest

from repro.cluster import ClusterExecutor, ClusterFaultInjector, ClusterPolicy
from repro.encoding.conv_encoding import ConvShape
from repro.obs import trace as obs_trace
from repro.obs.export import forest, summarize, to_chrome_trace
from repro.runtime import BatchedHConvEngine
from repro.serve import InferenceServer, ServeConfig
from repro.serve.messages import conv_request, decode_reply

N = 64
SHAPE = ConvShape.square(1, 4, 1, 3, padding=1)


def conv_inputs(seed=0, batch=4):
    rng = np.random.default_rng(seed)
    xs = rng.integers(-7, 8, size=(batch, 1, 4, 4))
    w = rng.integers(-3, 4, size=(1, 1, 3, 3))
    return xs, w


def _traced(capacity=4096):
    tracer = obs_trace.tracer
    tracer.enable(capacity=capacity)
    tracer.clear()
    return tracer


def _restore(tracer):
    tracer.drain()
    tracer.disable()


class TestClusterStitching:
    def test_cluster_spans_form_one_tree_across_processes(self):
        xs, w = conv_inputs()
        tracer = _traced()
        try:
            policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
            with ClusterExecutor(policy=policy) as ex:
                with tracer.span("test.root"):
                    got = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
            records = tracer.drain()
        finally:
            _restore(tracer)
        assert np.array_equal(
            got, BatchedHConvEngine(mode="ntt").conv2d_batch(xs, w, SHAPE, N)
        )
        groves = forest(records)
        assert len(groves) == 1
        (grove,) = groves.values()
        assert len(grove["roots"]) == 1
        assert grove["roots"][0]["name"] == "test.root"
        assert grove["orphans"] == []
        # Worker-side spans really crossed a process boundary.
        assert len(grove["pids"]) >= 2
        assert os.getpid() in grove["pids"]
        names = {r["name"] for r in grove["spans"]}
        assert "cluster.job" in names
        assert any(n.startswith("runtime.") for n in names)

    def test_untraced_cluster_payloads_carry_no_wire_key(self):
        # Tracing disabled: the envelope must stay byte-identical, so the
        # stamp helper must not add the key.
        payloads = [{"n": 1}]
        obs_trace.tracer.disable()
        obs_trace.stamp_trace_context(payloads)
        assert obs_trace.TRACE_CTX_KEY not in payloads[0]

    def test_worker_sigkill_mid_span_leaves_truncated_marker(self):
        xs, w = conv_inputs(seed=1)
        tracer = _traced()
        try:
            policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
            injector = ClusterFaultInjector(kill_before_jobs=[0])
            with ClusterExecutor(policy=policy, fault_injector=injector) as ex:
                with tracer.span("test.root"):
                    got = ex.conv2d_batch("ntt", None, xs, w, SHAPE, N)
                deaths = ex.stats.worker_deaths
            records = tracer.drain()
        finally:
            _restore(tracer)
        # The run recovered (no hang, correct result) ...
        assert deaths >= 1
        assert np.array_equal(
            got, BatchedHConvEngine(mode="ntt").conv2d_batch(xs, w, SHAPE, N)
        )
        # ... and the killed job left a truncated span plus an incident
        # event, parented into the request tree.
        truncated = [r for r in records if r.get("status") == "truncated"]
        assert truncated, "expected a truncated cluster.job marker"
        assert truncated[0]["name"] == "cluster.job"
        events = [
            r for r in records
            if r.get("kind") == "event" and r["name"] == "cluster.worker_death"
        ]
        assert events
        groves = forest(records)
        assert sum(len(g["orphans"]) for g in groves.values()) == 0


class TestServeStitching:
    def test_each_serve_request_is_one_rooted_tree(self):
        xs, w = conv_inputs(seed=2, batch=3)
        tracer = _traced(capacity=8192)
        try:
            policy = ClusterPolicy(workers=2, heartbeat_timeout=30.0)
            with ClusterExecutor(policy=policy) as ex:
                config = ServeConfig(
                    coalesce_window_s=0.005, reply_timeout_s=30.0
                )
                with InferenceServer(config, cluster=ex) as server:
                    replies = [None] * len(xs)

                    def submit(i):
                        frame = conv_request(
                            i, "tenant", "ntt", None, N, SHAPE, xs[i], w
                        )
                        replies[i] = decode_reply(server.submit(frame))

                    threads = [
                        threading.Thread(target=submit, args=(i,))
                        for i in range(len(xs))
                    ]
                    for th in threads:
                        th.start()
                    for th in threads:
                        th.join()
            records = tracer.drain()
        finally:
            _restore(tracer)
        for kind, _rid, _body in replies:
            assert kind.endswith("result")
        groves = forest(records)
        request_groves = [
            g for g in groves.values()
            if any(r["name"] == "serve.request" for r in g["spans"])
        ]
        assert len(request_groves) == len(xs)
        for grove in request_groves:
            assert len(grove["roots"]) == 1, "one root per request trace"
            assert grove["roots"][0]["name"] == "serve.request"
            assert grove["orphans"] == [], "no orphan spans after stitching"
        # At least one request's work crossed into a worker process.
        assert any(len(g["pids"]) >= 2 for g in request_groves)
        names = {
            r["name"] for g in request_groves for r in g["spans"]
        }
        assert {"serve.request", "serve.execute"} <= names

    def test_serve_trace_exports_and_summarizes(self):
        xs, w = conv_inputs(seed=3, batch=2)
        tracer = _traced()
        try:
            with InferenceServer(ServeConfig(coalesce_window_s=0.0)) as server:
                for i in range(len(xs)):
                    frame = conv_request(
                        i, "t", "ntt", None, N, SHAPE, xs[i], w
                    )
                    kind, _, _ = decode_reply(server.submit(frame))
                    assert kind.endswith("result")
            records = tracer.drain()
        finally:
            _restore(tracer)
        doc = to_chrome_trace(records)
        assert doc["traceEvents"]
        summary = summarize(records)
        assert summary["orphans"] == 0
        assert summary["by_name"]["serve.request"]["count"] == len(xs)


class TestServeHealthObservability:
    def test_health_exposes_breaker_age_and_metrics(self):
        with InferenceServer(ServeConfig()) as server:
            health = server.health()
            assert health["breaker"] == "closed"
            assert health["breaker_state_age_s"] >= 0.0
            assert health["breaker_last_transition"] is None
            metrics = health["metrics"]
            assert "serve_received" in metrics["gauges"]
            assert (
                metrics["gauges"]["serve_breaker_state_code"] == 0.0
            )

    def test_breaker_transition_updates_registry_and_health(self):
        with InferenceServer(ServeConfig()) as server:
            for _ in range(server.config.breaker_failures + 1):
                server.breaker.record_failure("boom")
            health = server.health()
            assert health["breaker"] == "open"
            last = health["breaker_last_transition"]
            assert last is not None and last["to"] == "open"
            gauges = health["metrics"]["gauges"]
            assert gauges["serve_breaker_state_code"] == 1.0
            assert (
                server.metrics.counter_value(
                    "serve_breaker_transitions_total", to="open"
                )
                >= 1.0
            )

    def test_metrics_text_exposition(self):
        with InferenceServer(ServeConfig()) as server:
            text = server.metrics_text()
        assert "serve_breaker_state_code 0" in text
