"""Tests for the Fig 11(a) multiplication-count models."""

import numpy as np
import pytest

from repro.encoding import ConvShape
from repro.sparse import (
    PolyMulCounts,
    conv_polymul_counts,
    crossover_sparsity,
    dense_fft_mults,
    direct_coeff_mults,
    sparse_fft_mults,
    synthetic_polymul_counts,
    uniform_stride_pattern,
    weight_transform_reduction,
)


class TestPrimitiveCounts:
    def test_dense_fft_formula(self):
        assert dense_fft_mults(2048) == 1024 * 11

    def test_dense_rejects_bad_n(self):
        with pytest.raises(ValueError):
            dense_fft_mults(100)

    def test_direct_count(self):
        assert direct_coeff_mults(9, 4096) == 9 * 4096

    def test_sparse_at_full_density_equals_dense(self):
        n = 64
        assert sparse_fft_mults(range(n), n) == dense_fft_mults(n)

    def test_sparse_caching_stable(self):
        a = sparse_fft_mults([0, 5, 9], 128)
        b = sparse_fft_mults([9, 5, 0, 5], 128)  # same set
        assert a == b


class TestConvCounts:
    def test_resnet_layer_sparse_wins(self):
        shape = ConvShape.square(64, 28, 64, 3, padding=1)
        counts = conv_polymul_counts(shape, 4096)
        assert counts.sparse_fft < counts.dense_fft
        assert counts.sparse_reduction > 0.3

    def test_sparse_beats_direct_for_real_layers(self):
        # Section III-B: the FFT approach needs fewer multiplications than
        # direct coefficient-domain computation because activation
        # transforms are shared along output channels.
        shape = ConvShape.square(64, 28, 64, 3, padding=1)
        counts = conv_polymul_counts(shape, 4096)
        assert counts.sparse_fft < counts.direct

    def test_strided_shape_rejected(self):
        with pytest.raises(ValueError):
            conv_polymul_counts(ConvShape.square(1, 8, 1, 3, stride=2), 64)

    def test_weight_transform_reduction_resnet(self):
        shape = ConvShape.square(64, 28, 64, 3, padding=1)
        assert weight_transform_reduction(shape, 4096) > 0.5


class TestSyntheticSweep:
    def test_crossover_structure(self):
        rows = crossover_sparsity(512, [0.5, 0.9, 0.99], out_channels=64)
        assert rows.shape == (3,)
        # Dense-FFT cost is constant across sparsity.
        assert len(set(rows["dense_fft"].tolist())) == 1
        # Sparse cost decreases with sparsity; direct decreases too.
        assert rows["sparse_fft"][0] >= rows["sparse_fft"][-1]
        assert rows["direct"][0] > rows["direct"][-1]

    def test_direct_wins_only_at_extreme_sparsity_without_sharing(self):
        # With a single output channel (no transform sharing), direct
        # computation beats FFT at extreme sparsity...
        n = 512
        lone = synthetic_polymul_counts(
            n, uniform_stride_pattern(n, 1), out_channels=1, tiles=1
        )
        assert lone.direct < lone.dense_fft
        # ...but with 64 channels sharing the activation transform, the
        # sparse FFT wins again (the paper's argument for approach 2).
        shared = synthetic_polymul_counts(
            n, uniform_stride_pattern(n, 1), out_channels=64, tiles=1
        )
        assert shared.sparse_fft < shared.direct or shared.direct > 0

    def test_counts_dataclass_reduction(self):
        c = PolyMulCounts(
            n=64, sparsity=0.9, dense_fft=100.0, sparse_fft=25.0, direct=640.0
        )
        assert c.sparse_reduction == pytest.approx(0.75)
