"""Tests for the fixed-point approximate FFT and the FLASH PE pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fftcore import (
    ApproxFftConfig,
    ApproxNegacyclic,
    FixedPointFft,
    FxpFormat,
    round_to_integers,
    transform_error,
    weight_spectrum_error,
)
from repro.ntt import negacyclic_convolution_naive


class TestFxpFormat:
    def test_ulp(self):
        assert FxpFormat(8).ulp == 2.0**-7

    def test_quantize_rounds_to_grid(self):
        fmt = FxpFormat(4)  # grid step 1/8
        out = fmt.quantize(np.array([0.3, -0.3, 0.13]))
        np.testing.assert_allclose(out, [0.25, -0.25, 0.125])

    def test_quantize_ties_to_even(self):
        # Hardware round-half-even: 0.0625 is halfway between 0 and 1/8.
        fmt = FxpFormat(4)
        np.testing.assert_allclose(
            fmt.quantize(np.array([0.0625, 0.1875])), [0.0, 0.25]
        )

    def test_saturation(self):
        fmt = FxpFormat(4)
        out = fmt.quantize(np.array([5.0, -5.0]))
        np.testing.assert_allclose(out, [fmt.max_value, -1.0])

    def test_quantize_complex(self):
        fmt = FxpFormat(3)
        out = fmt.quantize_complex(np.array([0.3 + 0.8j]))
        assert out[0] == pytest.approx(0.25 + 0.75j)

    def test_high_precision_is_near_lossless(self):
        fmt = FxpFormat(40)
        x = np.array([0.123456789, -0.987654321])
        np.testing.assert_allclose(fmt.quantize(x), x, atol=2**-39)

    def test_rejects_tiny_format(self):
        with pytest.raises(ValueError):
            FxpFormat(1)


class TestApproxFftConfig:
    def test_broadcast_scalar_width(self):
        cfg = ApproxFftConfig(n=16, stage_widths=20)
        assert cfg.stage_widths == [20, 20, 20, 20]
        assert cfg.stages == 4

    def test_per_stage_widths(self):
        cfg = ApproxFftConfig(n=8, stage_widths=[10, 12, 14])
        assert cfg.stage_widths == [10, 12, 14]

    def test_wrong_width_count(self):
        with pytest.raises(ValueError):
            ApproxFftConfig(n=8, stage_widths=[10, 12])

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            ApproxFftConfig(n=12)

    def test_describe(self):
        assert "k=5" in ApproxFftConfig(n=8, twiddle_k=5).describe()


class TestFixedPointFft:
    def test_high_precision_matches_reference(self):
        cfg = ApproxFftConfig(n=64, stage_widths=48)
        fxp = FixedPointFft(cfg)
        rng = np.random.default_rng(0)
        x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.1
        np.testing.assert_allclose(fxp(x), fxp.reference(x), atol=1e-9)

    def test_output_scale(self):
        cfg = ApproxFftConfig(n=16, stage_widths=30)
        assert FixedPointFft(cfg).output_scale == 2.0**-4

    def test_reference_equals_scaled_fft(self):
        cfg = ApproxFftConfig(n=32, stage_widths=30)
        fxp = FixedPointFft(cfg, sign=-1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(32) * 0.2
        np.testing.assert_allclose(
            fxp.reference(x), np.fft.fft(x) / 32, atol=1e-12
        )

    def test_error_monotone_in_width(self):
        rng = np.random.default_rng(2)
        x = (rng.standard_normal(128) + 1j * rng.standard_normal(128)) * 0.05
        errs = []
        for dw in (10, 14, 18, 24, 30):
            cfg = ApproxFftConfig(n=128, stage_widths=dw)
            errs.append(transform_error(FixedPointFft(cfg), x)["rms"])
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < errs[0] / 100

    def test_quantized_twiddles_add_bounded_error(self):
        rng = np.random.default_rng(3)
        x = (rng.standard_normal(64) + 1j * rng.standard_normal(64)) * 0.05
        exact = FixedPointFft(ApproxFftConfig(n=64, stage_widths=30))
        approx = FixedPointFft(
            ApproxFftConfig(n=64, stage_widths=30, twiddle_k=5)
        )
        err = transform_error(approx, x)["rel_rms"]
        err_exact = transform_error(exact, x)["rel_rms"]
        assert err_exact < 1e-6
        assert err < 0.05  # k=5 twiddles keep relative error small

    def test_values_stay_in_range(self):
        # Adversarial all-max input: halving must prevent overflow.
        cfg = ApproxFftConfig(n=64, stage_widths=12)
        fxp = FixedPointFft(cfg)
        x = np.full(64, 0.999) + 1j * np.full(64, 0.999)
        out = fxp(x)
        assert np.all(np.abs(out.real) <= 1.0)
        assert np.all(np.abs(out.imag) <= 1.0)

    def test_input_width_quantization(self):
        cfg = ApproxFftConfig(n=16, stage_widths=30, input_width=4)
        fxp = FixedPointFft(cfg)
        x = np.full(16, 0.26)
        # input quantized to 0.25 on the 2^-3 grid before transform
        out = fxp(x) / fxp.output_scale
        assert out[0].real == pytest.approx(16 * 0.25, abs=1e-6)

    def test_shape_validation(self):
        fxp = FixedPointFft(ApproxFftConfig(n=16, stage_widths=20))
        with pytest.raises(ValueError):
            fxp(np.zeros(8))

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            FixedPointFft(ApproxFftConfig(n=16, stage_widths=20), sign=2)


class TestApproxNegacyclic:
    def test_fp_weight_path_is_exact(self):
        pipe = ApproxNegacyclic(n=64, weight_config=None)
        rng = np.random.default_rng(4)
        w = rng.integers(-8, 8, size=64)
        a = rng.integers(-1000, 1000, size=64)
        got = pipe.multiply(w, a)
        expected = negacyclic_convolution_naive(w, a)
        assert [int(v) for v in got] == [int(v) for v in expected]

    def test_high_precision_fxp_weight_path_is_exact(self):
        cfg = ApproxFftConfig(n=32, stage_widths=45)
        pipe = ApproxNegacyclic(n=64, weight_config=cfg)
        rng = np.random.default_rng(5)
        w = rng.integers(-8, 8, size=64)
        a = rng.integers(-1000, 1000, size=64)
        got = pipe.multiply(w, a)
        expected = negacyclic_convolution_naive(w, a)
        assert [int(v) for v in got] == [int(v) for v in expected]

    def test_low_precision_error_is_small_relative(self):
        cfg = ApproxFftConfig(n=32, stage_widths=16, twiddle_k=5)
        pipe = ApproxNegacyclic(n=64, weight_config=cfg)
        rng = np.random.default_rng(6)
        w = np.zeros(64, dtype=np.int64)
        w[:9] = rng.integers(-8, 8, size=9)  # sparse like encoded kernels
        a = rng.integers(-(2**20), 2**20, size=64)
        got = np.array(
            [int(v) for v in pipe.multiply(w, a)], dtype=np.float64
        )
        expected = np.array(
            [int(v) for v in negacyclic_convolution_naive(w, a)],
            dtype=np.float64,
        )
        scale = np.abs(expected).max()
        rel = np.abs(got - expected).max() / scale
        assert rel < 0.05

    def test_weight_spectrum_error_decreases_with_width(self):
        rng = np.random.default_rng(7)
        w = rng.integers(-8, 8, size=64)
        errs = []
        for dw in (10, 16, 24, 32):
            cfg = ApproxFftConfig(n=32, stage_widths=dw)
            pipe = ApproxNegacyclic(n=64, weight_config=cfg)
            errs.append(weight_spectrum_error(pipe, w)["rms"])
        assert errs == sorted(errs, reverse=True)

    def test_modulus_reduction(self):
        pipe = ApproxNegacyclic(n=16)
        w = np.zeros(16, dtype=np.int64)
        w[0] = -1
        a = np.ones(16, dtype=np.int64)
        out = pipe.multiply(w, a, modulus=97)
        assert out.tolist() == [96] * 16

    def test_mismatched_core_size_rejected(self):
        with pytest.raises(ValueError):
            ApproxNegacyclic(n=64, weight_config=ApproxFftConfig(n=64))

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_property_high_precision_exact_n16(self, data):
        ints = st.integers(-7, 7)
        w = np.array(data.draw(st.lists(ints, min_size=16, max_size=16)))
        a = np.array(
            data.draw(
                st.lists(st.integers(-500, 500), min_size=16, max_size=16)
            )
        )
        cfg = ApproxFftConfig(n=8, stage_widths=45)
        pipe = ApproxNegacyclic(n=16, weight_config=cfg)
        got = pipe.multiply(w, a)
        expected = negacyclic_convolution_naive(w, a)
        assert [int(v) for v in got] == [int(v) for v in expected]
