"""Fixture: RACE001 -- guarded attribute written outside its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self, amount):
        with self._lock:
            self.total = self.total + amount

    def reset(self):
        # BAD: ``total`` is written under ``_lock`` in ``bump`` but this
        # write takes no lock at all.
        self.total = 0
