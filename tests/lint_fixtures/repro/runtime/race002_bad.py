"""Fixture: RACE002 -- compound read-modify-write without the lock."""

import threading


class HitStats:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.evictions = 0

    def record_eviction(self):
        with self._lock:
            self.evictions = self.evictions + 1

    def record_hit(self):
        # BAD: lost-update window -- the read and the write of ``hits``
        # are not atomic, and the class clearly has a lock discipline.
        self.hits += 1
