"""Fixture: DET001 -- nondeterminism feeding the parallel runtime."""

import random
import time

from repro.runtime.parallel import fan_out


def schedule(batches):
    # BAD: set iteration order is arbitrary, so the job list (and with it
    # the fan_out result order) varies run to run.
    jobs = [(idx, b) for idx, b in enumerate({id(b) for b in batches})]

    def job(pair):
        # BAD: wall-clock reads inside a deterministic kernel.
        started = time.monotonic()
        # BAD: unseeded randomness inside a deterministic kernel.
        jitter = random.random()
        return pair[0], started, jitter

    return fan_out(jobs, job, max_workers=4)
