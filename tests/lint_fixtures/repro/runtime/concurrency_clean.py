"""Fixture: disciplined class plus audited suppressions -- no findings."""

import threading


class Disciplined:
    def __init__(self):
        self._lock = threading.RLock()
        self.hits = 0
        self._entries = {}

    def record(self, key, value):
        with self._lock:
            self.hits += 1
            self._entries[key] = value

    def snapshot(self):
        with self._lock:
            return dict(self._entries)

    def reset_unsynchronized(self):
        # repro-lint: disable=RACE001  only called from tests before any
        # worker starts; publication is ordered by executor submit.
        self.hits = 0
