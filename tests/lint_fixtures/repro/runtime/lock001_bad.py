"""Fixture: LOCK001 -- one field guarded by two different locks."""

import threading


class SplitBrain:
    def __init__(self):
        self._read_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self.entries = {}

    def put(self, key, value):
        with self._write_lock:
            self.entries[key] = value

    def clear(self):
        # BAD: ``entries`` is mutated under ``_write_lock`` in ``put`` but
        # under ``_read_lock`` here; no single lock serializes the sites.
        with self._read_lock:
            self.entries = {}
