"""Fixture: violations silenced by suppression comments (must lint clean)."""

import numpy as np


def scale(a, b, q):
    return (a * b) % q  # repro-lint: disable=MOD001  fixture: same-line form


def lift(values):
    # repro-lint: disable=DTYPE001  fixture: standalone comment form, with
    # a justification that continues onto a second comment line
    return values.astype(np.float64)
