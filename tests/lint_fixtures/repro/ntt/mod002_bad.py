"""Fixture: modular reduction of a possibly-negative difference."""


def center_delta(a, b, q):
    return (a - b) % q
