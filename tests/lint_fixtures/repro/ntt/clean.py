"""Fixture: patterns the exemption heuristics must NOT flag."""


def validate(q, n):
    # Divisibility test on scalar parameters (comparison context).
    if (q - 1) % (2 * n) != 0:
        raise ValueError("not NTT friendly")
    return True


def crt_term(v, inv, p):
    # Pure Python-int expression: int() calls mark exact big-int math.
    return (int(v) * int(inv)) % int(p)
