"""Fixture: raw modular product on (potentially) array operands."""


def scale(a, b, q):
    return (a * b) % q
