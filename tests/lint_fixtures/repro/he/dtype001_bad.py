"""Fixture: float64 cast of modular-domain integers."""

import numpy as np


def lift(values):
    return values.astype(np.float64)
