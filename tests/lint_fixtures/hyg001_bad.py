"""Fixture: silently swallowed exception."""


def swallow(fn):
    try:
        return fn()
    except Exception:
        pass
