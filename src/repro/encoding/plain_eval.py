"""Evaluate encoded convolutions in the clear (no encryption).

Bridges the encoders to polynomial arithmetic so tests, benchmarks and the
sparsity analyses can check end-to-end correctness of the coefficient
encoding and measure transform workloads without paying for BFV.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.encoding.conv_encoding import (
    Conv2dEncoder,
    ConvShape,
    decompose_strided,
    iter_row_bands,
    pad_input,
)
from repro.ntt import negacyclic_convolution_naive

PolyMul = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _default_polymul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = negacyclic_convolution_naive(a, b)
    return np.array([int(v) for v in out], dtype=np.int64)


TiledPolyMul = Callable[
    [Conv2dEncoder, int, np.ndarray, np.ndarray], np.ndarray
]


def conv2d_via_polynomials(
    x: np.ndarray,
    w: np.ndarray,
    shape: ConvShape,
    n: int,
    polymul: Optional[PolyMul] = None,
    tiled_polymul: Optional[TiledPolyMul] = None,
) -> np.ndarray:
    """Compute ``conv2d(x, w)`` through the coefficient encoding.

    Handles stride via phase decomposition.  The polynomial multiplier is
    pluggable so the same path exercises exact NTT products, float FFT
    products or the approximate FLASH pipeline.

    Args:
        x: ``C x H x W`` integer input.
        w: ``M x C x kh x kw`` integer kernel.
        shape: convolution shape (stride/padding included).
        n: polynomial degree.
        polymul: negacyclic product of two length-n integer vectors;
            defaults to the exact schoolbook reference.
        tiled_polymul: alternative multiplier receiving the band encoder
            and tile index as well, for engines that need structural
            metadata (the sparse weight patterns); overrides ``polymul``.

    Returns:
        ``M x out_h x out_w`` int64 output.
    """
    polymul = polymul or _default_polymul
    x = np.asarray(x)
    w = np.asarray(w)
    xp = pad_input(x, shape.padding)
    # Padding is applied exactly once, here; the per-phase encoders see a
    # padding-free shape over the padded tensor.
    padded_shape = ConvShape(
        in_channels=shape.in_channels,
        height=shape.padded_height,
        width=shape.padded_width,
        out_channels=shape.out_channels,
        kernel_h=shape.kernel_h,
        kernel_w=shape.kernel_w,
        stride=shape.stride,
        padding=0,
    )
    total = np.zeros(
        (shape.out_channels, shape.out_height, shape.out_width), dtype=np.int64
    )
    for phase, a, b in decompose_strided(padded_shape):
        x_phase = xp[:, a :: shape.stride, b :: shape.stride]
        w_phase = w[:, :, a :: shape.stride, b :: shape.stride]
        # Guard against ragged sub-sampling (phase shapes are exact).
        x_phase = x_phase[:, : phase.height, : phase.width]
        for row_start, band in iter_row_bands(phase, n):
            x_band = x_phase[:, row_start : row_start + band.height, :]
            encoder = Conv2dEncoder(band, n)
            in_polys = encoder.encode_input(x_band)
            w_polys = encoder.encode_weights(w_phase)
            products: Dict[Tuple[int, int], np.ndarray] = {}
            for (tile, m), w_poly in w_polys.items():
                if tiled_polymul is not None:
                    products[(tile, m)] = tiled_polymul(
                        encoder, tile, in_polys[tile], w_poly
                    )
                else:
                    products[(tile, m)] = polymul(in_polys[tile], w_poly)
            y = encoder.decode_output(products)
            r0 = row_start
            r1 = min(r0 + y.shape[1], shape.out_height)
            total[:, r0:r1, : shape.out_width] += y[
                :, : r1 - r0, : shape.out_width
            ]
    return total


def conv2d_direct(
    x: np.ndarray, w: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Reference dense convolution (cross-correlation, integer arithmetic)."""
    x = np.asarray(x)
    w = np.asarray(w)
    c, h, width = x.shape
    m, c2, kh, kw = w.shape
    if c != c2:
        raise ValueError(f"channel mismatch: {c} vs {c2}")
    xp = pad_input(x, padding)
    hp, wp = xp.shape[1], xp.shape[2]
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    out = np.zeros((m, oh, ow), dtype=np.int64)
    for om in range(m):
        for i in range(oh):
            for j in range(ow):
                patch = xp[:, i * stride : i * stride + kh, j * stride : j * stride + kw]
                out[om, i, j] = int(np.sum(patch.astype(np.int64) * w[om]))
    return out
