"""Cheetah-style coefficient encoding for homomorphic convolution.

Tensors are mapped directly onto polynomial coefficients (Figure 2 of the
paper) so that one negacyclic polynomial product computes a whole
convolution without homomorphic rotations:

* input  ``x[c, i, j]``  -> coefficient ``c*Hp*Wp + i*Wp + j``
* weight ``w[m, c, u, v]`` -> coefficient
  ``(cw-1-c)*Hp*Wp + (kh-1-u)*Wp + (kw-1-v)``
* output ``y[m, i', j']`` = product coefficient
  ``(cw-1)*Hp*Wp + (i'+kh-1)*Wp + (j'+kw-1)``

where ``Hp x Wp`` is the zero-padded spatial size and ``cw`` the number of
channels per ciphertext tile.  Because at most ``kh*kw`` of every
``Hp*Wp`` weight coefficients are non-zero, encoded weight polynomials are
extremely sparse (Section III-B) -- the property FLASH's sparse dataflow
exploits.

Strides are handled by the standard phase decomposition into ``s*s``
stride-1 convolutions (:func:`decompose_strided`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class ConvShape:
    """Shape of one convolution layer.

    Args:
        in_channels: input channel count ``C``.
        height: input height ``H`` (pre-padding).
        width: input width ``W`` (pre-padding).
        out_channels: output channel count ``M``.
        kernel_h: kernel height ``kh``.
        kernel_w: kernel width ``kw``.
        stride: spatial stride (same in both dims).
        padding: symmetric zero padding (same in both dims).
    """

    in_channels: int
    height: int
    width: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self):
        if min(
            self.in_channels,
            self.height,
            self.width,
            self.out_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride,
        ) < 1:
            raise ValueError(f"invalid shape {self}")
        if self.padding < 0:
            raise ValueError("padding must be >= 0")
        if self.kernel_h > self.padded_height or self.kernel_w > self.padded_width:
            raise ValueError("kernel larger than padded input")

    @classmethod
    def square(
        cls, in_channels, size, out_channels, kernel, stride=1, padding=0
    ) -> "ConvShape":
        return cls(
            in_channels, size, size, out_channels, kernel, kernel, stride, padding
        )

    @property
    def padded_height(self) -> int:
        return self.height + 2 * self.padding

    @property
    def padded_width(self) -> int:
        return self.width + 2 * self.padding

    @property
    def out_height(self) -> int:
        return (self.padded_height - self.kernel_h) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.padded_width - self.kernel_w) // self.stride + 1

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the plaintext convolution."""
        return (
            self.out_channels
            * self.out_height
            * self.out_width
            * self.in_channels
            * self.kernel_h
            * self.kernel_w
        )


def pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad a ``C x H x W`` tensor spatially (both shares pad with 0)."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (padding, padding), (padding, padding)))


def iter_row_bands(
    shape: ConvShape, n: int
) -> List[Tuple[int, ConvShape]]:
    """Split a stride-1, pre-padded shape into row bands fitting degree n.

    When one padded channel plane exceeds the ring degree, the input is
    processed in horizontal bands that overlap by ``kernel_h - 1`` rows so
    every output row is produced exactly once.  Returns ``(row_start,
    band_shape)`` pairs; band ``i`` consumes input rows ``[row_start,
    row_start + band.height)`` and produces output rows starting at
    ``row_start``.
    """
    if shape.stride != 1 or shape.padding != 0:
        raise ValueError("row banding expects stride-1, pre-padded shapes")
    if shape.width > n:
        raise ValueError(f"one row ({shape.width}) exceeds the ring degree {n}")
    plane = shape.height * shape.width
    if plane <= n:
        return [(0, shape)]
    rows = n // shape.width
    if rows < shape.kernel_h:
        raise ValueError("ring too small for the kernel height")
    step = rows - (shape.kernel_h - 1)
    out_rows = shape.height - shape.kernel_h + 1
    bands: List[Tuple[int, ConvShape]] = []
    start = 0
    while start < out_rows:
        height = min(rows, shape.height - start)
        bands.append(
            (
                start,
                ConvShape(
                    in_channels=shape.in_channels,
                    height=height,
                    width=shape.width,
                    out_channels=shape.out_channels,
                    kernel_h=shape.kernel_h,
                    kernel_w=shape.kernel_w,
                    stride=1,
                    padding=0,
                ),
            )
        )
        start += step
    return bands


def decompose_strided(shape: ConvShape) -> List[Tuple[ConvShape, int, int]]:
    """Split a strided convolution into ``stride**2`` stride-1 phases.

    Returns ``(phase_shape, a, b)`` triples; phase ``(a, b)`` consumes the
    sub-sampled input ``x_pad[:, a::s, b::s]`` and kernel ``w[:, :, a::s,
    b::s]``.  The phase shapes already include the original padding (the
    input must be padded *before* sub-sampling) and produce ``out_height x
    out_width`` outputs each; summing all phases gives the strided result.
    """
    s = shape.stride
    if s == 1:
        return [(shape, 0, 0)]
    phases = []
    for a in range(s):
        for b in range(s):
            hp = -(-(shape.padded_height - a) // s)  # ceil division
            wp = -(-(shape.padded_width - b) // s)
            kh = -(-(shape.kernel_h - a) // s)
            kw = -(-(shape.kernel_w - b) // s)
            if kh == 0 or kw == 0:
                continue
            phase = ConvShape(
                in_channels=shape.in_channels,
                height=hp,
                width=wp,
                out_channels=shape.out_channels,
                kernel_h=kh,
                kernel_w=kw,
                stride=1,
                padding=0,
            )
            phases.append((phase, a, b))
    return phases


class Conv2dEncoder:
    """Encode/decode one *stride-1* convolution over degree-n polynomials.

    Channels are tiled so each ciphertext holds ``channels_per_tile`` full
    ``Hp x Wp`` channel planes; partial products from different tiles are
    accumulated (homomorphically in the protocol, plainly here).

    Args:
        shape: the convolution shape (must have ``stride == 1``; use
            :func:`decompose_strided` first otherwise).
        n: polynomial degree (HE ring dimension).
    """

    def __init__(self, shape: ConvShape, n: int):
        if shape.stride != 1:
            raise ValueError(
                "Conv2dEncoder is stride-1; decompose strided convolutions"
            )
        self.shape = shape
        self.n = n
        self.plane = shape.padded_height * shape.padded_width
        if self.plane > n:
            raise ValueError(
                f"one padded channel plane needs {self.plane} > n={n} "
                "coefficients; spatial tiling not supported"
            )
        self.channels_per_tile = max(1, min(n // self.plane, shape.in_channels))
        self.num_tiles = -(-shape.in_channels // self.channels_per_tile)

    # ------------------------------------------------------------------
    # Tiling helpers
    #
    # Channels are zero-padded so every tile holds exactly
    # ``channels_per_tile`` planes.  Uniform tiles make the weight
    # sparsity pattern and the output extraction indices identical across
    # tiles, which lets the protocol accumulate partial products in the
    # spectrum/ciphertext domain before the single inverse transform per
    # output channel.
    # ------------------------------------------------------------------

    def tile_channels(self, tile: int) -> range:
        """Global channel indices covered by ``tile`` (may extend past C
        into zero-padded virtual channels)."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range")
        start = tile * self.channels_per_tile
        return range(start, start + self.channels_per_tile)

    def _tile_width(self, tile: int) -> int:
        return self.channels_per_tile

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode_input(self, x: np.ndarray) -> List[np.ndarray]:
        """Encode a ``C x H x W`` integer tensor into per-tile polynomials."""
        s = self.shape
        x = np.asarray(x)
        if x.shape != (s.in_channels, s.height, s.width):
            raise ValueError(
                f"expected {(s.in_channels, s.height, s.width)}, got {x.shape}"
            )
        xp = pad_input(x, s.padding)
        polys = []
        for tile in range(self.num_tiles):
            poly = np.zeros(self.n, dtype=np.int64)
            for local, c in enumerate(self.tile_channels(tile)):
                if c >= s.in_channels:
                    continue  # zero-padded virtual channel
                base = local * self.plane
                poly[base : base + self.plane] = xp[c].reshape(-1)
            polys.append(poly)
        return polys

    def encode_weights(self, w: np.ndarray) -> Dict[Tuple[int, int], np.ndarray]:
        """Encode an ``M x C x kh x kw`` kernel into weight polynomials.

        Returns a dict keyed by ``(tile, out_channel)``; the polynomial for
        a tile holding ``cw`` channels has exactly ``cw * kh * kw`` valid
        (possibly zero-valued) coefficient slots.
        """
        s = self.shape
        w = np.asarray(w)
        if w.shape != (s.out_channels, s.in_channels, s.kernel_h, s.kernel_w):
            raise ValueError(
                f"expected {(s.out_channels, s.in_channels, s.kernel_h, s.kernel_w)},"
                f" got {w.shape}"
            )
        wp = s.padded_width
        out: Dict[Tuple[int, int], np.ndarray] = {}
        for tile in range(self.num_tiles):
            cw = self._tile_width(tile)
            for m in range(s.out_channels):
                poly = np.zeros(self.n, dtype=np.int64)
                for local, c in enumerate(self.tile_channels(tile)):
                    if c >= s.in_channels:
                        continue  # zero-padded virtual channel
                    base = (cw - 1 - local) * self.plane
                    for u in range(s.kernel_h):
                        for v in range(s.kernel_w):
                            idx = base + (s.kernel_h - 1 - u) * wp + (
                                s.kernel_w - 1 - v
                            )
                            poly[idx] = w[m, c, u, v]
                out[(tile, m)] = poly
        return out

    def weight_valid_indices(self, tile: int) -> np.ndarray:
        """Coefficient slots a weight polynomial of ``tile`` may occupy.

        These depend only on the layer shape, not the weight values --
        exactly the structural sparsity the skipping/merging dataflow is
        configured with (one dataflow per layer, Section IV-B).
        """
        s = self.shape
        cw = self._tile_width(tile)
        wp = s.padded_width
        idx = []
        for local in range(cw):
            base = (cw - 1 - local) * self.plane
            for u in range(s.kernel_h):
                for v in range(s.kernel_w):
                    idx.append(base + u * wp + v)
        return np.array(sorted(idx), dtype=np.int64)

    def weight_sparsity(self, tile: int = 0) -> float:
        """Fraction of zero slots in a weight polynomial of ``tile``."""
        return 1.0 - len(self.weight_valid_indices(tile)) / self.n

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def output_index(self, tile: int, i: int, j: int) -> int:
        """Product-polynomial coefficient holding output pixel ``(i, j)``."""
        s = self.shape
        cw = self._tile_width(tile)
        return (
            (cw - 1) * self.plane
            + (i + s.kernel_h - 1) * s.padded_width
            + (j + s.kernel_w - 1)
        )

    def output_indices(self, tile: int) -> np.ndarray:
        """All output coefficient indices of ``tile`` (out_h*out_w vector)."""
        s = self.shape
        return np.array(
            [
                self.output_index(tile, i, j)
                for i in range(s.out_height)
                for j in range(s.out_width)
            ],
            dtype=np.int64,
        )

    def decode_output(
        self, products: Dict[Tuple[int, int], np.ndarray], signed: bool = True
    ) -> np.ndarray:
        """Extract ``M x out_h x out_w`` outputs from product polynomials.

        Args:
            products: product polynomial per ``(tile, out_channel)``.
            signed: unused placeholder for API symmetry (values are taken
                as-is; callers working mod t center beforehand).
        """
        s = self.shape
        y = None
        for tile in range(self.num_tiles):
            idx = self.output_indices(tile)
            for m in range(s.out_channels):
                prod = np.asarray(products[(tile, m)])
                part = prod[idx].reshape(s.out_height, s.out_width)
                if y is None:
                    y = np.zeros(
                        (s.out_channels, s.out_height, s.out_width),
                        dtype=part.dtype,
                    )
                y[m] = y[m] + part
        return y

    def extract_output(self, product_poly: np.ndarray) -> np.ndarray:
        """Extract one output channel's ``out_h x out_w`` plane.

        For a product polynomial already accumulated over channel tiles
        (uniform tiles make extraction indices tile-independent).
        """
        s = self.shape
        prod = np.asarray(product_poly)
        return prod[self.output_indices(0)].reshape(s.out_height, s.out_width)

    def transforms_per_hconv(self) -> Dict[str, int]:
        """Transform counts for one image through this layer (Figure 1 math).

        The input transform is shared across output channels; each
        (tile, out_channel) weight polynomial needs its own forward
        transform; partial products accumulate across channel tiles in the
        spectrum/ciphertext domain, so only one inverse per output channel
        remains.
        """
        s = self.shape
        return {
            "input_forward": self.num_tiles,
            "weight_forward": self.num_tiles * s.out_channels,
            "inverse": s.out_channels,
        }


def iter_weight_polynomials(
    encoder: Conv2dEncoder, w: np.ndarray
) -> Iterator[Tuple[Tuple[int, int], np.ndarray]]:
    """Yield ``((tile, m), weight_poly)`` pairs without storing all of them."""
    for key, poly in encoder.encode_weights(w).items():
        yield key, poly
