"""Cheetah coefficient encoding for convolution and fully-connected layers."""

from repro.encoding.conv_encoding import (
    Conv2dEncoder,
    ConvShape,
    decompose_strided,
    iter_row_bands,
    iter_weight_polynomials,
    pad_input,
)
from repro.encoding.linear_encoding import (
    LinearEncoder,
    LinearShape,
    matvec_via_polynomials,
)
from repro.encoding.plain_eval import conv2d_direct, conv2d_via_polynomials

__all__ = [
    "Conv2dEncoder",
    "ConvShape",
    "LinearEncoder",
    "LinearShape",
    "conv2d_direct",
    "conv2d_via_polynomials",
    "decompose_strided",
    "iter_row_bands",
    "iter_weight_polynomials",
    "matvec_via_polynomials",
    "pad_input",
]
