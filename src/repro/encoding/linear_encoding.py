"""Cheetah-style coefficient encoding for fully-connected (matvec) layers.

A matrix-vector product ``y = W @ x`` (``W`` is ``no x ni``) is computed by
one polynomial product per (input-chunk, row-group): the input chunk is
placed at coefficients ``0..ni-1`` and each weight row is placed reversed
inside its own ``ni``-sized block, so the dot product of row ``r`` lands on
coefficient ``r*ni + ni - 1`` of the product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class LinearShape:
    """Shape of one fully-connected layer (``y = W @ x``)."""

    in_features: int
    out_features: int

    def __post_init__(self):
        if self.in_features < 1 or self.out_features < 1:
            raise ValueError(f"invalid shape {self}")

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features


class LinearEncoder:
    """Encoder/decoder for one FC layer over degree-n polynomials.

    Args:
        shape: layer dimensions.
        n: polynomial degree; input vectors longer than ``n`` are chunked
            and the partial products accumulated.
    """

    def __init__(self, shape: LinearShape, n: int):
        self.shape = shape
        self.n = n
        self.chunk = min(shape.in_features, n)
        self.num_chunks = -(-shape.in_features // self.chunk)
        self.rows_per_poly = max(1, n // self.chunk)
        self.num_row_groups = -(-shape.out_features // self.rows_per_poly)

    def _chunk_range(self, chunk: int) -> range:
        start = chunk * self.chunk
        return range(start, min(self.shape.in_features, start + self.chunk))

    def _row_range(self, group: int) -> range:
        start = group * self.rows_per_poly
        return range(start, min(self.shape.out_features, start + self.rows_per_poly))

    def encode_input(self, x: np.ndarray) -> List[np.ndarray]:
        """Split ``x`` into per-chunk polynomials at coefficients 0..chunk-1."""
        x = np.asarray(x)
        if x.shape != (self.shape.in_features,):
            raise ValueError(f"expected {self.shape.in_features} features")
        polys = []
        for c in range(self.num_chunks):
            poly = np.zeros(self.n, dtype=np.int64)
            rng = self._chunk_range(c)
            poly[: len(rng)] = x[rng.start : rng.stop]
            polys.append(poly)
        return polys

    def encode_weights(self, w: np.ndarray) -> Dict[Tuple[int, int], np.ndarray]:
        """Weight polynomials keyed by ``(chunk, row_group)``.

        Row ``r`` (local index ``r_l``) of chunk ``c`` occupies coefficients
        ``r_l*chunk + (chunk-1-j)`` for ``j`` in the chunk -- dense within
        each block, unlike conv weights (FC layers offer no encoding
        sparsity; Section III-B is about convolutions).
        """
        w = np.asarray(w)
        if w.shape != (self.shape.out_features, self.shape.in_features):
            raise ValueError(
                f"expected {(self.shape.out_features, self.shape.in_features)},"
                f" got {w.shape}"
            )
        out: Dict[Tuple[int, int], np.ndarray] = {}
        for c in range(self.num_chunks):
            cr = self._chunk_range(c)
            width = len(cr)
            for g in range(self.num_row_groups):
                poly = np.zeros(self.n, dtype=np.int64)
                for local, r in enumerate(self._row_range(g)):
                    base = local * self.chunk
                    for j_local, j in enumerate(cr):
                        poly[base + width - 1 - j_local] = w[r, j]
                out[(c, g)] = poly
        return out

    def output_indices(self, chunk: int, group: int) -> np.ndarray:
        """Product coefficients holding the dot products of ``group``'s rows."""
        width = len(self._chunk_range(chunk))
        rows = self._row_range(group)
        return np.array(
            [local * self.chunk + width - 1 for local in range(len(rows))],
            dtype=np.int64,
        )

    def decode_output(
        self, products: Dict[Tuple[int, int], np.ndarray]
    ) -> np.ndarray:
        """Sum partial dot products across chunks into the output vector."""
        y = np.zeros(self.shape.out_features, dtype=np.int64)
        for c in range(self.num_chunks):
            for g in range(self.num_row_groups):
                prod = np.asarray(products[(c, g)])
                idx = self.output_indices(c, g)
                rows = self._row_range(g)
                y[rows.start : rows.stop] += prod[idx]
        return y

    def transforms_per_matvec(self) -> Dict[str, int]:
        """Forward/inverse transform counts (mirrors Conv2dEncoder)."""
        return {
            "input_forward": self.num_chunks,
            "weight_forward": self.num_chunks * self.num_row_groups,
            "inverse": self.num_chunks * self.num_row_groups,
        }


def matvec_via_polynomials(x, w, n: int, polymul=None) -> np.ndarray:
    """Compute ``W @ x`` through the coefficient encoding (test helper)."""
    from repro.encoding.plain_eval import _default_polymul

    polymul = polymul or _default_polymul
    w = np.asarray(w)
    shape = LinearShape(in_features=w.shape[1], out_features=w.shape[0])
    enc = LinearEncoder(shape, n)
    in_polys = enc.encode_input(np.asarray(x))
    products = {
        key: polymul(in_polys[key[0]], poly)
        for key, poly in enc.encode_weights(w).items()
    }
    return enc.decode_output(products)
