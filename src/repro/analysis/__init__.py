"""Latency/memory profiling models and report formatting."""

from repro.analysis.profiles import (
    CpuCostModel,
    LatencyProfile,
    latency_profile,
    ntt_domain_weight_storage_gb,
    raw_weight_storage_gb,
    residual_block_profile,
)
from repro.analysis.report import generate_report, print_report_summary
from repro.analysis.reporting import (
    format_bar_chart,
    format_fractions,
    format_table,
)

__all__ = [
    "CpuCostModel",
    "LatencyProfile",
    "format_bar_chart",
    "format_fractions",
    "format_table",
    "generate_report",
    "print_report_summary",
    "latency_profile",
    "ntt_domain_weight_storage_gb",
    "raw_weight_storage_gb",
    "residual_block_profile",
]
