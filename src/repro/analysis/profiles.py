"""Latency and memory profiles of the baseline protocol (Figure 1).

Models the paper's motivating measurements: a ResNet-50 residual block
under Cheetah is dominated by computation (not communication), the
computation by NTTs, and the NTTs by *weight* transforms; pre-computing
weights in the NTT domain would cost ~23 GB for 4-bit ResNet-50.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hw.workload import LayerWorkload, aggregate, network_workload
from repro.ntt import find_ntt_primes, get_ntt


@dataclass
class CpuCostModel:
    """Measured per-operation CPU costs of the exact NTT backend.

    Args:
        n: ring degree.
        ntt_seconds: wall-clock of one forward/inverse negacyclic NTT.
        pointwise_seconds: wall-clock of one length-n modular pointwise
            multiply.
    """

    n: int
    ntt_seconds: float
    pointwise_seconds: float

    @classmethod
    def measure(cls, n: int = 4096, repeats: int = 5) -> "CpuCostModel":
        """Time our own NTT backend on this machine."""
        (q,) = find_ntt_primes(30, n)
        ntt = get_ntt(n, q)
        rng = np.random.default_rng(0)
        a = rng.integers(0, q, size=n, dtype=np.uint64)
        spec = ntt.forward(a)
        start = time.perf_counter()
        for _ in range(repeats):
            ntt.forward(a)
        ntt_s = (time.perf_counter() - start) / repeats
        from repro.ntt import mulmod

        start = time.perf_counter()
        for _ in range(repeats):
            mulmod(spec, spec, q)
        pw_s = (time.perf_counter() - start) / repeats
        return cls(n=n, ntt_seconds=ntt_s, pointwise_seconds=pw_s)


@dataclass
class LatencyProfile:
    """Figure 1 pie: seconds per protocol component."""

    weight_ntt_s: float
    activation_ntt_s: float
    inverse_ntt_s: float
    pointwise_s: float
    communication_s: float

    @property
    def computation_s(self) -> float:
        return (
            self.weight_ntt_s
            + self.activation_ntt_s
            + self.inverse_ntt_s
            + self.pointwise_s
        )

    @property
    def total_s(self) -> float:
        return self.computation_s + self.communication_s

    def fractions(self) -> Dict[str, float]:
        total = self.total_s or 1.0
        return {
            "weight_ntt": self.weight_ntt_s / total,
            "activation_ntt": self.activation_ntt_s / total,
            "inverse_ntt": self.inverse_ntt_s / total,
            "pointwise": self.pointwise_s / total,
            "communication": self.communication_s / total,
        }


def latency_profile(
    workloads: List[LayerWorkload],
    cost: Optional[CpuCostModel] = None,
    rns_primes: int = 2,
    bandwidth_gbps: float = 1.0,
) -> LatencyProfile:
    """Model the CPU latency of the given HConv workloads under Cheetah.

    Each ciphertext operation touches ``rns_primes`` RNS components; the
    communication term prices one ciphertext per input/output transform at
    ``2 * n * 8 * rns_primes`` bytes over ``bandwidth_gbps``.
    """
    cost = cost or CpuCostModel.measure()
    total = aggregate(list(workloads))
    per_ntt = cost.ntt_seconds * rns_primes
    # Ciphertexts have two components: activation/inverse transforms and
    # pointwise products run twice per polynomial product.
    weight = total.weight_transforms * per_ntt
    activation = total.input_transforms * 2 * per_ntt
    inverse = total.inverse_transforms * 2 * per_ntt
    pointwise = (
        total.pointwise_products * 2 * cost.pointwise_seconds * rns_primes
    )
    ct_bytes = 2 * cost.n * 8 * rns_primes
    messages = total.input_transforms + total.inverse_transforms
    comm = messages * ct_bytes * 8 / (bandwidth_gbps * 1e9)
    return LatencyProfile(
        weight_ntt_s=weight,
        activation_ntt_s=activation,
        inverse_ntt_s=inverse,
        pointwise_s=pointwise,
        communication_s=comm,
    )


def residual_block_profile(
    network: str = "resnet50",
    n: int = 4096,
    cost: Optional[CpuCostModel] = None,
) -> LatencyProfile:
    """Figure 1's workload: one residual block of ResNet-50."""
    from repro.hw.workload import conv_layer_workload
    from repro.nn.resnet import residual_block_layers

    workloads = [
        conv_layer_workload(layer.shape, n, name=layer.name)
        for layer in residual_block_layers(network)
    ]
    return latency_profile(workloads, cost=cost)


def ntt_domain_weight_storage_gb(
    network: str = "resnet50", n: int = 4096, q_bytes: int = 8
) -> float:
    """Memory to pre-store all weight polynomials in the NTT domain.

    The paper: "23 GB to store the entire weights in the NTT domain for a
    4-bit ResNet-50, more than 1000x higher memory consumption".  Each of
    the network's weight transforms is an n-coefficient polynomial of
    q-sized words.
    """
    total = aggregate(network_workload(network, n))
    return total.weight_transforms * n * q_bytes / 1e9


def raw_weight_storage_gb(network: str = "resnet50", bits: int = 4) -> float:
    """Plain quantized weight storage, for the >1000x comparison."""
    from repro.nn.resnet import conv_layers

    params = 0
    for layer in conv_layers(network):
        s = layer.shape
        params += s.out_channels * s.in_channels * s.kernel_h * s.kernel_w
    return params * bits / 8 / 1e9
