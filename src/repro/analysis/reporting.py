"""Plain-text table / chart rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table (benchmarks print these)."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars (for the figure-style benchmark outputs)."""
    values = [float(v) for v in values]
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_w = max((len(lbl) for lbl in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_w)}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def format_fractions(fractions: dict, width: int = 40) -> str:
    """Render a breakdown dict (name -> fraction) as percentage bars."""
    return format_bar_chart(
        list(fractions.keys()),
        [100.0 * v for v in fractions.values()],
        width=width,
        unit="%",
    )
