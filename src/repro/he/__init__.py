"""BFV homomorphic encryption substrate (the paper's SEAL role)."""

from repro.he.backend import (
    CachedNttBackend,
    FftPolyMulBackend,
    NttPolyMulBackend,
    PolyMulBackend,
    flash_backend,
    fp_fft_backend,
)
from repro.he.bfv import BfvContext, Ciphertext, PublicKey, SecretKey
from repro.he.noise import (
    accumulation_noise_factor,
    fft_error_tolerance,
    fresh_noise_bound,
    plain_mult_noise_factor,
    predicted_budget_after_hconv,
)
from repro.he.param_search import (
    ParameterError,
    ParameterReport,
    max_log_q,
    noise_bits_for_hconv,
    parameters_for_network,
    select_parameters,
)
from repro.he.params import (
    BfvParameters,
    cham_preset,
    cheetah_preset,
    preset,
    toy_preset,
)
from repro.he.poly import RingPoly, gaussian_poly, ternary_poly, uniform_poly

__all__ = [
    "BfvContext",
    "BfvParameters",
    "CachedNttBackend",
    "Ciphertext",
    "FftPolyMulBackend",
    "NttPolyMulBackend",
    "ParameterError",
    "ParameterReport",
    "PolyMulBackend",
    "PublicKey",
    "RingPoly",
    "SecretKey",
    "accumulation_noise_factor",
    "cham_preset",
    "cheetah_preset",
    "fft_error_tolerance",
    "flash_backend",
    "fp_fft_backend",
    "fresh_noise_bound",
    "max_log_q",
    "noise_bits_for_hconv",
    "parameters_for_network",
    "gaussian_poly",
    "plain_mult_noise_factor",
    "predicted_budget_after_hconv",
    "preset",
    "select_parameters",
    "ternary_poly",
    "toy_preset",
    "uniform_poly",
]
