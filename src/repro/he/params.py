"""BFV parameter sets used throughout the reproduction.

The paper's protocol (Cheetah) instantiates BFV with polynomial degree
``N = 4096``; the plaintext modulus ``t`` is a power of two matching the
secret-sharing ring ``2**l``, and the ciphertext modulus ``q`` is chosen
for the noise budget.  We provide the two instantiations the paper
compares against plus scaled-down variants for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.ntt.rns import RnsBasis


@dataclass(frozen=True)
class BfvParameters:
    """Immutable BFV parameter set.

    Args:
        n: ring dimension (polynomial degree), power of two.
        plain_modulus: plaintext modulus ``t`` (power of two in Cheetah-style
            protocols so it matches the arithmetic secret-sharing ring).
        q_bits: bit widths of the RNS primes composing the ciphertext
            modulus ``q``.
        error_std: standard deviation of the centered-binomial-ish Gaussian
            encryption noise.
    """

    n: int
    plain_modulus: int
    q_bits: Tuple[int, ...]
    error_std: float = 3.2
    _basis: RnsBasis = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        if self.n < 4 or self.n & (self.n - 1):
            raise ValueError(f"n must be a power of two >= 4, got {self.n}")
        if self.plain_modulus < 2:
            raise ValueError("plaintext modulus must be >= 2")
        basis = RnsBasis.generate(self.n, list(self.q_bits))
        if basis.modulus <= 2 * self.plain_modulus:
            raise ValueError("ciphertext modulus must exceed 2t")
        object.__setattr__(self, "_basis", basis)

    @property
    def basis(self) -> RnsBasis:
        """The RNS basis of the ciphertext modulus."""
        return self._basis

    @property
    def q(self) -> int:
        """Full ciphertext modulus (product of the RNS primes)."""
        return self._basis.modulus

    @property
    def t(self) -> int:
        return self.plain_modulus

    @property
    def delta(self) -> int:
        """Plaintext scaling factor ``floor(q / t)``."""
        return self.q // self.plain_modulus

    @property
    def noise_ceiling(self) -> int:
        """Kernel-level error bound ``q / (2t)`` from Section III-A."""
        return self.q // (2 * self.plain_modulus)

    def describe(self) -> str:
        bits = [p.bit_length() for p in self._basis.primes]
        return (
            f"BFV(n={self.n}, log2(q)={self.q.bit_length()}, "
            f"rns_bits={bits}, t=2^{(self.t - 1).bit_length()}"
            f"{'' if self.t & (self.t - 1) == 0 else f' ({self.t})'}, "
            f"sigma={self.error_std})"
        )


def cheetah_preset(n: int = 4096, share_bits: int = 21) -> BfvParameters:
    """Cheetah-style parameters: N=4096, ~60-bit q, power-of-two t.

    ``share_bits`` is the secret-sharing ring width ``l`` (t = 2**l); the
    default 21 bits covers W4A4 sum-products of ResNet-scale channel counts.
    """
    return BfvParameters(
        n=n, plain_modulus=1 << share_bits, q_bits=(30, 30)
    )


def cham_preset(n: int = 4096, share_bits: int = 12) -> BfvParameters:
    """CHAM-style single 39-bit modulus (Table II row 2).

    The smaller q forces a smaller plaintext ring, as in the DAC'23 CHAM
    accelerator this models.
    """
    return BfvParameters(n=n, plain_modulus=1 << share_bits, q_bits=(39,))


def toy_preset(n: int = 64, share_bits: int = 10) -> BfvParameters:
    """Small parameters for unit tests (insecure, fast)."""
    return BfvParameters(n=n, plain_modulus=1 << share_bits, q_bits=(30, 30))


def preset(name: str, **overrides) -> BfvParameters:
    """Look up a named preset: ``cheetah``, ``cham`` or ``toy``."""
    factories = {
        "cheetah": cheetah_preset,
        "cham": cham_preset,
        "toy": toy_preset,
    }
    if name not in factories:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(factories)}"
        )
    return factories[name](**overrides)
