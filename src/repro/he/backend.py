"""Pluggable polynomial-multiplication backends for plaintext-ciphertext
products.

The backend is where FLASH differs from NTT-based accelerators: the same
BFV/Cheetah protocol runs either on the exact negacyclic NTT (F1, CHAM,
HEAX, ...) or on the approximate folded FFT with fixed-point weight
transforms (FLASH).  Both consume a ciphertext-ring polynomial and a
signed small-coefficient weight vector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fftcore.approx_pipeline import ApproxNegacyclic, ApproxSpectrum
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.poly import RingPoly
from repro.obs import trace as obs_trace

#: Default byte budget for the bounded weight-spectrum caches.  Generous for
#: every test/benchmark workload, but finite: the old ad-hoc dict caches
#: grew without bound across a long-running inference service.
DEFAULT_SPECTRUM_CACHE_BYTES = 64 << 20


class PolyMulBackend:
    """Interface: multiply a ring polynomial by signed integer weights."""

    def multiply(self, poly: RingPoly, weights: np.ndarray) -> RingPoly:
        raise NotImplementedError


class NttPolyMulBackend(PolyMulBackend):
    """Exact product via the per-prime negacyclic NTT (the baseline)."""

    @obs_trace.traced("he.ntt_multiply")
    def multiply(self, poly: RingPoly, weights: np.ndarray) -> RingPoly:
        w = RingPoly.from_signed(poly.basis, weights)
        return poly * w


class CachedNttBackend(PolyMulBackend):
    """Exact NTT backend that pre-stores weight spectra (Figure 1's trade).

    The paper: "it is possible to pre-compute and store the weight
    polynomials in the NTT domain, but it incurs significant memory
    overhead ... 23 GB for a 4-bit ResNet-50, more than 1000x higher".
    This backend realizes that option: each distinct weight polynomial's
    per-prime NTT spectrum is computed once and cached, and the cache's
    memory footprint is tracked so the trade-off can be measured.

    Args:
        capacity_bytes: optional cache budget; exceeding it raises
            :class:`MemoryError` (models the paper's infeasibility point).
            Storage routes through a :class:`repro.runtime.PlanCache` in its
            ``on_full="error"`` mode.
    """

    def __init__(self, capacity_bytes: Optional[int] = None):
        from repro.runtime.plan_cache import PlanCache

        self.capacity_bytes = capacity_bytes
        self._spectra = PlanCache(
            capacity_bytes=capacity_bytes, on_full="error",
            check_integrity=True,
        )

    @property
    def hits(self) -> int:
        return self._spectra.hits

    @property
    def misses(self) -> int:
        return self._spectra.misses

    @property
    def cached_bytes(self) -> int:
        """Memory held by cached NTT-domain weights (8 bytes per word)."""
        return self._spectra.cached_bytes

    def clear_cache(self) -> None:
        self._spectra.clear()

    def _weight_spectra(self, basis, weights: np.ndarray) -> list:
        from repro.ntt.ntt import get_ntt

        def build() -> list:
            residues = basis.to_rns(weights)
            return [
                get_ntt(basis.n, prime).forward(component)
                for prime, component in zip(basis.primes, residues)
            ]

        return self._spectra.get_or_build((basis.n, weights.tobytes()), build)

    @obs_trace.traced("he.cached_ntt_multiply")
    def multiply(self, poly: RingPoly, weights: np.ndarray) -> RingPoly:
        from repro.ntt.modmath import mulmod
        from repro.ntt.ntt import get_ntt

        basis = poly.basis
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        w_spectra = self._weight_spectra(basis, weights)
        out = []
        for prime, component, w_spec in zip(
            basis.primes, poly.residues, w_spectra
        ):
            ntt = get_ntt(basis.n, prime)
            out.append(ntt.inverse(mulmod(ntt.forward(component), w_spec, prime)))
        return RingPoly(basis, out)


class FftPolyMulBackend(PolyMulBackend):
    """Approximate product via the FLASH folded-FFT pipeline.

    The ciphertext polynomial is CRT-lifted to centered integers, multiplied
    in the FFT domain (weight transform on the approximate fixed-point path,
    everything else float64), rounded, and reduced back into RNS.  Weight
    spectra are cached: in an HConv the same weight polynomial multiplies
    both ciphertext components of every input tile, so hardware computes the
    weight transform once (this is also why the second approach of
    Section III-B wins -- activation transforms are shared along output
    channels).

    Args:
        weight_config: fixed-point configuration for the weight-transform
            butterflies; ``None`` runs the weight path in float64 (the
            "FFT (FP)" ablation arm).
        spectrum_cache_bytes: LRU byte budget for cached weight spectra
            (``None`` disables the bound); the cache never exceeds it.
            Entries are integrity-checked: a tampered cached spectrum is
            evicted and recomputed rather than served.
        plan_cache: optional shared :class:`repro.runtime.PlanCache` for
            the transform pipelines themselves.
    """

    def __init__(
        self,
        weight_config: Optional[ApproxFftConfig] = None,
        spectrum_cache_bytes: Optional[int] = DEFAULT_SPECTRUM_CACHE_BYTES,
        plan_cache=None,
    ):
        from repro.runtime.plan_cache import PlanCache

        self.weight_config = weight_config
        self._pipelines = (
            plan_cache if plan_cache is not None
            else PlanCache(max_entries=16)
        )
        self._spectrum_cache = PlanCache(
            capacity_bytes=spectrum_cache_bytes, check_integrity=True
        )

    def pipeline(self, n: int) -> ApproxNegacyclic:
        cfg = self.weight_config
        if cfg is not None and cfg.n != n // 2:
            raise ValueError(
                f"weight core is {cfg.n}-point but ring needs {n // 2}"
            )
        from repro.runtime.plan_cache import approx_config_key

        return self._pipelines.get_or_build(
            ("fft-plan", n, approx_config_key(cfg)),
            lambda: ApproxNegacyclic(n, cfg),
        )

    @obs_trace.traced("he.weight_spectrum")
    def weight_spectrum(self, n: int, weights: np.ndarray) -> ApproxSpectrum:
        """Cached approximate forward transform of a weight polynomial."""
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        pipeline = self.pipeline(n)
        return self._spectrum_cache.get_or_build(
            (n, weights.tobytes()),
            lambda: pipeline.weight_forward(weights),
        )

    @property
    def cache_stats(self) -> dict:
        """Hit/miss/byte statistics of the weight-spectrum cache."""
        return self._spectrum_cache.stats()

    def clear_cache(self) -> None:
        self._spectrum_cache.clear()

    @obs_trace.traced("he.fft_multiply")
    def multiply(self, poly: RingPoly, weights: np.ndarray) -> RingPoly:
        n = poly.basis.n
        q = poly.basis.modulus
        pipe = self.pipeline(n)
        w_spec = self.weight_spectrum(n, np.asarray(weights))
        # Centered lift loses only bits beyond float64's 53-bit mantissa --
        # exactly the LSB error the approximate scheme is designed to absorb.
        centered = np.array(
            [float(v) for v in poly.to_centered()], dtype=np.float64
        )
        a_spec = pipe.activation_forward(centered)
        product = pipe.multiply_spectra(w_spec, a_spec)
        ints = [int(round(float(v))) % q for v in product]
        return RingPoly(
            poly.basis, poly.basis.to_rns(np.array(ints, dtype=object))
        )


def fp_fft_backend() -> FftPolyMulBackend:
    """The double-precision FFT backend (no fixed-point approximation)."""
    return FftPolyMulBackend(weight_config=None)


def flash_backend(
    n: int,
    stage_widths=27,
    twiddle_k: int = 5,
    twiddle_max_shift: int = 16,
) -> FftPolyMulBackend:
    """FLASH's default approximate backend for ring dimension ``n``.

    Defaults follow the paper: 27-bit fixed-point datapath (Figure 5(b))
    and twiddle quantization level k=5 (Table II / Section IV-C1).
    """
    cfg = ApproxFftConfig(
        n=n // 2,
        stage_widths=stage_widths,
        twiddle_k=twiddle_k,
        twiddle_max_shift=twiddle_max_shift,
    )
    return FftPolyMulBackend(weight_config=cfg)
