"""Ring polynomials over the RNS ciphertext modulus, plus samplers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ntt.rns import RnsBasis


class RingPoly:
    """Element of ``Z_q[X]/(X^n + 1)`` stored as RNS residues.

    Thin arithmetic wrapper over :class:`repro.ntt.rns.RnsBasis`; supports
    ``+``, ``-``, unary ``-`` and ``*`` (negacyclic product or scalar).
    """

    __slots__ = ("basis", "residues")

    def __init__(self, basis: RnsBasis, residues: List[np.ndarray]):
        if len(residues) != len(basis.primes):
            raise ValueError("residue count does not match basis")
        self.basis = basis
        self.residues = residues

    # -- constructors ----------------------------------------------------

    @classmethod
    def zero(cls, basis: RnsBasis) -> "RingPoly":
        return cls(basis, basis.zero())

    @classmethod
    def from_signed(cls, basis: RnsBasis, coeffs) -> "RingPoly":
        """Build from signed integer coefficients (any magnitude)."""
        coeffs = np.asarray(coeffs)
        if coeffs.shape != (basis.n,):
            raise ValueError(f"expected {basis.n} coefficients")
        return cls(basis, basis.to_rns(coeffs))

    # -- conversions -----------------------------------------------------

    def to_centered(self) -> np.ndarray:
        """CRT-reconstructed coefficients in ``[-q/2, q/2)`` (object ints)."""
        return self.basis.centered(self.residues)

    def to_unsigned(self) -> np.ndarray:
        """CRT-reconstructed coefficients in ``[0, q)`` (object ints)."""
        return self.basis.from_rns(self.residues)

    def copy(self) -> "RingPoly":
        return RingPoly(self.basis, [r.copy() for r in self.residues])

    # -- arithmetic --------------------------------------------------------

    def _require_same_ring(self, other: "RingPoly") -> None:
        if self.basis is not other.basis and (
            self.basis.primes != other.basis.primes
            or self.basis.n != other.basis.n
        ):
            raise ValueError("operands live in different rings")

    def __add__(self, other: "RingPoly") -> "RingPoly":
        self._require_same_ring(other)
        return RingPoly(self.basis, self.basis.add(self.residues, other.residues))

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        self._require_same_ring(other)
        return RingPoly(self.basis, self.basis.sub(self.residues, other.residues))

    def __neg__(self) -> "RingPoly":
        return RingPoly(self.basis, self.basis.neg(self.residues))

    def __mul__(self, other) -> "RingPoly":
        if isinstance(other, RingPoly):
            self._require_same_ring(other)
            return RingPoly(
                self.basis, self.basis.mul(self.residues, other.residues)
            )
        return RingPoly(
            self.basis, self.basis.mul_scalar(self.residues, int(other))
        )

    __rmul__ = __mul__

    def __eq__(self, other) -> bool:
        if not isinstance(other, RingPoly):
            return NotImplemented
        return all(
            np.array_equal(a, b)
            for a, b in zip(self.residues, other.residues)
        )

    def __repr__(self) -> str:
        return f"RingPoly(n={self.basis.n}, primes={len(self.basis.primes)})"


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------

def uniform_poly(basis: RnsBasis, rng: np.random.Generator) -> RingPoly:
    """Uniformly random ring element (independent per RNS component)."""
    residues = [
        rng.integers(0, p, size=basis.n, dtype=np.uint64) for p in basis.primes
    ]
    return RingPoly(basis, residues)


def ternary_poly(basis: RnsBasis, rng: np.random.Generator) -> RingPoly:
    """Uniform ternary secret in {-1, 0, 1}^n (the BFV secret key)."""
    coeffs = rng.integers(-1, 2, size=basis.n)
    return RingPoly.from_signed(basis, coeffs)


def gaussian_poly(
    basis: RnsBasis,
    rng: np.random.Generator,
    std: float,
    tail_bound: Optional[float] = 6.0,
) -> RingPoly:
    """Discrete-Gaussian-style error polynomial (rounded normal, clipped)."""
    noise = np.rint(rng.normal(0.0, std, size=basis.n)).astype(np.int64)
    if tail_bound is not None:
        limit = int(np.ceil(std * tail_bound))
        noise = np.clip(noise, -limit, limit)
    return RingPoly.from_signed(basis, noise)
