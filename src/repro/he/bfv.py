"""BFV homomorphic encryption (Fan-Vercauteren) over power-of-two rings.

Implements the subset of BFV the hybrid HE/2PC protocol needs -- public /
secret-key encryption, decryption, ciphertext addition/subtraction,
plaintext addition and plaintext-ciphertext multiplication -- plus noise
budget measurement.  Plaintext-ciphertext multiplication accepts pluggable
polynomial-multiplication backends (:mod:`repro.he.backend`): the exact
NTT (baseline accelerators) or the approximate FFT pipeline (FLASH).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.he.params import BfvParameters
from repro.he.poly import RingPoly, gaussian_poly, ternary_poly, uniform_poly


@dataclass
class SecretKey:
    s: RingPoly


@dataclass
class PublicKey:
    p0: RingPoly  # -(a*s + e)
    p1: RingPoly  # a


@dataclass
class Ciphertext:
    """Degree-1 BFV ciphertext ``(c0, c1)`` decrypting via ``c0 + c1*s``."""

    c0: RingPoly
    c1: RingPoly

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy())


def _round_div(a: int, b: int) -> int:
    """Round-to-nearest integer division (ties away from zero), b > 0."""
    if a >= 0:
        return (2 * a + b) // (2 * b)
    return -((-2 * a + b) // (2 * b))


class BfvContext:
    """Stateless BFV operation set bound to one parameter set.

    Args:
        params: the :class:`repro.he.params.BfvParameters` to operate under.
    """

    def __init__(self, params: BfvParameters):
        self.params = params
        self.basis = params.basis

    # ------------------------------------------------------------------
    # Key generation and encryption
    # ------------------------------------------------------------------

    def keygen(self, rng: np.random.Generator):
        """Sample a ternary secret key and a matching public key."""
        s = ternary_poly(self.basis, rng)
        a = uniform_poly(self.basis, rng)
        e = gaussian_poly(self.basis, rng, self.params.error_std)
        p0 = -(a * s + e)
        return SecretKey(s=s), PublicKey(p0=p0, p1=a)

    def _encode(self, plaintext) -> RingPoly:
        """Lift a mod-t message vector to ``Delta * m`` in the ciphertext ring."""
        t = self.params.t
        m = np.asarray(plaintext)
        if m.shape != (self.params.n,):
            raise ValueError(f"expected {self.params.n} plaintext slots")
        lifted = [int(v) % t for v in m.tolist()]
        delta = self.params.delta
        scaled = np.array([delta * v for v in lifted], dtype=object)
        return RingPoly.from_signed(self.basis, scaled)

    def encrypt(
        self, pk: PublicKey, plaintext, rng: np.random.Generator
    ) -> Ciphertext:
        """Public-key encryption of a mod-t coefficient vector."""
        u = ternary_poly(self.basis, rng)
        e1 = gaussian_poly(self.basis, rng, self.params.error_std)
        e2 = gaussian_poly(self.basis, rng, self.params.error_std)
        dm = self._encode(plaintext)
        return Ciphertext(c0=pk.p0 * u + e1 + dm, c1=pk.p1 * u + e2)

    def encrypt_symmetric(
        self, sk: SecretKey, plaintext, rng: np.random.Generator
    ) -> Ciphertext:
        """Secret-key encryption (smaller noise; what Cheetah clients send)."""
        a = uniform_poly(self.basis, rng)
        e = gaussian_poly(self.basis, rng, self.params.error_std)
        dm = self._encode(plaintext)
        return Ciphertext(c0=-(a * sk.s) + e + dm, c1=a)

    # ------------------------------------------------------------------
    # Decryption and noise
    # ------------------------------------------------------------------

    def _phase(self, sk: SecretKey, ct: Ciphertext) -> np.ndarray:
        """Decryption phase ``c0 + c1*s`` as centered big integers."""
        return (ct.c0 + ct.c1 * sk.s).to_centered()

    def decrypt(self, sk: SecretKey, ct: Ciphertext) -> np.ndarray:
        """Decrypt to the mod-t message vector (int64)."""
        q, t = self.params.q, self.params.t
        phase = self._phase(sk, ct)
        return np.array(
            [_round_div(int(v) * t, q) % t for v in phase], dtype=np.int64
        )

    def decrypt_signed(self, sk: SecretKey, ct: Ciphertext) -> np.ndarray:
        """Decrypt and center the message into ``[-t/2, t/2)``."""
        t = self.params.t
        m = self.decrypt(sk, ct)
        return np.where(m >= t // 2, m - t, m)

    def noise_infinity(self, sk: SecretKey, ct: Ciphertext) -> int:
        """Infinity norm of the noise ``(c0 + c1*s) - Delta*m`` (centered)."""
        q = self.params.q
        phase = self._phase(sk, ct)
        m = self.decrypt(sk, ct)
        delta = self.params.delta
        worst = 0
        for v, mi in zip(phase, m.tolist()):
            # repro-lint: disable=MOD002  Python big ints with floored
            # division: the negative difference reduces into [0, q) exactly
            residual = (int(v) - delta * int(mi)) % q
            if residual > q // 2:
                residual -= q
            worst = max(worst, abs(residual))
        return worst

    def noise_budget(self, sk: SecretKey, ct: Ciphertext) -> float:
        """Remaining noise budget in bits: ``log2(q/(2t) / |noise|_inf)``.

        Decryption stays correct while the budget is positive (the
        kernel-level robustness bound of Section III-A).
        """
        noise = self.noise_infinity(sk, ct)
        ceiling = self.params.noise_ceiling
        if noise == 0:
            return float(math.log2(ceiling))
        return float(math.log2(ceiling) - math.log2(noise))

    # ------------------------------------------------------------------
    # Homomorphic evaluation
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return Ciphertext(a.c0 + b.c0, a.c1 + b.c1)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return Ciphertext(a.c0 - b.c0, a.c1 - b.c1)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(-a.c0, -a.c1)

    def add_plain(self, ct: Ciphertext, plaintext) -> Ciphertext:
        """Homomorphic ``ct + Enc(0-noise-free plaintext)`` (Cheetah's boxplus)."""
        return Ciphertext(ct.c0 + self._encode(plaintext), ct.c1.copy())

    def sub_plain(self, ct: Ciphertext, plaintext) -> Ciphertext:
        return Ciphertext(ct.c0 - self._encode(plaintext), ct.c1.copy())

    def multiply_plain(
        self, ct: Ciphertext, weights, backend: Optional["PolyMulBackend"] = None
    ) -> Ciphertext:
        """Multiply by a plaintext polynomial with *signed small* coefficients.

        This is the HConv workhorse: weight polynomials produced by the
        coefficient encoding multiply both ciphertext components.  The
        polynomial product is delegated to ``backend`` (exact NTT by
        default; pass an FFT backend to model FLASH).

        Args:
            ct: input ciphertext.
            weights: signed integer coefficient vector of length n.
            backend: a :class:`repro.he.backend.PolyMulBackend`; defaults
                to the exact NTT backend.
        """
        from repro.he.backend import NttPolyMulBackend

        if backend is None:
            backend = NttPolyMulBackend()
        weights = np.asarray(weights)
        if weights.shape != (self.params.n,):
            raise ValueError(f"expected {self.params.n} weight coefficients")
        c0 = backend.multiply(ct.c0, weights)
        c1 = backend.multiply(ct.c1, weights)
        return Ciphertext(c0, c1)

    def zero_ciphertext(self) -> Ciphertext:
        """The trivial encryption of zero (used as an accumulator seed)."""
        return Ciphertext(
            RingPoly.zero(self.basis), RingPoly.zero(self.basis)
        )
