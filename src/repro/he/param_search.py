"""Automatic BFV parameter selection for hybrid HE/2PC inference.

Section II-A: "t is determined by maximum sum-product bit-width, and q by
the required noise budgets, security level."  This module turns a
quantized layer description into concrete parameters:

* ``t = 2^l`` with ``l`` = worst-case sum-product width (so shares never
  wrap);
* ``q`` sized for the post-HConv noise (fresh noise x ||w||_1 x
  accumulated tiles, plus margin) while staying under the
  homomorphic-encryption-standard ceiling for the ring dimension at the
  requested security level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.he.params import BfvParameters

#: Maximum log2(q) for (ring dimension, classical security bits), from the
#: HomomorphicEncryption.org standard tables (ternary secrets).
_MAX_LOGQ = {
    (1024, 128): 27,
    (2048, 128): 54,
    (4096, 128): 109,
    (8192, 128): 218,
    (16384, 128): 438,
    (1024, 192): 19,
    (2048, 192): 37,
    (4096, 192): 75,
    (8192, 192): 152,
    (16384, 192): 305,
}

#: RNS primes are drawn from this width (they must fit the mulmod kernel).
_PRIME_BITS = 30


class ParameterError(ValueError):
    """No parameter set satisfies the request."""


@dataclass(frozen=True)
class ParameterReport:
    """The selected parameters with their derivation."""

    params: BfvParameters
    sum_product_bits: int
    noise_bits_needed: int
    security_bits: int
    max_logq: int

    @property
    def headroom_bits(self) -> float:
        """Decryption margin: log2(q/2t) minus the predicted noise."""
        return (
            math.log2(self.params.noise_ceiling) - self.noise_bits_needed
        )


def max_log_q(n: int, security_bits: int = 128) -> int:
    """Standard ceiling on log2(q) for a ring dimension/security pair."""
    key = (n, security_bits)
    if key not in _MAX_LOGQ:
        raise ParameterError(
            f"no standard entry for n={n}, lambda={security_bits}; "
            f"known: {sorted(_MAX_LOGQ)}"
        )
    return _MAX_LOGQ[key]


def noise_bits_for_hconv(
    n: int,
    w_bits: int,
    kernel_taps: int,
    accumulated_tiles: int = 1,
    error_std: float = 3.2,
) -> int:
    """Bits of post-HConv noise (fresh noise x plaintext-mult growth).

    Args:
        n: ring dimension.
        w_bits: weight bit-width (bounds ``||w||_inf``).
        kernel_taps: non-zero weight coefficients per polynomial
            (``C_w * kh * kw`` for conv layers).
        accumulated_tiles: homomorphically summed partial products.
        error_std: encryption noise standard deviation.
    """
    fresh = 6.0 * error_std * math.sqrt(2.0 * n * 2.0 / 3.0)
    l1 = kernel_taps * (1 << (w_bits - 1))
    total = fresh * l1 * max(1, accumulated_tiles)
    return max(1, math.ceil(math.log2(total)))


def select_parameters(
    n: int,
    in_bits: int,
    w_bits: int,
    accumulation_terms: int,
    kernel_taps: int = 9,
    accumulated_tiles: int = 1,
    security_bits: int = 128,
    margin_bits: int = 4,
) -> ParameterReport:
    """Pick ``(t, q)`` for a quantized layer on ring dimension ``n``.

    Args:
        n: ring dimension (power of two with a standard security entry).
        in_bits / w_bits: activation and weight bit-widths.
        accumulation_terms: worst-case terms per output sum-product
            (``C * kh * kw``), which sets the plaintext width.
        kernel_taps: non-zero weights per encoded polynomial (noise).
        accumulated_tiles: channel tiles summed homomorphically.
        security_bits: target classical security.
        margin_bits: extra decryption-noise headroom.

    Raises:
        ParameterError: when no q under the security ceiling provides the
            required noise budget.
    """
    from repro.nn.quant import sum_product_bits

    sp_bits = sum_product_bits(in_bits, w_bits, accumulation_terms)
    noise_bits = noise_bits_for_hconv(
        n, w_bits, kernel_taps, accumulated_tiles
    )
    # Need q/2t > noise * 2^margin  =>  log q > sp + 1 + noise + margin.
    logq_needed = sp_bits + 1 + noise_bits + margin_bits
    ceiling = max_log_q(n, security_bits)
    if logq_needed > ceiling:
        raise ParameterError(
            f"need log2(q) ~ {logq_needed} but n={n} allows at most "
            f"{ceiling} at {security_bits}-bit security; increase n or "
            "reduce the plaintext width"
        )
    q_bits = _compose_prime_widths(logq_needed)
    params = BfvParameters(
        n=n, plain_modulus=1 << sp_bits, q_bits=tuple(q_bits)
    )
    return ParameterReport(
        params=params,
        sum_product_bits=sp_bits,
        noise_bits_needed=noise_bits,
        security_bits=security_bits,
        max_logq=ceiling,
    )


def _compose_prime_widths(logq: int) -> List[int]:
    """Split a target modulus width into RNS prime widths (<= 30 bits)."""
    widths = []
    remaining = logq
    while remaining > 0:
        take = min(_PRIME_BITS, remaining)
        if 0 < remaining - take < 20:
            # Avoid a tiny trailing prime: rebalance the last two.
            take = (remaining + 1) // 2
        widths.append(max(take, 20))
        remaining -= take
    return widths


def parameters_for_network(
    layers: List[Tuple[int, int]],
    n: int = 4096,
    in_bits: int = 4,
    w_bits: int = 4,
    security_bits: int = 128,
) -> ParameterReport:
    """Parameters covering every layer of a network.

    Args:
        layers: ``(accumulation_terms, kernel_taps)`` per layer.
        n / in_bits / w_bits / security_bits: as in
            :func:`select_parameters`.
    """
    if not layers:
        raise ParameterError("need at least one layer")
    worst_terms = max(terms for terms, _ in layers)
    worst_taps = max(taps for _, taps in layers)
    return select_parameters(
        n=n,
        in_bits=in_bits,
        w_bits=w_bits,
        accumulation_terms=worst_terms,
        kernel_taps=worst_taps,
        security_bits=security_bits,
    )
