"""Analytic BFV noise-growth estimates (kernel-level robustness bounds).

Section III-A of the paper: decryption remains correct as long as total
noise (encryption noise + computation noise from the approximate FFT)
stays below ``q / (2t)``.  These estimates let experiments budget how much
FFT error is tolerable *before* running the cryptography.
"""

from __future__ import annotations

import math

import numpy as np

from repro.he.params import BfvParameters


class NoiseBudgetError(RuntimeError):
    """Predicted or observed noise growth exceeds the ``q/(2t)`` ceiling."""


def fresh_noise_bound(params: BfvParameters, symmetric: bool = False) -> float:
    """High-probability infinity-norm bound on fresh encryption noise.

    Public-key BFV noise is ``e*u + e1 + s*e2`` (ternary u, s); a standard
    central-limit bound gives ``sigma * tail * sqrt(2n * 2/3 + 1)`` per
    component and roughly twice that for the public-key path.
    """
    sigma = params.error_std
    tail = 6.0
    per_product = sigma * math.sqrt(params.n * 2.0 / 3.0)
    if symmetric:
        return tail * sigma + 0.0 * per_product + tail * per_product * 0
    return tail * math.sqrt(2 * per_product**2 + sigma**2)


def plain_mult_noise_factor(weights) -> int:
    """Worst-case noise growth factor of a plaintext multiply: ``||w||_1``."""
    w = np.asarray(weights)
    return int(np.abs(w.astype(np.int64)).sum())


def accumulation_noise_factor(num_terms: int) -> int:
    """Noise growth of homomorphically summing ``num_terms`` ciphertexts."""
    if num_terms < 1:
        raise ValueError("need at least one term")
    return num_terms


def predicted_budget_after_hconv(
    params: BfvParameters, weights, num_accumulated: int = 1
) -> float:
    """Predicted noise budget (bits) after one plaintext-multiply-accumulate.

    Args:
        params: BFV parameters.
        weights: one encoded weight polynomial (worst case over channels).
        num_accumulated: ciphertext partial sums added together (tiling).

    Returns:
        estimated remaining bits before the ``q/(2t)`` ceiling; negative
        means predicted decryption failure.
    """
    noise = (
        fresh_noise_bound(params)
        * plain_mult_noise_factor(weights)
        * accumulation_noise_factor(num_accumulated)
    )
    return math.log2(params.noise_ceiling) - math.log2(max(noise, 1.0))


def conv_budget_margin_bits(
    params: BfvParameters, weights, num_accumulated: int = 1
) -> float:
    """Worst-case predicted noise margin (bits) of one conv/linear layer.

    Takes the full weight tensor and bounds the plaintext-multiply growth
    by the largest per-output-channel ``||w||_1`` (each output channel's
    encoded weight polynomial carries exactly that channel's taps), so one
    call budgets a whole layer without encoding it first.

    Args:
        params: BFV parameters.
        weights: ``M x ...`` integer weight tensor (axis 0 = out channels).
        num_accumulated: upper bound on ciphertext partial sums added per
            output (channel tiling); conservative overestimates are safe.

    Returns:
        remaining bits before the ``q/(2t)`` ceiling; values at or below
        zero predict decryption failure.
    """
    w = np.abs(np.asarray(weights, dtype=np.int64))
    per_channel = w.reshape(w.shape[0], -1).sum(axis=1) if w.ndim > 1 else w
    worst = int(per_channel.max()) if per_channel.size else 1
    noise = (
        fresh_noise_bound(params)
        * max(worst, 1)
        * accumulation_noise_factor(max(num_accumulated, 1))
    )
    return math.log2(params.noise_ceiling) - math.log2(max(noise, 1.0))


def fft_error_tolerance(params: BfvParameters, margin_bits: float = 2.0) -> float:
    """Largest per-coefficient FFT rounding error the kernel level absorbs.

    The approximate FFT adds its computation error directly to the
    decryption phase, so any error below ``q/(2t)`` (minus the part of the
    budget already spent on encryption noise and a safety margin) cannot
    change the decrypted message.
    """
    ceiling = float(params.noise_ceiling)
    spent = fresh_noise_bound(params)
    return max((ceiling - spent) / 2.0**margin_bits, 0.0)
