"""High-level sharded execution API over the supervised worker pool.

:class:`ClusterExecutor` turns one batched runtime call into a list of
framed jobs (contiguous batch shards), runs them through the
:class:`~repro.cluster.supervisor.ClusterSupervisor` scheduling loop, and
reassembles results in input order.  Shard boundaries depend only on the
*configured* pool width, never on current pool health, so the work a
caller observes is byte-identical whether every worker lived, half the
pool was SIGKILLed, or the whole batch ran on the serial fallback.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import trace as obs_trace

from repro.cluster.jobs import (
    MSG_JOB_CONV,
    MSG_JOB_MUL,
    WireBasisParams,
    conv_job_payload,
    mul_job_payload,
)
from repro.cluster.supervisor import (
    ClusterFaultInjector,
    ClusterPolicy,
    ClusterSupervisor,
)

_JOB_STAT_KEYS = (
    "products",
    "weight_transforms",
    "weight_mults_realized",
    "weight_mults_dense",
    "weight_mults_model",
)


def _split_indices(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard bounds (at most ``shards``)."""
    shards = max(1, min(shards, total))
    size = -(-total // shards)
    return [(i, min(i + size, total)) for i in range(0, total, size)]


class ClusterExecutor:
    """Shard batched conv / ``multiply_many`` work across worker processes.

    Like the thread-pool engines, the executor object is confined to the
    submitting thread; the worker processes share nothing with it but the
    job pipes.

    Args:
        policy: :class:`ClusterPolicy` (pool width, deadlines, budgets).
        fault_injector: optional :class:`ClusterFaultInjector` for chaos
            campaigns and recovery tests.
        seed: PRNG seed for the supervisor's virtual requeue backoff.
    """

    def __init__(
        self,
        policy: Optional[ClusterPolicy] = None,
        fault_injector: Optional[ClusterFaultInjector] = None,
        seed: int = 0,
    ):
        self.supervisor = ClusterSupervisor(
            policy=policy, fault_injector=fault_injector, seed=seed
        )
        #: per-call supervision counters (delta of the last run), the dict
        #: that flows into ``RuntimeStats.cluster`` / ``bench-runtime --json``.
        self.last_cluster: Dict[str, float] = {}
        #: per-call sums of the worker-side job stats of the last run.
        self.last_job_stats: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ClusterExecutor":
        self.supervisor.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.supervisor.close()

    @property
    def policy(self) -> ClusterPolicy:
        return self.supervisor.policy

    @property
    def stats(self):
        return self.supervisor.stats

    # -- internals -------------------------------------------------------

    def _run(self, kind: str, payloads: List[Dict[str, Any]]) -> List[dict]:
        before = self.supervisor.stats.to_dict()
        replies = self.supervisor.run_jobs(kind, payloads)
        self.last_cluster = self.supervisor.stats.snapshot_delta(before)
        totals = {key: 0 for key in _JOB_STAT_KEYS}
        for reply in replies:
            for key in _JOB_STAT_KEYS:
                totals[key] += int(reply.get("stats", {}).get(key, 0))
        self.last_job_stats = totals
        return replies

    # -- sharded entry points --------------------------------------------

    @staticmethod
    def _stamp_deadline(
        payloads: List[Dict[str, Any]], deadline_s: Optional[float]
    ) -> List[Dict[str, Any]]:
        """Attach the request SLO budget to every job envelope.

        The supervisor arms each dispatched job's hang deadline with
        ``min(heartbeat_timeout, deadline_ms)``; workers strip the key
        before execution, so results stay byte-identical with or without
        a deadline.
        """
        if deadline_s is not None:
            for payload in payloads:
                payload["deadline_ms"] = max(1.0, float(deadline_s) * 1e3)
        return payloads

    @staticmethod
    def _stamp_trace(
        payloads: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Attach the caller's trace context to every job envelope.

        Same discipline as ``deadline_ms``: workers strip the key before
        execution, run the job under a span parented to it, and ship the
        recorded spans back *beside* the result data, so traced results
        stay byte-identical to untraced runs.  No-op when tracing is off
        or no span is active.
        """
        return obs_trace.stamp_trace_context(payloads)

    def conv2d_batch(
        self,
        mode: str,
        weight_config,
        xs: np.ndarray,
        w: np.ndarray,
        shape,
        n: int,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Batched clear-domain convolution, sharded along the batch axis.

        Bit-identical to one unsharded
        :meth:`repro.runtime.engine.BatchedHConvEngine.conv2d_batch` call:
        batch items are independent, and the exact NTT path yields the
        same residues for any admissible per-shard modulus choice.

        Args:
            deadline_s: optional remaining request budget; propagated as
                a per-job ``deadline_ms`` so the supervisor declares
                hung workers within the request SLO.
        """
        xs = np.ascontiguousarray(xs, dtype=np.int64)
        payloads = self._stamp_deadline(
            [
                conv_job_payload(mode, weight_config, n, shape, xs[lo:hi], w)
                for lo, hi in _split_indices(len(xs), self.policy.workers)
            ],
            deadline_s,
        )
        replies = self._run(MSG_JOB_CONV, self._stamp_trace(payloads))
        return np.concatenate([reply["out"] for reply in replies])

    def multiply_many(
        self,
        backend: str,
        weight_config,
        pattern,
        polys: List,
        weights_list: List[np.ndarray],
        deadline_s: Optional[float] = None,
    ) -> List:
        """Sharded plaintext products over serialized ring polynomials.

        Every polynomial crosses the process boundary in the
        :mod:`repro.protocol.wire` format (validated by
        ``deserialize_poly`` on the worker, re-validated on the reply), so
        the cluster path exercises exactly the wire checks the protocol
        transport relies on.
        """
        from repro.protocol.wire import deserialize_poly, serialize_poly

        if len(polys) != len(weights_list):
            raise ValueError("polys and weights_list must have equal length")
        if not polys:
            return []
        basis = polys[0].basis
        blobs = [serialize_poly(p) for p in polys]
        out_blobs = self.multiply_many_blobs(
            backend, weight_config, pattern, basis, blobs, weights_list,
            deadline_s=deadline_s,
        )
        params = WireBasisParams(basis)
        outs = []
        for blob in out_blobs:
            poly, _ = deserialize_poly(blob, params)
            outs.append(poly)
        return outs

    def multiply_many_blobs(
        self,
        backend: str,
        weight_config,
        pattern,
        basis,
        blobs: List[bytes],
        weights_list: List[np.ndarray],
        deadline_s: Optional[float] = None,
    ) -> List[bytes]:
        """:meth:`multiply_many` over already-serialized polynomials.

        The serving layer receives polynomials as wire blobs and returns
        them as wire blobs; this entry point avoids a pointless
        deserialize/re-serialize round-trip at the coalescer.  Outputs
        are the workers' serialized result polynomials, in input order.
        """
        if len(blobs) != len(weights_list):
            raise ValueError("blobs and weights_list must have equal length")
        if not blobs:
            return []
        payloads = self._stamp_deadline(
            [
                mul_job_payload(
                    backend, weight_config, pattern, basis,
                    blobs[lo:hi], weights_list[lo:hi],
                )
                for lo, hi in _split_indices(len(blobs), self.policy.workers)
            ],
            deadline_s,
        )
        replies = self._run(MSG_JOB_MUL, self._stamp_trace(payloads))
        outs: List[bytes] = []
        for reply in replies:
            outs.extend(reply["polys"])
        return outs


def make_executor(
    workers: int = 2,
    heartbeat_timeout: float = 30.0,
    max_respawns: int = 8,
    min_workers: int = 1,
    fault_injector: Optional[ClusterFaultInjector] = None,
    seed: int = 0,
) -> ClusterExecutor:
    """Convenience constructor used by the engine/CLI wiring."""
    policy = ClusterPolicy(
        workers=workers,
        heartbeat_timeout=heartbeat_timeout,
        max_respawns=max_respawns,
        min_workers=min_workers,
    )
    return ClusterExecutor(
        policy=policy, fault_injector=fault_injector, seed=seed
    )
