"""Worker-process side of the cluster executor.

:func:`worker_main` is the process entry point: a loop that receives
CRC32-framed job envelopes over its pipe, executes them against a
per-process :class:`WorkerState` (cached engines/backends with their own
integrity-checked plan caches) and replies with framed results.

Every reply carries a cumulative snapshot of the worker's local fault
counters -- wire decode errors from :func:`repro.protocol.wire
.deserialize_poly` and plan-cache integrity evictions -- so the
supervisor folds them into its :class:`~repro.cluster.supervisor
.ClusterStats` incrementally.  A worker that dies (SIGKILL, OOM) loses at
most the counters accumulated since its last reply, not its whole
history.

:func:`execute_job` is deliberately a pure module-level function shared
with the supervisor's in-process serial fallback: the degraded path runs
*exactly* the code a worker would have run, which is what makes the
fallback a bit-identical oracle rather than a second implementation.
"""

from __future__ import annotations

import time
from typing import Any, Dict

import numpy as np

from repro.cluster.jobs import (
    MSG_ERROR,
    MSG_JOB_CONV,
    MSG_JOB_MUL,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TAMPER,
    MSG_WARMUP,
    WireBasisParams,
    WireDecodeError,
    basis_from_wire,
    config_from_wire,
    decode_message,
    encode_message,
    shape_from_wire,
)
from repro.faults.channel import ChecksumError
from repro.obs import trace as obs_trace


class WorkerState:
    """Per-process execution state: cached engines, backends, counters."""

    def __init__(self):
        self._engines: Dict[tuple, Any] = {}
        self._backends: Dict[tuple, Any] = {}
        self.jobs_done = 0
        self.wire_errors = 0

    # -- lazily built execution objects ---------------------------------

    def engine(self, mode: str, config_wire):
        key = ("engine", mode, config_wire)
        if key not in self._engines:
            from repro.runtime.engine import BatchedHConvEngine

            self._engines[key] = BatchedHConvEngine(
                mode=mode,
                weight_config=config_from_wire(config_wire),
                max_workers=None,
            )
        return self._engines[key]

    def backend(self, kind: str, config_wire, pattern):
        key = ("backend", kind, config_wire,
               None if pattern is None else tuple(pattern))
        if key not in self._backends:
            from repro.runtime.engine import (
                BatchedFftBackend,
                BatchedNttBackend,
                SparseBatchedFftBackend,
            )

            if kind == "ntt":
                backend = BatchedNttBackend(max_workers=None)
            elif kind == "flash":
                backend = BatchedFftBackend(
                    weight_config=config_from_wire(config_wire),
                    max_workers=None,
                )
            elif kind == "sparse":
                backend = SparseBatchedFftBackend(
                    weight_config=config_from_wire(config_wire),
                    pattern=pattern,
                    max_workers=None,
                )
            else:
                raise ValueError(f"unknown backend kind {kind!r}")
            self._backends[key] = backend
        return self._backends[key]

    # -- fault counters ---------------------------------------------------

    def _caches(self):
        for engine in self._engines.values():
            yield engine.plan_cache
        for backend in self._backends.values():
            for attr in ("plan_cache", "_spectrum_cache", "_pipelines"):
                cache = getattr(backend, attr, None)
                if cache is not None and hasattr(cache, "stats"):
                    yield cache

    def cache_corruptions(self) -> int:
        """Total integrity evictions across every cache this process owns."""
        return sum(cache.stats().get("corruptions", 0) for cache in self._caches())

    def counters(self) -> Dict[str, int]:
        """Cumulative per-process counter snapshot (attached to replies)."""
        return {
            "jobs": self.jobs_done,
            "wire_errors": self.wire_errors,
            "cache_corruptions": self.cache_corruptions(),
        }

    def tamper_one_cache_entry(self) -> int:
        """Chaos/test hook: flip bytes inside cached arrays in place.

        Returns how many entries were mutated.  The next integrity-checked
        lookup of each mutated entry must detect the damage, evict it and
        recompute -- which the campaign verifies by bit-comparing results.
        """
        tampered = 0
        for cache in self._caches():
            if not getattr(cache, "check_integrity", False):
                continue
            for key in cache.keys():
                value = cache.get(key)
                arrays = []
                if isinstance(value, np.ndarray):
                    arrays.append(value)
                values = getattr(value, "values", None)
                if isinstance(values, np.ndarray):
                    arrays.append(values)
                for arr in arrays:
                    if arr.size:
                        flat = arr.view(np.uint8).reshape(-1)
                        flat[0] ^= 0xFF
                        tampered += 1
                        break
                if arrays:
                    break
        return tampered


# ---------------------------------------------------------------------------
# Job execution (shared with the supervisor's serial fallback)
# ---------------------------------------------------------------------------


def execute_job(kind: str, payload: Dict[str, Any], state: WorkerState) -> dict:
    """Execute one job payload; returns the reply payload.

    Raises:
        WireDecodeError: a serialized polynomial in the payload failed
            :func:`~repro.protocol.wire.deserialize_poly` validation.
        Exception: any real execution bug propagates (the supervisor
            retries, then reproduces it loudly on the serial path).
    """
    if kind == MSG_JOB_CONV:
        return _execute_conv(payload, state)
    if kind == MSG_JOB_MUL:
        return _execute_mul(payload, state)
    raise ValueError(f"unknown job kind {kind!r}")


def _execute_conv(payload: Dict[str, Any], state: WorkerState) -> dict:
    engine = state.engine(payload["mode"], payload["config"])
    shape = shape_from_wire(payload["shape"])
    out = engine.conv2d_batch(payload["x"], payload["w"], shape, payload["n"])
    stats = engine.last_stats
    state.jobs_done += 1
    return {
        "out": out,
        "stats": {
            "products": stats.products,
            "weight_transforms": stats.weight_transforms,
            "weight_mults_realized": stats.weight_mults_realized,
            "weight_mults_dense": stats.weight_mults_dense,
            "weight_mults_model": stats.weight_mults_model,
        },
    }


def _execute_mul(payload: Dict[str, Any], state: WorkerState) -> dict:
    from repro.protocol.wire import deserialize_poly, serialize_poly

    basis = basis_from_wire(payload["basis"])
    params = WireBasisParams(basis)
    polys = []
    for i, blob in enumerate(payload["polys"]):
        try:
            poly, _ = deserialize_poly(blob, params)
        except ValueError as exc:
            state.wire_errors += 1
            raise WireDecodeError(
                f"job polynomial {i} failed wire validation: {exc}"
            ) from exc
        polys.append(poly)
    backend = state.backend(
        payload["backend"], payload["config"], payload["pattern"]
    )
    outs = backend.multiply_many(polys, payload["weights"])
    stats = backend.last_stats
    state.jobs_done += 1
    return {
        "polys": [serialize_poly(p) for p in outs],
        "stats": {
            "products": stats.products,
            "weight_transforms": stats.weight_transforms,
            "weight_mults_realized": stats.weight_mults_realized,
            "weight_mults_dense": stats.weight_mults_dense,
            "weight_mults_model": stats.weight_mults_model,
        },
    }


# ---------------------------------------------------------------------------
# Process entry point
# ---------------------------------------------------------------------------


def worker_main(conn, slot: int, incarnation: int) -> None:
    """Receive-execute-reply loop of one cluster worker process.

    Args:
        conn: the worker end of the supervisor's duplex pipe.
        slot: pool slot index (stable across respawns; for diagnostics).
        incarnation: how many processes have occupied this slot before.
    """
    # A forked child may inherit the parent's tracer with its lock held
    # by another thread; rebind a fresh one before anything can touch it.
    obs_trace.reset_for_fork()
    state = WorkerState()
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        try:
            kind, job_id, payload = decode_message(data)
        except (ChecksumError, ValueError) as exc:
            # The job frame itself was damaged in transit: report the wire
            # fault loudly so the supervisor requeues; never guess.
            state.wire_errors += 1
            _safe_send(conn, encode_message(MSG_ERROR, 0, {
                "error": str(exc), "fault": "wire", "counters": state.counters(),
            }))
            continue
        if kind == MSG_SHUTDOWN:
            break
        if kind == MSG_PING:
            _safe_send(conn, encode_message(MSG_PONG, job_id, {
                "slot": slot, "incarnation": incarnation,
                "counters": state.counters(),
            }))
            continue
        if kind == MSG_TAMPER:
            tampered = state.tamper_one_cache_entry()
            _safe_send(conn, encode_message(MSG_RESULT, job_id, {
                "data": {"tampered": tampered}, "counters": state.counters(),
            }))
            continue

        # Injected-fault decorations (chaos campaigns / recovery tests)
        # and supervisor-side scheduling metadata: all are envelope-level
        # keys the execution code must never see.
        hang_s = 0.0
        duplicate = False
        trace_ctx = None
        if isinstance(payload, dict):
            hang_s = float(payload.pop("_inject_hang_s", 0.0))
            duplicate = bool(payload.pop("_inject_duplicate", False))
            payload.pop("deadline_ms", None)  # armed supervisor-side
            trace_ctx = obs_trace.pop_trace_context(payload)
        if hang_s > 0.0:
            time.sleep(hang_s)  # simulated hang: the supervisor's deadline fires

        spans = None
        try:
            if kind == MSG_WARMUP:
                execute_job(payload["job_kind"], payload["job"], state)
                reply = {"warmed": True}
            elif trace_ctx is not None:
                reply, spans = _traced_execute(
                    kind, payload, state, trace_ctx, slot
                )
            else:
                reply = execute_job(kind, payload, state)
        except WireDecodeError as exc:
            _safe_send(conn, encode_message(MSG_ERROR, job_id, {
                "error": str(exc), "fault": "wire", "counters": state.counters(),
            }))
            continue
        except Exception as exc:  # noqa: BLE001 - reported, never swallowed
            _safe_send(conn, encode_message(MSG_ERROR, job_id, {
                "error": f"{type(exc).__name__}: {exc}", "fault": "exec",
                "counters": state.counters(),
            }))
            continue
        envelope = {"data": reply, "counters": state.counters()}
        if spans:
            # Spans travel beside -- never inside -- the result data, so
            # traced results stay byte-identical to untraced runs.
            envelope["spans"] = spans
        message = encode_message(MSG_RESULT, job_id, envelope)
        _safe_send(conn, message)
        if duplicate:
            _safe_send(conn, message)  # exercises exactly-once discard
    conn.close()


def _traced_execute(kind, payload, state, trace_ctx, slot):
    """Run one job under a ``cluster.job`` span parented to the caller.

    The worker-local tracer is enabled only for the duration of the job;
    its buffer is drained into the reply so the supervisor can stitch
    the worker's spans (engine stage timers included, via the per-thread
    span stack) into the request's trace.
    """
    tracer = obs_trace.tracer
    was_enabled = tracer.enabled
    if not was_enabled:
        tracer.enable(capacity=512)
        tracer.clear()
    try:
        with tracer.span("cluster.job", parent=trace_ctx, kind=kind,
                         slot=slot):
            reply = execute_job(kind, payload, state)
    finally:
        spans = tracer.drain()
        if not was_enabled:
            tracer.disable()
    return reply, spans


def _safe_send(conn, data: bytes) -> bool:
    try:
        conn.send_bytes(data)
        return True
    except (BrokenPipeError, OSError):
        return False
