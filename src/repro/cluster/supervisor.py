"""Supervised multi-process worker pool with crash recovery.

The supervisor owns N worker processes, each reached through its own
duplex pipe carrying CRC32-framed envelopes (:mod:`repro.cluster.jobs`).
Scheduling is a single-threaded event loop:

1. **dispatch** -- idle workers receive the next queued job; every
   dispatch arms a per-job deadline.
2. **collect** -- ``multiprocessing.connection.wait`` blocks until a
   reply arrives or the earliest deadline expires.  Results are applied
   *exactly once* by job id: a late reply for a job that was requeued
   (or a worker's duplicated send) is counted and discarded.
3. **recover** -- a worker that died (EOF/SIGKILL) or blew its deadline
   (hang) is killed and replaced, its plan caches re-warmed by replaying
   one recorded job per execution context, and its in-flight job is
   requeued through the :class:`repro.faults.session.RetryPolicy`
   bounded-retry machinery (virtual backoff, dead letters).
4. **degrade** -- when the respawn budget runs out and the pool shrinks
   below ``min_workers``, or a job exhausts its attempts, the remaining
   work runs on the in-process serial path (the same
   :func:`repro.cluster.worker.execute_job` code), so the caller always
   gets the deterministic answer -- a cluster fault may cost time, never
   correctness.

Worker death is detected before the drain of its pipe, and the drain runs
first: a job whose result was written just before the SIGKILL landed is
applied from the pipe buffer and **not** requeued.
"""

from __future__ import annotations

import os
import random
import signal
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Optional

from repro.obs import trace as obs_trace

from repro.cluster.jobs import (
    MSG_ERROR,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TAMPER,
    MSG_WARMUP,
    decode_message,
    encode_message,
    warmup_key,
    warmup_payload,
)
from repro.cluster.worker import WorkerState, execute_job, worker_main
from repro.faults.channel import ChecksumError, DeadLetter, TransportError
from repro.faults.session import RetryPolicy


class ClusterError(RuntimeError):
    """The cluster (including its serial fallback) could not finish a job."""


@dataclass(frozen=True)
class ClusterPolicy:
    """Supervision and degradation parameters of one worker pool.

    Args:
        workers: initial pool width.
        heartbeat_timeout: seconds a dispatched job may run before its
            worker is declared hung (also bounds liveness probes and
            warmup replays).
        max_respawns: total replacement budget of the pool; once spent,
            further failures shrink the pool instead.
        min_workers: below this pool width the supervisor stops
            scheduling and runs the remaining jobs serially in-process.
        retry: per-job bounded-retry parameters, reusing the
            :class:`repro.faults.session.RetryPolicy` machinery --
            ``max_attempts`` caps dispatches per job and ``backoff`` is
            accounted (virtually) per requeue.
        start_method: ``multiprocessing`` start method (``"fork"`` is the
            fast Linux default; ``"spawn"`` works everywhere).
    """

    workers: int = 2
    heartbeat_timeout: float = 30.0
    max_respawns: int = 8
    min_workers: int = 1
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3, timeout=30.0)
    )
    start_method: str = "fork"

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if not 1 <= self.min_workers <= self.workers:
            raise ValueError("need 1 <= min_workers <= workers")


@dataclass
class ClusterStats:
    """Cumulative supervision accounting (one pool lifetime).

    ``wire_errors`` and ``cache_corruptions`` aggregate the *worker-side*
    counters shipped with every reply, so per-process fault detections
    survive the death of the process that detected them.
    """

    workers: int = 0
    jobs: int = 0
    dispatches: int = 0
    worker_deaths: int = 0
    hang_timeouts: int = 0
    respawns: int = 0
    pool_shrinks: int = 0
    warmup_replays: int = 0
    jobs_requeued: int = 0
    duplicate_results: int = 0
    dead_letters: int = 0
    serial_fallback_jobs: int = 0
    wire_errors: int = 0
    cache_corruptions: int = 0
    backoff_seconds: float = 0.0
    dead_letter_log: List[DeadLetter] = field(default_factory=list)

    @property
    def recoveries(self) -> int:
        """Total recovery events (the bench/chaos headline number)."""
        return (
            self.worker_deaths + self.hang_timeouts + self.jobs_requeued
            + self.serial_fallback_jobs
        )

    def to_dict(self) -> Dict[str, float]:
        out = {
            name: getattr(self, name)
            for name in (
                "workers", "jobs", "dispatches", "worker_deaths",
                "hang_timeouts", "respawns", "pool_shrinks",
                "warmup_replays", "jobs_requeued", "duplicate_results",
                "dead_letters", "serial_fallback_jobs", "wire_errors",
                "cache_corruptions", "backoff_seconds",
            )
        }
        out["recoveries"] = self.recoveries
        return out

    def snapshot_delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """Per-call view: counters accumulated since ``before``.

        ``workers`` is a gauge (current pool width), not a counter, and is
        reported as-is.
        """
        now = self.to_dict()
        return {
            k: v if k == "workers" else type(v)(v - before.get(k, 0))
            for k, v in now.items()
        }


class ClusterFaultInjector:
    """Seeded worker-level fault injection for chaos campaigns and tests.

    Rate-based decisions draw from one PRNG stream per dispatch, so a
    campaign replays bit-identically under a fixed seed.  Explicit job-id
    sets override the rates for deterministic unit tests.

    Args:
        kill_rate: probability the worker is SIGKILLed immediately
            before its dispatch frame is written (the worker dies blocked
            in ``recv`` with the job in flight, never executing it).
        hang_rate: probability the worker sleeps past the supervisor's
            deadline before executing (exercises hang detection; the
            late result then exercises duplicate discard).
        corrupt_rate: probability the outgoing job frame has one byte
            flipped (the worker's CRC check must catch it).
        duplicate_rate: probability the worker sends its result twice.
        seed: PRNG seed.
        kill_before_jobs: explicit job indices whose dispatch is preceded
            by a SIGKILL (deterministic in-flight death).
        kill_after_jobs: explicit job indices whose *result receipt* is
            followed by a SIGKILL (a completed job must not be reapplied
            or requeued).
        hang_jobs: explicit job indices executed after an injected sleep.
    """

    def __init__(
        self,
        kill_rate: float = 0.0,
        hang_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        kill_before_jobs=None,
        kill_after_jobs=None,
        hang_jobs=None,
    ):
        for name, rate in (
            ("kill_rate", kill_rate), ("hang_rate", hang_rate),
            ("corrupt_rate", corrupt_rate), ("duplicate_rate", duplicate_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.kill_rate = kill_rate
        self.hang_rate = hang_rate
        self.corrupt_rate = corrupt_rate
        self.duplicate_rate = duplicate_rate
        self._rng = random.Random(seed)
        self.kill_before_jobs = set(kill_before_jobs or ())
        self.kill_after_jobs = set(kill_after_jobs or ())
        self.hang_jobs = set(hang_jobs or ())
        self.injected: Dict[str, int] = {
            "kills": 0, "kills_after": 0, "hangs": 0,
            "corruptions": 0, "duplicates": 0,
        }

    def plan_dispatch(self, job_index: int, attempt: int) -> Dict[str, Any]:
        """Fault plan for one dispatch (first attempts only: a retried job
        runs clean, so bounded budgets always make progress)."""
        plan = {"kill": False, "hang": False, "corrupt": False,
                "duplicate": False}
        if job_index in self.kill_before_jobs and attempt == 1:
            plan["kill"] = True
        if job_index in self.hang_jobs and attempt == 1:
            plan["hang"] = True
        if attempt == 1:
            if self.kill_rate and self._rng.random() < self.kill_rate:
                plan["kill"] = True
            if self.hang_rate and self._rng.random() < self.hang_rate:
                plan["hang"] = True
            if self.corrupt_rate and self._rng.random() < self.corrupt_rate:
                plan["corrupt"] = True
            if self.duplicate_rate and self._rng.random() < self.duplicate_rate:
                plan["duplicate"] = True
        if plan["kill"]:
            self.injected["kills"] += 1
        if plan["hang"]:
            self.injected["hangs"] += 1
        if plan["corrupt"]:
            self.injected["corruptions"] += 1
        if plan["duplicate"]:
            self.injected["duplicates"] += 1
        return plan

    def kill_after(self, job_index: int) -> bool:
        if job_index in self.kill_after_jobs:
            self.kill_after_jobs.discard(job_index)
            self.injected["kills_after"] += 1
            return True
        return False


class _WorkerHandle:
    """One pool slot: process + pipe + in-flight bookkeeping."""

    def __init__(self, slot: int, incarnation: int, process, conn):
        self.slot = slot
        self.incarnation = incarnation
        self.process = process
        self.conn = conn
        self.busy_job: Optional[int] = None  # job index, None when idle
        self.busy_id: Optional[int] = None   # envelope job id of busy_job
        self.busy_ctx = None                 # trace context of busy_job
        self.busy_since: float = 0.0         # dispatch time of busy_job
        self.deadline: float = float("inf")
        self.counters_seen: Dict[str, int] = {}

    @property
    def idle(self) -> bool:
        return self.busy_job is None

    def clear(self) -> None:
        self.busy_job = None
        self.busy_id = None
        self.busy_ctx = None
        self.busy_since = 0.0
        self.deadline = float("inf")


class ClusterSupervisor:
    """Self-healing worker pool executing framed jobs with exactly-once
    result application and a deterministic serial fallback.

    The supervisor is confined to the thread that calls it (no internal
    threads, no locks); workers are separate *processes* whose only shared
    state is the job pipes.

    Args:
        policy: supervision parameters (pool width, deadlines, budgets).
        fault_injector: optional :class:`ClusterFaultInjector`.
        seed: PRNG seed for the virtual requeue backoff.
    """

    def __init__(
        self,
        policy: Optional[ClusterPolicy] = None,
        fault_injector: Optional[ClusterFaultInjector] = None,
        seed: int = 0,
    ):
        self.policy = policy if policy is not None else ClusterPolicy()
        self.fault_injector = fault_injector
        self.stats = ClusterStats()
        self._ctx = get_context(self.policy.start_method)
        self._pool: List[_WorkerHandle] = []
        self._incarnations = 0
        self._call_seq = 0
        self._warmups: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._serial_state = WorkerState()
        self._rng = random.Random(seed)
        self._started = False
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Spawn the initial pool (idempotent)."""
        if self._started or self._closed:
            return
        self._started = True
        for slot in range(self.policy.workers):
            handle = self._spawn(slot, replay_warmups=False)
            if handle is not None:
                self._pool.append(handle)
        self.stats.workers = len(self._pool)

    def close(self) -> None:
        """Shut workers down gracefully, then forcefully."""
        if self._closed:
            return
        self._closed = True
        for w in self._pool:
            try:
                w.conn.send_bytes(encode_message(MSG_SHUTDOWN, 0, None))
            except (BrokenPipeError, OSError):
                pass
        for w in self._pool:
            w.process.join(timeout=1.0)
            if w.process.is_alive():
                w.process.kill()
                w.process.join(timeout=1.0)
            w.conn.close()
        self._pool.clear()

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    # -- spawning / probing ----------------------------------------------

    def _spawn(self, slot: int, replay_warmups: bool = True):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._incarnations += 1
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, slot, self._incarnations),
            daemon=True,
            name=f"repro-cluster-w{slot}.{self._incarnations}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(slot, self._incarnations, process, parent_conn)
        if replay_warmups and self._warmups:
            for kind, payload in list(self._warmups.values()):
                if not self._sync_request(
                    handle, MSG_WARMUP, warmup_payload(kind, payload)
                ):
                    self._dispose(handle)
                    return None
                self.stats.warmup_replays += 1
        return handle

    def _dispose(self, handle: _WorkerHandle) -> None:
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=1.0)
        handle.conn.close()

    def _sync_request(self, handle: _WorkerHandle, kind: str, payload) -> bool:
        """One blocking request/reply on an idle worker (ping, warmup)."""
        try:
            handle.conn.send_bytes(encode_message(kind, 0, payload))
        except (BrokenPipeError, OSError):
            return False
        deadline = time.monotonic() + self.policy.heartbeat_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                if not handle.conn.poll(remaining):
                    return False
                data = handle.conn.recv_bytes()
            except (EOFError, OSError):
                return False
            try:
                rkind, rjob_id, rpayload = decode_message(data)
            except (ChecksumError, ValueError):
                return False
            if isinstance(rpayload, dict) and "counters" in rpayload:
                self._fold_counters(handle, rpayload["counters"])
            if rkind == MSG_RESULT and rjob_id != 0:
                # A stale job result still buffered from an earlier batch
                # (e.g. a worker's duplicated send): count the discard and
                # keep waiting for the actual reply.
                self.stats.duplicate_results += 1
                continue
            if rkind in (MSG_PONG, MSG_RESULT):
                return True
            if rkind == MSG_ERROR:
                return False

    def probe(self) -> int:
        """Heartbeat every idle worker; replace the unresponsive.

        Returns the number of workers replaced (or dropped when the
        respawn budget is spent).  Called at the top of every job batch so
        a worker that died between calls never receives work.
        """
        replaced = 0
        for i, handle in enumerate(list(self._pool)):
            alive = handle.process.is_alive() and self._sync_request(
                handle, MSG_PING, None
            )
            if alive:
                continue
            self.stats.worker_deaths += 1
            replaced += 1
            self._dispose(handle)
            replacement = self._respawn(handle.slot)
            if replacement is None:
                self._pool.remove(handle)
            else:
                self._pool[self._pool.index(handle)] = replacement
        self.stats.workers = len(self._pool)
        return replaced

    def _respawn(self, slot: int) -> Optional[_WorkerHandle]:
        """Replacement worker for ``slot`` (or ``None``: pool shrinks)."""
        while self.stats.respawns < self.policy.max_respawns:
            self.stats.respawns += 1
            handle = self._spawn(slot)
            if handle is not None:
                return handle
            # The replacement itself failed warmup; charge the budget and
            # try again -- a crash loop must exhaust the budget, not spin.
            self.stats.worker_deaths += 1
        self.stats.pool_shrinks += 1
        return None

    # -- warmup recording -------------------------------------------------

    def record_warmup(self, kind: str, payload: Dict[str, Any]) -> None:
        """Keep one representative job per execution context for replay."""
        key = warmup_key(kind, payload)
        if key not in self._warmups:
            self._warmups[key] = (kind, payload)

    # -- chaos hook -------------------------------------------------------

    def tamper_worker_caches(self) -> int:
        """Ask every live worker to corrupt one cached entry in place.

        Chaos-campaign hook: subsequent jobs must detect the corruption
        (integrity digests), evict, recompute, and report the eviction in
        the worker counters that flow back into :class:`ClusterStats`.
        """
        tampered = 0
        for handle in self._pool:
            if handle.idle and self._sync_request(handle, MSG_TAMPER, None):
                tampered += 1
        return tampered

    # -- the scheduling loop ----------------------------------------------

    def run_jobs(
        self,
        kind: str,
        payloads: List[Dict[str, Any]],
        serial_fn: Optional[Callable[[Dict[str, Any]], dict]] = None,
    ) -> List[dict]:
        """Execute ``payloads`` across the pool; results in input order.

        Args:
            kind: job kind (``jobs.MSG_JOB_CONV`` / ``jobs.MSG_JOB_MUL``).
            serial_fn: in-process fallback; defaults to running
                :func:`repro.cluster.worker.execute_job` against the
                supervisor's own :class:`WorkerState`.

        Raises:
            ClusterError: a job failed even on the serial path (a real
                bug, reproduced loudly rather than masked as a fault).
        """
        if self._closed:
            raise ClusterError("supervisor is closed")
        self.start()
        if serial_fn is None:
            def serial_fn(payload):
                return execute_job(kind, payload, self._serial_state)
        if not payloads:
            return []
        self.probe()
        for payload in payloads:
            self.record_warmup(kind, payload)

        self._call_seq += 1
        base_id = self._call_seq << 20
        total = len(payloads)
        results: List[Optional[dict]] = [None] * total
        done = [False] * total
        attempts = [0] * total
        pending = deque(range(total))
        id_to_index = {}
        self.stats.jobs += total

        def run_serial(index: int) -> None:
            try:
                data = serial_fn(dict(payloads[index]))
            except Exception as exc:
                raise ClusterError(
                    f"job {index} failed on the serial fallback path: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if not done[index]:
                results[index] = {"data": data}
                done[index] = True
                self.stats.serial_fallback_jobs += 1

        def requeue_or_dead_letter(index: int) -> None:
            if done[index]:
                return
            if attempts[index] >= self.policy.retry.max_attempts:
                self.stats.dead_letters += 1
                self.stats.dead_letter_log.append(
                    DeadLetter(
                        seq=base_id + index,
                        payload_bytes=0,
                        attempts=attempts[index],
                        last_error="cluster job exhausted its retry budget",
                    )
                )
                run_serial(index)
            else:
                self.stats.jobs_requeued += 1
                self.stats.backoff_seconds += self.policy.retry.backoff(
                    attempts[index], self._rng
                )
                pending.append(index)

        def handle_reply(handle: _WorkerHandle, data: bytes) -> None:
            try:
                rkind, job_id, payload = decode_message(data)
            except (ChecksumError, ValueError):
                # A reply damaged on the pipe: treat like a worker fault --
                # the in-flight job retries, the pool member is recycled.
                self.stats.wire_errors += 1
                self._recover_worker(
                    handle, handle_reply, requeue_or_dead_letter
                )
                return
            if isinstance(payload, dict) and "counters" in payload:
                self._fold_counters(handle, payload["counters"])
            index = id_to_index.get(job_id)
            if rkind == MSG_RESULT:
                if index is None or done[index]:
                    self.stats.duplicate_results += 1
                else:
                    if isinstance(payload, dict) and "spans" in payload:
                        # Worker-side spans shipped beside the result
                        # data: stitch them into this process's trace.
                        obs_trace.tracer.ingest(payload.pop("spans"))
                    results[index] = payload
                    done[index] = True
                if handle.busy_id == job_id:
                    handle.clear()
                if (
                    self.fault_injector is not None
                    and index is not None
                    and self.fault_injector.kill_after(index)
                    and handle.process.is_alive()
                ):
                    os.kill(handle.process.pid, signal.SIGKILL)
            elif rkind == MSG_ERROR:
                if handle.busy_id == job_id or job_id == 0:
                    target = handle.busy_job
                    handle.clear()
                    if target is not None:
                        requeue_or_dead_letter(target)
            elif rkind == MSG_PONG:
                pass

        while not all(done):
            alive = [w for w in self._pool if w.process.is_alive()]
            if len(alive) < max(1, self.policy.min_workers):
                # Pool degraded below the floor: deterministic serial path
                # for everything still outstanding (queued or in flight).
                for index in range(total):
                    if not done[index]:
                        run_serial(index)
                break

            # Dispatch to idle workers.
            for handle in alive:
                if not pending:
                    break
                if not handle.idle:
                    continue
                index = pending.popleft()
                if done[index]:
                    continue
                attempts[index] += 1
                job_id = base_id + index
                id_to_index[job_id] = index
                payload = dict(payloads[index])
                plan = None
                if self.fault_injector is not None:
                    plan = self.fault_injector.plan_dispatch(
                        index, attempts[index]
                    )
                    if plan["hang"]:
                        payload["_inject_hang_s"] = (
                            3.0 * self.policy.heartbeat_timeout
                        )
                    if plan["duplicate"]:
                        payload["_inject_duplicate"] = True
                frame = encode_message(kind, job_id, payload)
                if plan is not None and plan["corrupt"]:
                    mutated = bytearray(frame)
                    mutated[len(mutated) // 2] ^= 0x40
                    frame = bytes(mutated)
                if plan is not None and plan["kill"]:
                    # Deliver the SIGKILL before the frame is written: the
                    # worker is blocked in recv and dies with the job in
                    # flight, never having executed it -- the death is
                    # observed in *this* batch regardless of scheduling.
                    # (Death after a completed result is the separate
                    # kill_after_jobs hook.)
                    os.kill(handle.process.pid, signal.SIGKILL)
                try:
                    handle.conn.send_bytes(frame)
                except (BrokenPipeError, OSError):
                    # The worker died between selection and dispatch, so
                    # busy_* was never set: mark the aborted job here --
                    # _recover_worker sees an idle handle and records
                    # nothing for it.
                    tracer = obs_trace.tracer
                    if tracer.enabled:
                        now = time.monotonic()
                        tracer.record_span(
                            "cluster.job",
                            start_s=now,
                            end_s=now,
                            parent=payload.get(obs_trace.TRACE_CTX_KEY),
                            status="truncated",
                            slot=handle.slot,
                            job_index=index,
                        )
                        tracer.event(
                            "cluster.worker_death",
                            parent=payload.get(obs_trace.TRACE_CTX_KEY),
                            incident=True,
                            slot=handle.slot,
                            incarnation=handle.incarnation,
                        )
                    self._recover_worker(
                        handle, handle_reply, requeue_or_dead_letter
                    )
                    requeue_or_dead_letter(index)
                    continue
                self.stats.dispatches += 1
                handle.busy_job = index
                handle.busy_id = job_id
                handle.busy_ctx = payload.get("_trace_ctx")
                handle.busy_since = time.monotonic()
                # Per-job deadline: a job carrying a request SLO budget
                # ("deadline_ms", set by the serving layer) arms a tighter
                # hang deadline than the pool-wide heartbeat, so a stuck
                # worker is declared hung within the request's budget
                # instead of the generic supervisor timeout.  Each retry
                # gets the same relative budget.
                budget = self.policy.heartbeat_timeout
                deadline_ms = payload.get("deadline_ms")
                if deadline_ms is not None:
                    budget = min(
                        budget, max(0.001, float(deadline_ms) / 1e3)
                    )
                handle.deadline = time.monotonic() + budget

            busy = [w for w in self._pool if not w.idle]
            if not busy:
                if pending or not all(done):
                    continue
                break

            # Collect: block until a reply lands or a deadline expires.
            next_deadline = min(w.deadline for w in busy)
            timeout = max(0.0, next_deadline - time.monotonic())
            ready = _wait_connections(
                [w.conn for w in busy], timeout=min(timeout, 1.0)
            )
            conn_map = {id(w.conn): w for w in busy}
            for conn in ready:
                handle = conn_map[id(conn)]
                self._drain(handle, handle_reply, requeue_or_dead_letter)

            # Deadline sweep: declare hangs, recycle the workers.
            now = time.monotonic()
            for handle in busy:
                if handle.idle or now <= handle.deadline:
                    continue
                # One last non-blocking drain: a result racing the
                # deadline is a completion, not a hang.
                self._drain(handle, handle_reply, requeue_or_dead_letter)
                if handle.idle:
                    continue
                self.stats.hang_timeouts += 1
                self._recover_worker(
                    handle, handle_reply, requeue_or_dead_letter
                )

        # Final sweep: consume replies still buffered on idle pipes (a
        # worker's duplicated send, a result that raced the last deadline)
        # so they are counted now rather than confusing the next batch.
        for handle in list(self._pool):
            if handle.process.is_alive():
                self._drain(handle, handle_reply, requeue_or_dead_letter)
        self.stats.workers = len(self._pool)
        return [r["data"] for r in results]  # type: ignore[index]

    # -- recovery internals ----------------------------------------------

    def _drain(self, handle, handle_reply, requeue_or_dead_letter) -> None:
        """Process every readable reply; detect death at EOF."""
        while True:
            try:
                if not handle.conn.poll(0):
                    return
                data = handle.conn.recv_bytes()
            except (EOFError, OSError):
                # Death detected mid-drain: completed results (processed
                # in earlier loop turns) are already applied; only the
                # still-unfinished in-flight job is requeued.
                self._recover_worker(
                    handle, handle_reply, requeue_or_dead_letter
                )
                return
            handle_reply(handle, data)

    def _recover_worker(
        self, handle, handle_reply, requeue_or_dead_letter
    ) -> None:
        """Replace (or drop) a dead/hung worker and requeue its job.

        The pipe is drained *before* the requeue decision, so a job whose
        result was already in flight when the worker died is applied
        exactly once and never re-dispatched.
        """
        if handle not in self._pool:
            return
        # Salvage buffered results first (no recursion into recovery: the
        # pipe is consumed until EOF or empty, then the decision is made).
        salvaged: List[bytes] = []
        try:
            while handle.conn.poll(0):
                salvaged.append(handle.conn.recv_bytes())
        except (EOFError, OSError):
            pass
        self.stats.worker_deaths += 1
        in_flight = handle.busy_job
        tracer = obs_trace.tracer
        if tracer.enabled and in_flight is not None:
            # The worker died (or hung past its deadline) mid-span: its
            # own records are lost with the process, so mark the gap with
            # a truncated span rather than leaving the trace dangling.
            now = time.monotonic()
            tracer.record_span(
                "cluster.job",
                start_s=handle.busy_since or now,
                end_s=now,
                parent=handle.busy_ctx,
                status="truncated",
                slot=handle.slot,
                job_index=in_flight,
            )
            tracer.event(
                "cluster.worker_death",
                parent=handle.busy_ctx,
                incident=True,
                slot=handle.slot,
                incarnation=handle.incarnation,
            )
        self._dispose(handle)
        replacement = self._respawn(handle.slot)
        if replacement is None:
            self._pool.remove(handle)
        else:
            self._pool[self._pool.index(handle)] = replacement
        self.stats.workers = len(self._pool)
        for data in salvaged:
            # Replies salvaged from a dead worker's pipe still apply
            # exactly once; counters ride along as usual.
            handle_reply(handle, data)
        if in_flight is not None:
            requeue_or_dead_letter(in_flight)

    def _fold_counters(self, handle: _WorkerHandle, counters: Dict) -> None:
        """Fold a worker's cumulative counter snapshot as deltas."""
        if not isinstance(counters, dict):
            return
        seen = handle.counters_seen
        for name, target in (
            ("wire_errors", "wire_errors"),
            ("cache_corruptions", "cache_corruptions"),
        ):
            value = int(counters.get(name, 0))
            delta = value - seen.get(name, 0)
            if delta > 0:
                setattr(
                    self.stats, target, getattr(self.stats, target) + delta
                )
            seen[name] = value


__all__ = [
    "ClusterError",
    "ClusterFaultInjector",
    "ClusterPolicy",
    "ClusterStats",
    "ClusterSupervisor",
    "TransportError",
]
