"""Supervised multi-process sharded execution with crash recovery.

``repro.cluster`` bridges the hardened single-process runtime to a
serving-system execution model: batched conv / ``multiply_many`` work is
sharded across N supervised worker processes, jobs travel as
CRC32-framed envelopes (the :mod:`repro.faults.channel` wire format), and
the supervisor detects worker death and hangs, respawns with plan-cache
warmup replay, requeues in-flight jobs with exactly-once result
application, and degrades to the deterministic serial path when the pool
collapses.  See ``docs/robustness.md`` ("Supervised multi-process
execution") and ``docs/runtime.md`` (cluster quickstart).
"""

from repro.cluster.executor import ClusterExecutor, make_executor
from repro.cluster.supervisor import (
    ClusterError,
    ClusterFaultInjector,
    ClusterPolicy,
    ClusterStats,
    ClusterSupervisor,
)

__all__ = [
    "ClusterError",
    "ClusterExecutor",
    "ClusterFaultInjector",
    "ClusterPolicy",
    "ClusterStats",
    "ClusterSupervisor",
    "make_executor",
]
