"""Message and job codecs for the multi-process cluster executor.

Every supervisor <-> worker message travels as one CRC32-checksummed frame
in the :mod:`repro.faults.channel` wire format (``encode_frame`` /
``decode_frame``), so a corrupted pipe write is *detected* -- the receiver
sees :class:`repro.faults.channel.ChecksumError` instead of silently
unpickling garbage.  Inside the frame sits a pickled ``(kind, job_id,
payload)`` envelope; array-heavy crypto fields (ciphertext polynomials)
additionally use the :mod:`repro.protocol.wire` polynomial format, so
worker-side decoding exercises -- and its error counters cover -- exactly
the ``deserialize_poly`` validation the protocol transport relies on.

Job identity is the 64-bit ``job_id`` carried by every envelope: retries
of one logical job reuse its id, which is how the supervisor recognizes
(and discards) a duplicate result from a worker that was declared hung
after it had already finished the work.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.channel import decode_frame, encode_frame

# Message kinds (supervisor -> worker unless noted).
MSG_PING = "ping"          # liveness probe
MSG_PONG = "pong"          # worker -> supervisor: probe reply + counters
MSG_WARMUP = "warmup"      # replay a representative job to rebuild plan caches
MSG_JOB_CONV = "conv"      # batched clear-domain convolution shard
MSG_JOB_MUL = "mul"        # multiply_many shard (serialized ring polynomials)
MSG_TAMPER = "tamper"      # chaos/test hook: corrupt one cached entry in place
MSG_RESULT = "result"      # worker -> supervisor: job outcome + counters
MSG_ERROR = "error"        # worker -> supervisor: detected fault (wire/exec)
MSG_SHUTDOWN = "shutdown"  # graceful worker exit

JOB_KINDS = (MSG_JOB_CONV, MSG_JOB_MUL)


class WireDecodeError(ValueError):
    """A job payload's serialized polynomial failed wire validation."""


def encode_message(kind: str, job_id: int, payload: Any) -> bytes:
    """Frame one envelope; ``job_id``'s low bits double as the frame seq."""
    body = pickle.dumps((kind, int(job_id), payload), protocol=4)
    return encode_frame(int(job_id) & 0xFFFFFFFF, body)


def decode_message(data: bytes) -> Tuple[str, int, Any]:
    """Parse one framed envelope.

    Raises:
        ValueError: malformed frame header or undecodable envelope body.
        ChecksumError: frame payload failed its CRC32.
    """
    _, body = decode_frame(data)
    try:
        kind, job_id, payload = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types
        raise ValueError(f"undecodable message envelope: {exc}") from exc
    if not isinstance(kind, str):
        raise ValueError(f"bad message kind {kind!r}")
    return kind, int(job_id), payload


# ---------------------------------------------------------------------------
# Config / shape / parameter wire forms (plain tuples, spawn-safe)
# ---------------------------------------------------------------------------


def config_to_wire(config) -> Optional[tuple]:
    """Flatten an :class:`ApproxFftConfig` into a plain tuple (or ``None``)."""
    if config is None:
        return None
    return (
        int(config.n),
        tuple(int(w) for w in config.stage_widths),
        int(config.twiddle_k),
        int(config.twiddle_max_shift),
        None if config.input_width is None else int(config.input_width),
    )


def config_from_wire(wire: Optional[tuple]):
    if wire is None:
        return None
    from repro.fftcore.fixed_point import ApproxFftConfig

    n, stage_widths, twiddle_k, twiddle_max_shift, input_width = wire
    return ApproxFftConfig(
        n=n,
        stage_widths=list(stage_widths),
        twiddle_k=twiddle_k,
        twiddle_max_shift=twiddle_max_shift,
        input_width=input_width,
    )


def shape_to_wire(shape) -> tuple:
    """Flatten a :class:`ConvShape` into a plain tuple."""
    return (
        shape.in_channels, shape.height, shape.width, shape.out_channels,
        shape.kernel_h, shape.kernel_w, shape.stride, shape.padding,
    )


def shape_from_wire(wire: tuple):
    from repro.encoding.conv_encoding import ConvShape

    (in_channels, height, width, out_channels,
     kernel_h, kernel_w, stride, padding) = wire
    return ConvShape(
        in_channels=in_channels, height=height, width=width,
        out_channels=out_channels, kernel_h=kernel_h, kernel_w=kernel_w,
        stride=stride, padding=padding,
    )


class WireBasisParams:
    """Minimal parameter shim carrying just the RNS basis.

    :func:`repro.protocol.wire.deserialize_poly` validates incoming bytes
    against ``params.basis``; cluster jobs ship the exact basis primes so
    the worker-side check is byte-for-byte the one the protocol performs.
    """

    def __init__(self, basis):
        self.basis = basis


def basis_to_wire(basis) -> tuple:
    return (int(basis.n), tuple(int(p) for p in basis.primes))


def basis_from_wire(wire: tuple):
    from repro.ntt.rns import RnsBasis

    n, primes = wire
    return RnsBasis(list(primes), n)


# ---------------------------------------------------------------------------
# Job payload builders (supervisor side)
# ---------------------------------------------------------------------------


def conv_job_payload(
    mode: str,
    config,
    n: int,
    shape,
    x_shard: np.ndarray,
    w: np.ndarray,
) -> Dict[str, Any]:
    """One clear-domain convolution shard: a contiguous slice of the batch."""
    return {
        "mode": mode,
        "config": config_to_wire(config),
        "n": int(n),
        "shape": shape_to_wire(shape),
        "x": np.ascontiguousarray(x_shard, dtype=np.int64),
        "w": np.ascontiguousarray(w, dtype=np.int64),
    }


def mul_job_payload(
    backend: str,
    config,
    pattern,
    basis,
    poly_blobs: List[bytes],
    weights: List[np.ndarray],
) -> Dict[str, Any]:
    """One ``multiply_many`` shard: serialized polys + their weight vectors."""
    return {
        "backend": backend,
        "config": config_to_wire(config),
        "pattern": None if pattern is None else [int(v) for v in pattern],
        "basis": basis_to_wire(basis),
        "polys": list(poly_blobs),
        "weights": [
            np.ascontiguousarray(w, dtype=np.int64) for w in weights
        ],
    }


def warmup_key(kind: str, payload: Dict[str, Any]) -> tuple:
    """Context key under which one representative job is kept for replay.

    A respawned worker starts with cold plan caches; the supervisor replays
    one recorded job per distinct execution context (mode/backend, degree,
    datapath config) so the replacement rebuilds its plans and weight
    spectra before rejoining the pool.
    """
    if kind == MSG_JOB_CONV:
        return (kind, payload["mode"], payload["n"], payload["config"])
    if kind == MSG_JOB_MUL:
        return (
            kind, payload["backend"], payload["basis"][0], payload["config"],
        )
    return (kind,)


def warmup_payload(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a representative job for replay (its result is discarded)."""
    return {"job_kind": kind, "job": payload}
