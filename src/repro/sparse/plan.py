"""Compiled batched execution plans for the sparse fixed-point FFT.

:class:`repro.sparse.sparse_fxp.SparseFixedPointFft` walks the butterfly
network once per transform, re-deriving the ZERO / SCALED / GENERAL tag of
every node from the structural sparsity pattern.  The tags are *value
independent*: they depend only on the valid set, so the entire walk -- which
butterflies execute, which chains merge, where materializations happen and
what they cost -- can be compiled **once per pattern** into flat index
arrays and replayed over whole ``(B, n)`` stacks with vectorized gathers
and scatters.

Bit-identity argument (the contract the sparse conformance tier enforces):

* butterfly pairs within a stage are disjoint positions, so executing the
  stage's op groups in any order on gathered inputs equals the per-call
  sequential walk;
* every arithmetic step (twiddle product, halving, sign flip, power-of-two
  scaling, :meth:`repro.fftcore.fixed_point.FxpFormat.quantize_complex`)
  is element-wise and replayed in the per-call operand order, so IEEE-754
  determinism gives byte-equal results row by row;
* materialized chain products ``rom[exp] * x[src]`` are pure functions of
  ``(src, exp mod n)``, so the per-call memo collapses to a precomputed
  slot table evaluated in one batched multiply.

The multiplication count is a compile-time constant of the plan and equals
``SparseFixedPointFft.run(...).mults`` for every input with the pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.fftcore.fixed_point import ApproxFftConfig, FxpFormat
from repro.sparse.sparse_fxp import SparseFixedPointFft


__all__ = [
    "ZERO",
    "GENERAL",
    "scaled",
    "butterfly_tags",
    "SparsePlan",
    "SparseWeightPipeline",
    "compile_sparse_plan",
]


# ---------------------------------------------------------------------------
# Pure tag algebra (the compile-time dataflow, factored for property tests)
# ---------------------------------------------------------------------------

ZERO = ("zero",)
GENERAL = ("general",)


def scaled(src: int, exponent: int, sign: int) -> tuple:
    """SCALED tag: the node equals ``sign * W^exponent * x[src]`` (deferred)."""
    return ("scaled", int(src), int(exponent), int(sign))


def butterfly_tags(tag_u, tag_v, exponent: int) -> Tuple[tuple, tuple]:
    """Tag transition of one butterfly ``(u, v) -> (u + W^e v, u - W^e v)``.

    Mirrors :meth:`SparseFixedPointFft._butterfly` exactly (exponents are
    kept unreduced, as in the engine; consumers reduce mod n):

    * ZERO absorbs: a ZERO second operand degenerates the butterfly to a
      copy (skipping), two ZEROs stay ZERO;
    * SCALED chains compose: merging adds the butterfly exponent to the
      chain exponent and flips the sign on the difference output;
    * GENERAL is terminal: once a node carries a computed value, every
      butterfly it feeds produces GENERAL outputs.
    """
    ku, kv = tag_u[0], tag_v[0]
    if kv == "zero":
        if ku == "zero":
            return ZERO, ZERO
        if ku == "scaled":
            return tag_u, tag_u
        return GENERAL, GENERAL
    if ku == "zero":
        if kv == "scaled":
            _, src, e, sgn = tag_v
            return (
                scaled(src, e + exponent, sgn),
                scaled(src, e + exponent, -sgn),
            )
        return GENERAL, GENERAL
    return GENERAL, GENERAL


# ---------------------------------------------------------------------------
# Compiled plan structures
# ---------------------------------------------------------------------------


@dataclass
class _StageOps:
    """Vectorized op groups of one butterfly stage (disjoint positions)."""

    # ZERO-v / GENERAL-u halving copies: both outputs get q(vals[u] * 0.5).
    half_u: np.ndarray
    half_v: np.ndarray
    # ZERO-u / GENERAL-v twiddle flips: t = q((tw * vals[v]) * 0.5).
    zv_u: np.ndarray
    zv_v: np.ndarray
    zv_tw: np.ndarray
    # Chain materializations used by this stage's full butterflies, one
    # column per use: (sign * raws[slot]) * 2**-(s-1), quantized where q.
    mat_slot: np.ndarray
    mat_sign: np.ndarray
    mat_q: np.ndarray
    # Full butterflies (both operands carry data), in compile order.  The
    # u operand and the twiddle product t are assembled from either the
    # work array (GENERAL) or the stage materialization columns (SCALED).
    fu_g_pos: np.ndarray
    fu_g_cols: np.ndarray
    fu_m_pos: np.ndarray
    fu_m_cols: np.ndarray
    ft_g_pos: np.ndarray
    ft_g_cols: np.ndarray
    ft_g_tw: np.ndarray
    ft_m_pos: np.ndarray
    ft_m_cols: np.ndarray
    f_ou: np.ndarray
    f_ov: np.ndarray


@dataclass
class _Finalize:
    """Output assembly: ZERO positions stay 0, GENERAL pass through,
    SCALED chains materialize at the final scale."""

    gen_pos: np.ndarray
    sc_pos: np.ndarray
    sc_slot: np.ndarray
    sc_sign: np.ndarray
    sc_q: np.ndarray


class _StageBuilder:
    """List accumulator frozen into a :class:`_StageOps`."""

    def __init__(self):
        self.half_u: List[int] = []
        self.half_v: List[int] = []
        self.zv_u: List[int] = []
        self.zv_v: List[int] = []
        self.zv_tw: List[complex] = []
        self.mat_slot: List[int] = []
        self.mat_sign: List[float] = []
        self.mat_q: List[bool] = []
        self.fu_g_pos: List[int] = []
        self.fu_g_cols: List[int] = []
        self.fu_m_pos: List[int] = []
        self.fu_m_cols: List[int] = []
        self.ft_g_pos: List[int] = []
        self.ft_g_cols: List[int] = []
        self.ft_g_tw: List[complex] = []
        self.ft_m_pos: List[int] = []
        self.ft_m_cols: List[int] = []
        self.f_ou: List[int] = []
        self.f_ov: List[int] = []

    def mat_use(self, slot: int, sign: int, quantize: bool) -> int:
        self.mat_slot.append(slot)
        self.mat_sign.append(float(sign))
        self.mat_q.append(bool(quantize))
        return len(self.mat_slot) - 1

    def freeze(self) -> _StageOps:
        def idx(a):
            return np.asarray(a, dtype=np.int64)

        return _StageOps(
            half_u=idx(self.half_u),
            half_v=idx(self.half_v),
            zv_u=idx(self.zv_u),
            zv_v=idx(self.zv_v),
            zv_tw=np.asarray(self.zv_tw, dtype=np.complex128),
            mat_slot=idx(self.mat_slot),
            mat_sign=np.asarray(self.mat_sign, dtype=np.float64),
            mat_q=np.asarray(self.mat_q, dtype=bool),
            fu_g_pos=idx(self.fu_g_pos),
            fu_g_cols=idx(self.fu_g_cols),
            fu_m_pos=idx(self.fu_m_pos),
            fu_m_cols=idx(self.fu_m_cols),
            ft_g_pos=idx(self.ft_g_pos),
            ft_g_cols=idx(self.ft_g_cols),
            ft_g_tw=np.asarray(self.ft_g_tw, dtype=np.complex128),
            ft_m_pos=idx(self.ft_m_pos),
            ft_m_cols=idx(self.ft_m_cols),
            f_ou=idx(self.f_ou),
            f_ov=idx(self.f_ov),
        )


class SparsePlan:
    """One pattern's compiled sparse fixed-point transform.

    Args:
        config: fixed-point configuration of the core (:class:`ApproxFftConfig`).
        pattern: structural valid indices of the *core* input (already
            folded for the negacyclic pipeline), reduced mod n.
        sign: twiddle sign convention (+1 for the folded negacyclic
            forward transform, matching :class:`SparseFixedPointFft`).
    """

    def __init__(
        self, config: ApproxFftConfig, pattern: Sequence[int], sign: int = 1
    ):
        engine = SparseFixedPointFft(config, sign=sign)
        self.config = config
        self.sign = sign
        self.n = config.n
        self.stages = engine.stages
        self._formats = engine._formats
        self.valid = np.array(
            sorted({int(v) % self.n for v in pattern}), dtype=np.int64
        )
        self._compile(engine)

    # -- compilation -----------------------------------------------------

    def _compile(self, engine: SparseFixedPointFft) -> None:
        n = self.n
        valid_set = set(self.valid.tolist())

        tags: List[tuple] = []
        for pos in range(n):
            src = int(engine._rev[pos])
            if src in valid_set:
                tags.append(scaled(src, 0, 1))
            else:
                tags.append(ZERO)

        # Unique (src, exp mod n) chain products, shared like the per-call
        # memo; slot k holds raws[:, k] = twiddle[k] * x[:, src[k]].
        slots: Dict[Tuple[int, int], int] = {}
        raw_src: List[int] = []
        raw_tw: List[complex] = []

        def slot_of(src: int, expn: int) -> int:
            key = (src, expn)
            if key not in slots:
                slots[key] = len(raw_src)
                raw_src.append(src)
                raw_tw.append(engine._twiddle(expn))
            return slots[key]

        memo: set = set()
        mults = 0
        stage_ops: List[_StageOps] = []

        for s in range(1, self.stages + 1):
            m = 1 << s
            half = m >> 1
            step = n // m
            st = _StageBuilder()
            k = 0  # full-butterfly column within this stage
            for block in range(0, n, m):
                for j in range(half):
                    u = block + j
                    v = u + half
                    exponent = j * step
                    tu, tv = tags[u], tags[v]
                    tags[u], tags[v] = butterfly_tags(tu, tv, exponent)
                    ku, kv = tu[0], tv[0]

                    if kv == "zero":
                        if ku == "general":
                            st.half_u.append(u)
                            st.half_v.append(v)
                        continue
                    if ku == "zero":
                        if kv == "general":
                            st.zv_u.append(u)
                            st.zv_v.append(v)
                            st.zv_tw.append(engine._twiddle(exponent))
                            mults += 1
                        continue

                    # Both operands carry data: the butterfly executes.
                    if ku == "scaled":
                        _, src, e, sgn = tu
                        expn = e % n
                        if (src, expn) not in memo:
                            memo.add((src, expn))
                            if expn != 0:
                                mults += 1
                        st.fu_m_pos.append(k)
                        st.fu_m_cols.append(
                            st.mat_use(slot_of(src, expn), sgn, expn != 0)
                        )
                    else:
                        st.fu_g_pos.append(k)
                        st.fu_g_cols.append(u)

                    if kv == "scaled":
                        # The BU multiplier computes ROM[e_v + e] * x
                        # directly; the memo entry is shared but its cost
                        # rides on the unconditional butterfly multiply.
                        _, src, e, sgn = tv
                        expn = (e + exponent) % n
                        memo.add((src, expn))
                        st.ft_m_pos.append(k)
                        st.ft_m_cols.append(
                            st.mat_use(slot_of(src, expn), sgn, expn != 0)
                        )
                    else:
                        st.ft_g_pos.append(k)
                        st.ft_g_cols.append(v)
                        st.ft_g_tw.append(engine._twiddle(exponent))
                    mults += 1
                    st.f_ou.append(u)
                    st.f_ov.append(v)
                    k += 1
            stage_ops.append(st.freeze())

        gen_pos: List[int] = []
        sc_pos: List[int] = []
        sc_slot: List[int] = []
        sc_sign: List[float] = []
        sc_q: List[bool] = []
        groups: set = set()
        for pos, tag in enumerate(tags):
            if tag[0] == "general":
                gen_pos.append(pos)
            elif tag[0] == "scaled":
                _, src, e, sgn = tag
                expn = e % n
                if (src, expn) not in groups and (src, expn) not in memo:
                    groups.add((src, expn))
                    mults += 1
                sc_pos.append(pos)
                sc_slot.append(slot_of(src, expn))
                sc_sign.append(float(sgn))
                sc_q.append(expn != 0)

        self._stage_ops = stage_ops
        self._raw_src = np.asarray(raw_src, dtype=np.int64)
        self._raw_tw = np.asarray(raw_tw, dtype=np.complex128)
        self._fin = _Finalize(
            gen_pos=np.asarray(gen_pos, dtype=np.int64),
            sc_pos=np.asarray(sc_pos, dtype=np.int64),
            sc_slot=np.asarray(sc_slot, dtype=np.int64),
            sc_sign=np.asarray(sc_sign, dtype=np.float64),
            sc_q=np.asarray(sc_q, dtype=bool),
        )
        self._invalid_mask = np.ones(n, dtype=bool)
        if self.valid.size:
            self._invalid_mask[self.valid] = False
        self.mults = mults

    # -- bookkeeping -----------------------------------------------------

    @property
    def output_scale(self) -> float:
        return 2.0 ** -self.stages

    @property
    def dense_mults(self) -> int:
        return (self.n // 2) * self.stages

    @property
    def reduction(self) -> float:
        if self.dense_mults == 0:
            return 0.0
        return 1.0 - self.mults / self.dense_mults

    def _iter_arrays(self) -> Iterator[Tuple[str, np.ndarray]]:
        yield "valid", self.valid
        yield "raw_src", self._raw_src
        yield "raw_tw", self._raw_tw
        for s, st in enumerate(self._stage_ops):
            for f in fields(st):
                yield f"s{s}.{f.name}", getattr(st, f.name)
        for f in fields(self._fin):
            yield f"fin.{f.name}", getattr(self._fin, f.name)

    def _header(self) -> bytes:
        cfg = self.config
        return repr(
            (
                "sparse-plan",
                self.n,
                self.sign,
                tuple(cfg.stage_widths),
                cfg.twiddle_k,
                cfg.twiddle_max_shift,
                cfg.input_width,
                self.mults,
            )
        ).encode()

    @property
    def plan_bytes(self) -> int:
        """Byte footprint for :class:`repro.runtime.PlanCache` accounting."""
        return sum(a.nbytes for _, a in self._iter_arrays())

    def digest_payload(self):
        """Content walked by :func:`repro.runtime.plan_cache.value_digest`."""
        payload: List[object] = [self._header()]
        for name, a in self._iter_arrays():
            payload.append(name)
            payload.append(a)
        return payload

    def to_bytes(self) -> bytes:
        """Deterministic serialization: same pattern -> byte-identical plan."""
        parts = [self._header()]
        for name, a in self._iter_arrays():
            arr = np.ascontiguousarray(a)
            parts.append(
                repr((name, arr.dtype.str, arr.shape)).encode()
            )
            parts.append(arr.tobytes())
        return b"|".join(parts)

    # -- execution -------------------------------------------------------

    def execute(self, x) -> np.ndarray:
        """Replay the compiled dataflow over a ``(B, n)`` stack (or one row).

        Bit-identical per row to ``SparseFixedPointFft(config, sign).run(row,
        valid=pattern).values``.
        """
        x = np.asarray(x, dtype=np.complex128)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.n:
            raise ValueError(
                f"expected shape (B, {self.n}), got {x.shape}"
            )
        if self.config.input_width is not None:
            x = FxpFormat(self.config.input_width).quantize_complex(x)
        stray = x[:, self._invalid_mask]
        if stray.size and np.any(stray):
            bad = np.nonzero(self._invalid_mask)[0][
                np.nonzero(np.any(stray != 0, axis=0))[0]
            ]
            raise ValueError(
                "input has non-zeros outside the valid set: "
                f"{bad[:5].tolist()}"
            )

        b = x.shape[0]
        raws = self._raw_tw[None, :] * x[:, self._raw_src]
        vals = np.zeros((b, self.n), dtype=np.complex128)

        for s, st in enumerate(self._stage_ops, start=1):
            fmt = self._formats[s - 1]
            mats: Optional[np.ndarray] = None
            if st.mat_slot.size:
                mats = (st.mat_sign[None, :] * raws[:, st.mat_slot]) * (
                    2.0 ** -(s - 1)
                )
                if st.mat_q.any():
                    mats[:, st.mat_q] = fmt.quantize_complex(
                        mats[:, st.mat_q]
                    )
            if st.half_u.size:
                hv = fmt.quantize_complex(vals[:, st.half_u] * 0.5)
                vals[:, st.half_u] = hv
                vals[:, st.half_v] = hv
            if st.zv_u.size:
                t = fmt.quantize_complex(
                    (st.zv_tw[None, :] * vals[:, st.zv_v]) * 0.5
                )
                vals[:, st.zv_u] = t
                vals[:, st.zv_v] = -t
            k = st.f_ou.size
            if k:
                u_vals = np.empty((b, k), dtype=np.complex128)
                if st.fu_g_pos.size:
                    u_vals[:, st.fu_g_pos] = vals[:, st.fu_g_cols]
                if st.fu_m_pos.size:
                    u_vals[:, st.fu_m_pos] = mats[:, st.fu_m_cols]
                t = np.empty((b, k), dtype=np.complex128)
                if st.ft_g_pos.size:
                    t[:, st.ft_g_pos] = (
                        st.ft_g_tw[None, :] * vals[:, st.ft_g_cols]
                    )
                if st.ft_m_pos.size:
                    t[:, st.ft_m_pos] = mats[:, st.ft_m_cols]
                vals[:, st.f_ou] = fmt.quantize_complex((u_vals + t) * 0.5)
                vals[:, st.f_ov] = fmt.quantize_complex((u_vals - t) * 0.5)

        out = np.zeros((b, self.n), dtype=np.complex128)
        fin = self._fin
        if fin.gen_pos.size:
            out[:, fin.gen_pos] = vals[:, fin.gen_pos]
        if fin.sc_pos.size:
            scv = (fin.sc_sign[None, :] * raws[:, fin.sc_slot]) * (
                2.0 ** -self.stages
            )
            if fin.sc_q.any():
                scv[:, fin.sc_q] = self._formats[-1].quantize_complex(
                    scv[:, fin.sc_q]
                )
            out[:, fin.sc_pos] = scv
        return out[0] if single else out

    def __repr__(self) -> str:
        return (
            f"SparsePlan(n={self.n}, valid={self.valid.size}, "
            f"mults={self.mults}/{self.dense_mults})"
        )


def compile_sparse_plan(
    config: ApproxFftConfig, pattern: Sequence[int], sign: int = 1
) -> SparsePlan:
    """Compile the tag propagation for ``pattern`` once (see :class:`SparsePlan`)."""
    return SparsePlan(config, pattern, sign=sign)


class SparseWeightPipeline:
    """Batched drop-in for :class:`repro.sparse.sparse_fxp.SparseApproxNegacyclic`.

    Folds a ``(B, n)`` stack of integer weight polynomials, normalizes each
    row by the per-call power-of-two scale, and runs one compiled
    :class:`SparsePlan` over the whole stack.  Every step is element-wise
    (or per-row scalar-equal), so row ``i`` of the result is bit-identical
    to ``SparseApproxNegacyclic(n, config, pattern).weight_forward(w[i])``.

    Args:
        n: polynomial length (ring degree); the core is ``n // 2``-point.
        weight_config: fixed-point configuration of the core.
        valid_pattern: structural non-zero pattern, natural coefficient
            order (already-folded core indices are accepted too: folding
            is idempotent).
        plan: pre-compiled plan for the folded pattern (e.g. from a
            :class:`repro.runtime.PlanCache`); compiled here when omitted.
    """

    def __init__(
        self,
        n: int,
        weight_config: ApproxFftConfig,
        valid_pattern: Sequence[int],
        plan: Optional[SparsePlan] = None,
    ):
        from repro.fftcore.negacyclic import NegacyclicFft
        from repro.sparse.patterns import fold_valid_indices

        if weight_config.n != n // 2:
            raise ValueError(
                f"weight core must be {n // 2}-point, got {weight_config.n}"
            )
        self.n = n
        self.base = NegacyclicFft(n)
        self.pattern = fold_valid_indices(valid_pattern, n)
        self.plan = (
            plan
            if plan is not None
            else SparsePlan(weight_config, self.pattern, sign=+1)
        )
        if not np.array_equal(self.plan.valid, self.pattern):
            raise ValueError("plan was compiled for a different pattern")

    @property
    def mults(self) -> int:
        """Weight-transform multiplications per transform (compile-time)."""
        return self.plan.mults

    @property
    def dense_mults(self) -> int:
        return self.plan.dense_mults

    @property
    def plan_bytes(self) -> int:
        return self.base.plan_bytes + self.plan.plan_bytes

    def weight_forward_batch(self, weights):
        """Sparse approximate spectra of a ``(B, n)`` integer weight stack.

        Returns an ``ApproxSpectrum`` whose ``values`` are ``(B, n/2)`` and
        whose ``scale`` is the ``(B,)`` per-row normalization vector.
        """
        from repro.fftcore.approx_pipeline import (
            ApproxSpectrum,
            _next_pow2_rows,
            _row_part_max,
        )

        weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        folded = self.base.fold_batch(weights)
        scale = _next_pow2_rows(_row_part_max(folded) * (1.0 + 2.0 ** -20))
        out = self.plan.execute(folded / scale[:, None])
        unscaled = out / self.plan.output_scale * scale[:, None]
        return ApproxSpectrum(values=unscaled, scale=scale)

    def weight_forward(self, weight):
        """Single-weight convenience wrapper (a batch of one)."""
        from repro.fftcore.approx_pipeline import ApproxSpectrum

        spec = self.weight_forward_batch(np.asarray(weight)[None, :])
        return ApproxSpectrum(
            values=spec.values[0], scale=float(spec.scale[0])
        )
