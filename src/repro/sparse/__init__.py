"""Sparse butterfly dataflow: skipping + merging engine and op-count models."""

from repro.sparse.dataflow import SparseFft, SparseFftResult
from repro.sparse.opcount import (
    PolyMulCounts,
    conv_polymul_counts,
    crossover_sparsity,
    dense_fft_mults,
    direct_coeff_mults,
    sparse_fft_mults,
    synthetic_polymul_counts,
    weight_transform_reduction,
)
from repro.sparse.plan import (
    GENERAL,
    ZERO,
    SparsePlan,
    SparseWeightPipeline,
    butterfly_tags,
    compile_sparse_plan,
    scaled,
)
from repro.sparse.sparse_fxp import (
    SparseApproxNegacyclic,
    SparseFixedPointFft,
    SparseFxpResult,
)
from repro.sparse.patterns import (
    PatternStats,
    bit_reversed_positions,
    classify_pattern,
    contiguous_block_pattern,
    conv_like_pattern,
    conv_weight_pattern,
    fold_valid_indices,
    uniform_stride_pattern,
)

__all__ = [
    "GENERAL",
    "PatternStats",
    "PolyMulCounts",
    "SparseFft",
    "SparseFftResult",
    "SparseApproxNegacyclic",
    "SparseFixedPointFft",
    "SparseFxpResult",
    "SparsePlan",
    "SparseWeightPipeline",
    "ZERO",
    "bit_reversed_positions",
    "butterfly_tags",
    "classify_pattern",
    "compile_sparse_plan",
    "contiguous_block_pattern",
    "conv_like_pattern",
    "conv_polymul_counts",
    "conv_weight_pattern",
    "crossover_sparsity",
    "dense_fft_mults",
    "direct_coeff_mults",
    "fold_valid_indices",
    "scaled",
    "sparse_fft_mults",
    "synthetic_polymul_counts",
    "uniform_stride_pattern",
    "weight_transform_reduction",
]
