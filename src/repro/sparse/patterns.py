"""Sparsity-pattern analysis of coefficient-encoded weight polynomials.

Section IV-B: after bit-reversal, the valid coefficients of an encoded
weight polynomial are either *contiguous* (a prefix block -- optimal for
skipping) or *scattered* (near-uniform strides -- optimal for merging).
These helpers extract, fold and classify the patterns the dataflow engine
is configured with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.encoding.conv_encoding import Conv2dEncoder
from repro.ntt.modmath import bit_reverse_indices


def fold_valid_indices(valid: Sequence[int], n: int) -> np.ndarray:
    """Map length-n polynomial indices onto the folded n/2-point FFT core.

    The folded pipeline packs coefficient ``j`` and ``j + n/2`` into one
    complex sample, so a weight slot at either position makes folded index
    ``j mod n/2`` valid.
    """
    half = n // 2
    idx = {int(v) % n % half for v in valid}
    return np.array(sorted(idx), dtype=np.int64)


def bit_reversed_positions(valid: Sequence[int], n: int) -> np.ndarray:
    """Network positions of the valid inputs after the bit-reversal permute."""
    rev = bit_reverse_indices(n)
    # rev[pos] = source index; invert: position of source i is rev's inverse,
    # and bit-reversal is an involution, so position = rev index of i.
    inv = np.empty(n, dtype=np.int64)
    inv[rev] = np.arange(n)
    return np.array(sorted(int(inv[int(v) % n]) for v in valid), dtype=np.int64)


@dataclass(frozen=True)
class PatternStats:
    """Summary of one structural sparsity pattern."""

    n: int
    valid_count: int
    sparsity: float
    kind: str  # 'empty' | 'contiguous' | 'scattered' | 'mixed' | 'dense'
    prefix_block: int  # smallest power-of-two block covering the
    # bit-reversed positions (skipping granularity)
    min_gap: int  # smallest gap between bit-reversed positions


def classify_pattern(valid: Sequence[int], n: int) -> PatternStats:
    """Classify a valid-index pattern for the skipping/merging dataflow.

    * ``contiguous``: bit-reversed positions form a small prefix block --
      pure skipping applies (Figure 8(a)).
    * ``scattered``: positions are spread with a uniform large stride --
      merging applies (Figure 8(b)).
    * ``mixed``: anything in between (both optimizations combine).
    """
    valid_set = sorted({int(v) % n for v in valid})
    count = len(valid_set)
    sparsity = 1.0 - count / n
    if count == 0:
        return PatternStats(n, 0, 1.0, "empty", 1, n)
    pos = bit_reversed_positions(valid_set, n)
    top = int(pos.max())
    block = 1
    while block <= top:
        block <<= 1
    gaps = np.diff(pos) if len(pos) > 1 else np.array([n])
    min_gap = int(gaps.min()) if gaps.size else n
    if count == n:
        kind = "dense"
    elif block <= max(2, 2 * count):
        # All activity confined to a prefix block about the size of the
        # valid count: contiguous.
        kind = "contiguous"
    elif min_gap >= 2 and gaps.size and int(gaps.max()) == min_gap:
        kind = "scattered"
    elif min_gap >= 2:
        kind = "scattered" if min_gap >= n // (4 * count) else "mixed"
    else:
        kind = "mixed"
    return PatternStats(n, count, sparsity, kind, block, min_gap)


def conv_weight_pattern(encoder: Conv2dEncoder, tile: int = 0) -> np.ndarray:
    """Folded valid pattern of one encoded conv weight polynomial.

    This is the pattern FLASH's sparse FFT core for the layer is configured
    with; it depends only on the layer shape.
    """
    return fold_valid_indices(encoder.weight_valid_indices(tile), encoder.n)


def uniform_stride_pattern(n: int, valid_count: int) -> np.ndarray:
    """Synthetic pattern: ``valid_count`` indices at uniform stride.

    Models layers where one valid value exists every ``n/valid_count``
    positions (e.g. layer 28 of ResNet-50: one valid per 32 positions).
    """
    if valid_count < 1 or valid_count > n:
        raise ValueError("valid_count out of range")
    stride = n // valid_count
    return np.arange(valid_count, dtype=np.int64) * stride


def contiguous_block_pattern(n: int, valid_count: int) -> np.ndarray:
    """Synthetic pattern: a single contiguous block at offset 0."""
    if valid_count < 1 or valid_count > n:
        raise ValueError("valid_count out of range")
    return np.arange(valid_count, dtype=np.int64)


def conv_like_pattern(
    n: int, channels: int, plane: int, kernel: int, row_stride: int
) -> np.ndarray:
    """Synthetic Cheetah-style pattern: ``kernel`` contiguous taps per row.

    ``kernel`` rows of ``kernel`` contiguous slots, rows ``row_stride``
    apart, repeated per channel at ``plane`` offsets (Figure 7's structure).
    """
    idx = []
    for c in range(channels):
        base = c * plane
        for u in range(kernel):
            for v in range(kernel):
                idx.append(base + u * row_stride + v)
    out = sorted({i for i in idx if i < n})
    return np.array(out, dtype=np.int64)
