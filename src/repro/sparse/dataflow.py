"""Sparse butterfly dataflow: the *skipping* and *merging* engine (Sec IV-B).

The engine propagates a symbolic tag per butterfly-network node:

* ``ZERO``     -- the node value is identically zero;
* ``SCALED``   -- the node equals ``coeff * x[src]`` for a single valid
  input ``src`` and an offline-precomputable complex ``coeff`` (cumulative
  twiddle product).  These nodes cost nothing while they propagate --
  this is *merging*: chains of butterflies collapse into one deferred
  multiplication;
* ``GENERAL``  -- an ordinary computed value.

Butterflies whose second operand is ``ZERO`` degenerate to copies
(*skipping* with output duplication); blocks that are entirely zero are
never touched.  The engine simultaneously

1. computes the exact same spectrum as a dense FFT (verified against the
   reference transform in tests), and
2. counts the complex multiplications the FLASH dataflow performs.

Counting follows the paper's convention: every executed butterfly
occupies a BU multiplier (trivial twiddles included, matching the dense
count ``N/2 * log2 N`` of Example 4.1), and every distinct
``(source, +-coeff)`` output group of a deferred chain costs one
multiplication (Example 4.2: four multiplications for
``m'[0..3] = m_br[6] x W^j``, sign flips and duplicated halves free).
An *honest* count -- multiplications by {+-1, +-i} are free -- is
reported alongside.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.fftcore.reference import stage_twiddles
from repro.ntt.modmath import bit_reverse_indices

_UNIT_EPS = 1e-12


class _Kind(enum.IntEnum):
    ZERO = 0
    SCALED = 1
    GENERAL = 2


@dataclass
class _Node:
    kind: _Kind
    src: int = -1
    coeff: complex = 0j
    value: complex = 0j


@dataclass
class SparseFftResult:
    """Output of one sparse transform."""

    values: np.ndarray
    mults: int  # paper-convention multiplication count
    mults_nontrivial: int  # honest count ({+-1, +-i} free)
    dense_mults: int
    stage_mults: List[int] = field(default_factory=list)

    @property
    def reduction(self) -> float:
        """Fraction of dense multiplications eliminated (paper convention)."""
        if self.dense_mults == 0:
            return 0.0
        return 1.0 - self.mults / self.dense_mults


def _is_unit(c: complex) -> bool:
    """True for the free multipliers {1, -1, i, -i} (negate / swap only)."""
    return (
        abs(abs(c.real) - 1.0) < _UNIT_EPS and abs(c.imag) < _UNIT_EPS
    ) or (
        abs(abs(c.imag) - 1.0) < _UNIT_EPS and abs(c.real) < _UNIT_EPS
    )


def _is_pm_one(c: complex) -> bool:
    return abs(abs(c.real) - 1.0) < _UNIT_EPS and abs(c.imag) < _UNIT_EPS


def _sign_key(src: int, coeff: complex) -> Tuple[int, int, int]:
    """Key identifying ``coeff`` up to negation (on a 1e-12 grid)."""
    re = int(round(coeff.real * 1e12))
    im = int(round(coeff.imag * 1e12))
    if re < 0 or (re == 0 and im < 0):
        re, im = -re, -im
    return (src, re, im)


class SparseFft:
    """Sparse FFT engine of length ``n``.

    Args:
        n: transform length (power of two).
        sign: twiddle sign convention (-1 forward / numpy, +1 conjugate;
            the folded negacyclic forward transform uses +1).
    """

    def __init__(self, n: int, sign: int = -1):
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        if sign not in (-1, 1):
            raise ValueError("sign must be -1 or +1")
        self.n = n
        self.sign = sign
        self.stages = n.bit_length() - 1
        self._rev = bit_reverse_indices(n)
        self._tw = [
            stage_twiddles(n, s, sign) for s in range(1, self.stages + 1)
        ]

    @property
    def dense_mults(self) -> int:
        """Multiplications of the classical dense dataflow: n/2 * log2(n)."""
        return (self.n // 2) * self.stages

    # ------------------------------------------------------------------

    def run(self, x, valid: Optional[Sequence[int]] = None) -> SparseFftResult:
        """Transform ``x`` (natural coefficient order) exploiting sparsity.

        Args:
            x: complex input vector of length n.
            valid: indices (natural order) that may be non-zero; inferred
                from the non-zeros of ``x`` if omitted.  Passing the
                layer's structural pattern models hardware, where the
                dataflow is configured once per layer.
        """
        x = np.asarray(x, dtype=np.complex128)
        if x.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {x.shape}")
        if valid is None:
            valid_set = set(np.nonzero(x)[0].tolist())
        else:
            valid_set = {int(v) % self.n for v in valid}
            stray = set(np.nonzero(x)[0].tolist()) - valid_set
            if stray:
                raise ValueError(
                    "input has non-zeros outside the valid set: "
                    f"{sorted(stray)[:5]}"
                )

        nodes = self._initial_nodes(valid_set)
        paper_total = 0
        honest_total = 0
        stage_mults: List[int] = []
        # Materialized (src, +-coeff) products, shared across the network.
        mat_memo: Set[Tuple[int, int, int]] = set()

        def materialize(src: int, coeff: complex) -> Tuple[complex, int, int]:
            """Value of ``coeff * x[src]`` and its (paper, honest) cost."""
            value = coeff * x[src]
            if _is_pm_one(coeff):
                return value, 0, 0
            key = _sign_key(src, coeff)
            if key in mat_memo:
                return value, 0, 0
            mat_memo.add(key)
            return value, 1, (0 if _is_unit(coeff) else 1)

        for s in range(self.stages):
            m = 2 << s
            half = m >> 1
            tw = self._tw[s]
            stage_paper = 0
            for block in range(0, self.n, m):
                for j in range(half):
                    u = block + j
                    v = u + half
                    p, h = self._butterfly(
                        nodes, u, v, complex(tw[j]), x, materialize
                    )
                    stage_paper += p
                    honest_total += h
            paper_total += stage_paper
            stage_mults.append(stage_paper)

        values, mat_paper, mat_honest = self._finalize(nodes, x, mat_memo)
        paper_total += mat_paper
        honest_total += mat_honest
        stage_mults.append(mat_paper)

        return SparseFftResult(
            values=values,
            mults=paper_total,
            mults_nontrivial=honest_total,
            dense_mults=self.dense_mults,
            stage_mults=stage_mults,
        )

    def count(self, valid: Sequence[int]) -> SparseFftResult:
        """Count multiplications for a structural pattern.

        Runs the engine on a synthetic input with generic non-zero values
        at the valid indices, so accidental value cancellations cannot
        inflate the savings.
        """
        rng = np.random.default_rng(0xF1A5)
        x = np.zeros(self.n, dtype=np.complex128)
        idx = np.array(sorted({int(v) % self.n for v in valid}), dtype=np.int64)
        if idx.size:
            x[idx] = rng.standard_normal(idx.size) + 1.5
        return self.run(x, valid=idx)

    # ------------------------------------------------------------------

    def _initial_nodes(self, valid_set) -> List[_Node]:
        nodes = []
        for pos in range(self.n):
            src = int(self._rev[pos])
            if src in valid_set:
                nodes.append(_Node(_Kind.SCALED, src=src, coeff=1.0 + 0j))
            else:
                nodes.append(_Node(_Kind.ZERO))
        return nodes

    @staticmethod
    def _butterfly(nodes, u, v, w, x, materialize) -> Tuple[int, int]:
        """Apply one butterfly in place; return its (paper, honest) cost."""
        nu, nv = nodes[u], nodes[v]

        if nv.kind == _Kind.ZERO:
            if nu.kind == _Kind.ZERO:
                return 0, 0
            # Skipping: u' = u + w*0 = u, v' = u - w*0 = u (duplication).
            nodes[v] = _Node(nu.kind, src=nu.src, coeff=nu.coeff, value=nu.value)
            return 0, 0

        if nu.kind == _Kind.ZERO:
            if nv.kind == _Kind.SCALED:
                # Merging: fold the twiddle into the chain coefficient.
                c = w * nv.coeff
                nodes[u] = _Node(_Kind.SCALED, src=nv.src, coeff=c)
                nodes[v] = _Node(_Kind.SCALED, src=nv.src, coeff=-c)
                return 0, 0
            t = w * nv.value
            nodes[u] = _Node(_Kind.GENERAL, value=t)
            nodes[v] = _Node(_Kind.GENERAL, value=-t)
            return 1, (0 if _is_unit(w) else 1)

        # Both operands carry data: the butterfly executes.
        paper = 0
        honest = 0
        if nu.kind == _Kind.SCALED:
            u_val, p, h = materialize(nu.src, nu.coeff)
            paper += p
            honest += h
        else:
            u_val = nu.value

        if nv.kind == _Kind.SCALED:
            # The BU multiplier computes (w * coeff_v) * x[src_v] directly.
            c = w * nv.coeff
            t = c * x[nv.src]
        else:
            c = w
            t = w * nv.value
        paper += 1
        if not _is_unit(c):
            honest += 1

        nodes[u] = _Node(_Kind.GENERAL, value=u_val + t)
        nodes[v] = _Node(_Kind.GENERAL, value=u_val - t)
        return paper, honest

    def _finalize(self, nodes, x, mat_memo) -> Tuple[np.ndarray, int, int]:
        """Materialize remaining SCALED outputs, grouped by (src, +-coeff)."""
        values = np.empty(self.n, dtype=np.complex128)
        paper = 0
        honest = 0
        final_groups: Set[Tuple[int, int, int]] = set()
        for pos, node in enumerate(nodes):
            if node.kind == _Kind.ZERO:
                values[pos] = 0j
            elif node.kind == _Kind.GENERAL:
                values[pos] = node.value
            else:
                values[pos] = node.coeff * x[node.src]
                key = _sign_key(node.src, node.coeff)
                if key in mat_memo or key in final_groups:
                    continue
                final_groups.add(key)
                # Paper convention counts one multiplication per group,
                # unit coefficients included (Example 4.2 counts W^0).
                paper += 1
                if not _is_unit(node.coeff):
                    honest += 1
        return values, paper, honest
