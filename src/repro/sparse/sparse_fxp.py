"""The combined FLASH weight-transform engine: sparse *and* fixed-point.

:mod:`repro.sparse.dataflow` proves the skipping/merging dataflow exact;
:mod:`repro.fftcore.fixed_point` models the approximate arithmetic.  Real
FLASH hardware does both at once, and the combination is *not* the
composition of the two models: a merged butterfly chain multiplies by one
ROM entry addressed by the *sum* of twiddle exponents ("twiddle factor
exponents serve as addresses to fetch values from the ROM", Section IV-B),
so a chain suffers a single twiddle quantization instead of one per stage
-- merging is slightly *more* accurate than the dense approximate FFT, not
less.  This module models that faithfully:

* ``ZERO`` / ``SCALED`` / ``GENERAL`` node tags as in the exact engine;
* ``SCALED`` chains track ``(source, exponent mod n, sign)`` symbolically
  and cost nothing until they materialize through one quantized ROM entry;
* executed butterflies use quantized stage twiddles, halve their outputs
  and round to the stage's data width -- bit-compatible with
  :class:`repro.fftcore.fixed_point.FixedPointFft` on dense inputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fftcore.fixed_point import ApproxFftConfig, FxpFormat
from repro.fftcore.reference import stage_twiddles
from repro.fftcore.twiddle_quant import TwiddleRom
from repro.ntt.modmath import bit_reverse_indices


__all__ = [
    "SparseFixedPointFft",
    "SparseFxpResult",
    "SparseApproxNegacyclic",
]


class _Kind(enum.IntEnum):
    ZERO = 0
    SCALED = 1
    GENERAL = 2


@dataclass
class _Node:
    kind: _Kind
    src: int = -1
    exponent: int = 0  # twiddle exponent of the deferred chain (mod n)
    sign: int = 1
    value: complex = 0j  # for GENERAL, in the current scaled domain


@dataclass
class SparseFxpResult:
    """Output of one combined sparse fixed-point transform."""

    values: np.ndarray  # scaled spectrum (same convention as FixedPointFft)
    mults: int
    dense_mults: int

    @property
    def reduction(self) -> float:
        if self.dense_mults == 0:
            return 0.0
        return 1.0 - self.mults / self.dense_mults


class SparseFixedPointFft:
    """Sparse skipping/merging FFT on the approximate fixed-point datapath.

    Args:
        config: per-stage widths and twiddle quantization level.
        sign: twiddle sign convention (+1 for the folded negacyclic
            forward transform).
    """

    def __init__(self, config: ApproxFftConfig, sign: int = -1):
        if sign not in (-1, 1):
            raise ValueError("sign must be -1 or +1")
        self.config = config
        self.sign = sign
        n = config.n
        self.stages = config.stages
        self._rev = bit_reverse_indices(n)
        self._rom = (
            TwiddleRom(n, config.twiddle_k, config.twiddle_max_shift, sign)
            if config.twiddle_k
            else None
        )
        self._formats = [FxpFormat(w) for w in config.stage_widths]

    @property
    def output_scale(self) -> float:
        return 2.0 ** -self.stages

    @property
    def dense_mults(self) -> int:
        return (self.config.n // 2) * self.stages

    def _twiddle(self, exponent: int) -> complex:
        """Quantized (or exact) twiddle ``W_n^(sign * exponent)``."""
        n = self.config.n
        if self._rom is not None:
            return complex(self._rom.entry(exponent % n).value)
        return complex(np.exp(self.sign * 2j * np.pi * (exponent % n) / n))

    def run(
        self, x, valid: Optional[Sequence[int]] = None
    ) -> SparseFxpResult:
        """Transform complex input in ``[-1, 1)`` exploiting sparsity.

        Args:
            x: complex vector of length n.
            valid: structural non-zero pattern (inferred if omitted).
        """
        cfg = self.config
        n = cfg.n
        x = np.asarray(x, dtype=np.complex128)
        if x.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {x.shape}")
        if cfg.input_width is not None:
            x = FxpFormat(cfg.input_width).quantize_complex(x)
        if valid is None:
            valid_set = set(np.nonzero(x)[0].tolist())
        else:
            valid_set = {int(v) % n for v in valid}
            stray = set(np.nonzero(x)[0].tolist()) - valid_set
            if stray:
                raise ValueError(
                    "input has non-zeros outside the valid set: "
                    f"{sorted(stray)[:5]}"
                )

        nodes: List[_Node] = []
        for pos in range(n):
            src = int(self._rev[pos])
            if src in valid_set:
                nodes.append(_Node(_Kind.SCALED, src=src, exponent=0, sign=1))
            else:
                nodes.append(_Node(_Kind.ZERO))

        mults = 0
        # Materialized (src, exponent) chain products at full post-shift
        # scale, shared across the network like the exact engine's memo.
        memo: Dict[Tuple[int, int], complex] = {}

        for s in range(1, self.stages + 1):
            m = 1 << s
            half = m >> 1
            fmt = self._formats[s - 1]
            step = n // m
            for block in range(0, n, m):
                for j in range(half):
                    u = block + j
                    v = u + half
                    mults += self._butterfly(
                        nodes, u, v, j * step, s, fmt, x, memo
                    )

        values, mat_mults = self._finalize(nodes, x, memo)
        mults += mat_mults
        return SparseFxpResult(
            values=values, mults=mults, dense_mults=self.dense_mults
        )

    # ------------------------------------------------------------------

    def _materialize(
        self,
        node: _Node,
        stage: int,
        fmt: FxpFormat,
        x: np.ndarray,
        memo: Dict[Tuple[int, int], complex],
    ) -> Tuple[complex, int]:
        """Value of a deferred chain at stage ``stage``'s scale + its cost.

        The chain passed ``stage`` halvings as pure copies (exact shifts),
        then multiplies one quantized ROM entry and rounds once to the
        stage's width.
        """
        exp = node.exponent % self.config.n
        key = (node.src, exp)
        cost = 0
        if key in memo:
            raw = memo[key]
        else:
            raw = self._twiddle(node.exponent) * x[node.src]
            memo[key] = raw
            # Exponent 0 (the raw value) is free; everything else costs one
            # multiplication, exactly like the exact engine's convention.
            if exp != 0:
                cost = 1
        value = node.sign * raw * 2.0**-stage
        if exp == 0:
            # Pure copy chain: halvings are exact shifts of the register
            # value, no multiplier and no rounding happened.
            return complex(value), cost
        return complex(fmt.quantize_complex(np.array([value]))[0]), cost

    def _butterfly(
        self, nodes, u, v, exponent, stage, fmt, x, memo
    ) -> int:
        nu, nv = nodes[u], nodes[v]

        if nv.kind == _Kind.ZERO:
            if nu.kind == _Kind.ZERO:
                return 0
            if nu.kind == _Kind.SCALED:
                # Copies halve exactly; the deferred tag is unchanged
                # (scale is tracked by the stage at materialization).
                nodes[v] = _Node(
                    _Kind.SCALED, src=nu.src, exponent=nu.exponent, sign=nu.sign
                )
                return 0
            half_val = complex(
                fmt.quantize_complex(np.array([nu.value * 0.5]))[0]
            )
            nodes[u] = _Node(_Kind.GENERAL, value=half_val)
            nodes[v] = _Node(_Kind.GENERAL, value=half_val)
            return 0

        if nu.kind == _Kind.ZERO:
            if nv.kind == _Kind.SCALED:
                # Merging: accumulate the exponent, defer the multiply.
                e = nv.exponent + exponent
                nodes[u] = _Node(
                    _Kind.SCALED, src=nv.src, exponent=e, sign=nv.sign
                )
                nodes[v] = _Node(
                    _Kind.SCALED, src=nv.src, exponent=e, sign=-nv.sign
                )
                return 0
            t = self._twiddle(exponent) * nv.value * 0.5
            t = complex(fmt.quantize_complex(np.array([t]))[0])
            nodes[u] = _Node(_Kind.GENERAL, value=t)
            nodes[v] = _Node(_Kind.GENERAL, value=-t)
            return 1

        mults = 0
        if nu.kind == _Kind.SCALED:
            # Materialize at the *previous* stage's scale (input domain of
            # this butterfly), then run the normal butterfly.
            u_val, cost = self._materialize(
                nu, stage - 1, self._formats[stage - 1], x, memo
            )
            mults += cost
        else:
            u_val = nu.value

        if nv.kind == _Kind.SCALED:
            # The butterfly multiplier computes ROM[e_v + e] * x directly.
            chain = _Node(
                _Kind.SCALED,
                src=nv.src,
                exponent=nv.exponent + exponent,
                sign=nv.sign,
            )
            t, _ = self._materialize(
                chain, stage - 1, self._formats[stage - 1], x, memo
            )
        else:
            t = self._twiddle(exponent) * nv.value
        mults += 1

        out_u = complex(fmt.quantize_complex(np.array([(u_val + t) * 0.5]))[0])
        out_v = complex(fmt.quantize_complex(np.array([(u_val - t) * 0.5]))[0])
        nodes[u] = _Node(_Kind.GENERAL, value=out_u)
        nodes[v] = _Node(_Kind.GENERAL, value=out_v)
        return mults

    def _finalize(self, nodes, x, memo) -> Tuple[np.ndarray, int]:
        n = self.config.n
        values = np.empty(n, dtype=np.complex128)
        fmt = self._formats[-1]
        mults = 0
        groups: Dict[Tuple[int, int], complex] = {}
        for pos, node in enumerate(nodes):
            if node.kind == _Kind.ZERO:
                values[pos] = 0j
            elif node.kind == _Kind.GENERAL:
                values[pos] = node.value
            else:
                key = (node.src, node.exponent % n)
                if key not in groups and key not in memo:
                    groups[key] = 0j
                    mults += 1
                value, _ = self._materialize(node, self.stages, fmt, x, {})
                values[pos] = value
        return values, mults


class SparseApproxNegacyclic:
    """FLASH's complete weight path: folded negacyclic + sparse FXP FFT.

    Drop-in sibling of :class:`repro.fftcore.approx_pipeline.ApproxNegacyclic`
    whose weight transform runs on the combined sparse fixed-point engine,
    configured once per layer with the structural sparsity pattern.

    Args:
        n: polynomial length (ring degree).
        weight_config: fixed-point configuration of the n/2-point core.
        valid_pattern: structural non-zero pattern of weight polynomials in
            natural coefficient order (e.g. from
            :func:`repro.encoding.conv_encoding.Conv2dEncoder.weight_valid_indices`);
            inferred per call when omitted.
    """

    def __init__(
        self,
        n: int,
        weight_config: ApproxFftConfig,
        valid_pattern: Optional[Sequence[int]] = None,
    ):
        from repro.fftcore.negacyclic import NegacyclicFft
        from repro.sparse.patterns import fold_valid_indices

        if weight_config.n != n // 2:
            raise ValueError(
                f"weight core must be {n // 2}-point, got {weight_config.n}"
            )
        self.n = n
        self.base = NegacyclicFft(n)
        self.engine = SparseFixedPointFft(weight_config, sign=+1)
        self._pattern = (
            None
            if valid_pattern is None
            else fold_valid_indices(valid_pattern, n)
        )
        self.last_mults = 0

    def weight_forward(self, weight):
        """Approximate sparse transform of an integer weight polynomial."""
        from repro.fftcore.approx_pipeline import ApproxSpectrum, _next_pow2

        weight = np.asarray(weight, dtype=np.float64)
        folded = self.base.fold(weight)
        part_max = max(
            float(np.max(np.abs(folded.real))),
            float(np.max(np.abs(folded.imag))),
            1.0,
        )
        scale = _next_pow2(part_max * (1.0 + 2.0 ** -20))
        result = self.engine.run(folded / scale, valid=self._pattern)
        self.last_mults = result.mults
        unscaled = result.values / self.engine.output_scale * scale
        return ApproxSpectrum(values=unscaled, scale=scale)

    def activation_forward(self, activation):
        return self.base.forward(activation)

    def multiply_spectra(self, weight_spec, act_spec):
        return self.base.inverse(weight_spec.values * np.asarray(act_spec))

    def multiply(self, weight, activation, modulus: int = 0):
        """Full pipeline with the sparse approximate weight transform."""
        from repro.fftcore.negacyclic import round_to_integers

        w_spec = self.weight_forward(weight)
        a_spec = self.activation_forward(
            np.asarray(activation, dtype=np.float64)
        )
        product = self.multiply_spectra(w_spec, a_spec)
        return round_to_integers(product, modulus)
