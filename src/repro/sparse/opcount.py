"""Multiplication-count models for homomorphic convolution (Figure 11(a)).

Compares, per polynomial multiplication (PolyMul) of one conv layer:

* the classical dense FFT dataflow,
* FLASH's sparse skipping/merging dataflow,
* direct computation in the coefficient domain (no transforms at all).

Counts are normalized "per PolyMul per layer" like the paper: the input
(activation) transform is shared across all output channels, and inverse
transforms happen once per output channel after spectrum-domain
accumulation across input tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.encoding.conv_encoding import Conv2dEncoder, ConvShape
from repro.sparse.dataflow import SparseFft
from repro.sparse.patterns import conv_weight_pattern, fold_valid_indices


def dense_fft_mults(n_core: int) -> int:
    """Dense dataflow multiplications of an n_core-point FFT."""
    if n_core < 2 or n_core & (n_core - 1):
        raise ValueError(f"n_core must be a power of two >= 2, got {n_core}")
    return (n_core // 2) * (n_core.bit_length() - 1)


@lru_cache(maxsize=512)
def _sparse_count_cached(n_core: int, pattern: Tuple[int, ...]) -> int:
    engine = SparseFft(n_core, sign=+1)
    return engine.count(list(pattern)).mults


def sparse_fft_mults(valid_folded: Sequence[int], n_core: int) -> int:
    """Sparse dataflow multiplications for one folded weight pattern."""
    pattern = tuple(sorted({int(v) % n_core for v in valid_folded}))
    return _sparse_count_cached(n_core, pattern)


def direct_coeff_mults(valid_count: int, n: int) -> int:
    """Coefficient-domain PolyMul: each valid weight scales all n inputs."""
    return valid_count * n


@dataclass(frozen=True)
class PolyMulCounts:
    """Multiplications per PolyMul for all three methods."""

    n: int
    sparsity: float
    dense_fft: float
    sparse_fft: float
    direct: float

    @property
    def sparse_reduction(self) -> float:
        """Fraction of dense-FFT multiplications removed by sparsity."""
        if self.dense_fft == 0:
            return 0.0
        return 1.0 - self.sparse_fft / self.dense_fft


def conv_polymul_counts(shape: ConvShape, n: int) -> PolyMulCounts:
    """Fig 11(a) datapoint for a real conv layer shape.

    Per PolyMul of the layer (``tiles x out_channels`` products total):

    * weight transform: sparse (or dense) count on the n/2-point core;
    * activation transform: dense, amortized over ``out_channels``;
    * point-wise product: n/2 complex multiplications;
    * inverse transform: dense, amortized over ``tiles`` (spectra are
      accumulated across tiles before the single inverse per channel).
    """
    if shape.stride != 1:
        raise ValueError("decompose strided shapes before counting")
    enc = Conv2dEncoder(shape, n)
    n_core = n // 2
    m = shape.out_channels
    tiles = enc.num_tiles

    pattern = conv_weight_pattern(enc, tile=0)
    w_sparse = sparse_fft_mults(pattern, n_core)
    w_dense = dense_fft_mults(n_core)
    act = dense_fft_mults(n_core) / m  # shared across output channels
    pointwise = n_core
    inverse = dense_fft_mults(n_core) / tiles  # accumulated across tiles

    valid_count = len(enc.weight_valid_indices(0))
    return PolyMulCounts(
        n=n,
        sparsity=enc.weight_sparsity(0),
        dense_fft=w_dense + act + pointwise + inverse,
        sparse_fft=w_sparse + act + pointwise + inverse,
        direct=direct_coeff_mults(valid_count, n),
    )


def synthetic_polymul_counts(
    n: int,
    valid_pattern: Sequence[int],
    out_channels: int = 64,
    tiles: int = 1,
) -> PolyMulCounts:
    """Fig 11(a) datapoint for a synthetic valid pattern at any sparsity."""
    n_core = n // 2
    folded = fold_valid_indices(valid_pattern, n)
    w_sparse = sparse_fft_mults(folded, n_core)
    w_dense = dense_fft_mults(n_core)
    act = dense_fft_mults(n_core) / out_channels
    pointwise = n_core
    inverse = dense_fft_mults(n_core) / tiles
    valid_count = len({int(v) % n for v in valid_pattern})
    return PolyMulCounts(
        n=n,
        sparsity=1.0 - valid_count / n,
        dense_fft=w_dense + act + pointwise + inverse,
        sparse_fft=w_sparse + act + pointwise + inverse,
        direct=direct_coeff_mults(valid_count, n),
    )


def weight_transform_reduction(shape: ConvShape, n: int) -> float:
    """Fraction of weight-transform multiplications skipped for a layer.

    The abstract's ">86% unnecessary computations skipped" aggregates this
    over ResNet layers.
    """
    enc = Conv2dEncoder(shape, n)
    pattern = conv_weight_pattern(enc, tile=0)
    n_core = n // 2
    return 1.0 - sparse_fft_mults(pattern, n_core) / dense_fft_mults(n_core)


def crossover_sparsity(
    n: int, sparsities: Sequence[float], out_channels: int = 64
) -> np.ndarray:
    """Sweep sparsity levels with uniform-stride patterns (Fig 11(a) x-axis).

    Returns a structured array of (sparsity, dense, sparse, direct) rows.
    """
    from repro.sparse.patterns import uniform_stride_pattern

    rows = []
    for s in sparsities:
        count = max(1, int(round((1.0 - s) * n)))
        pattern = uniform_stride_pattern(n, count)
        c = synthetic_polymul_counts(n, pattern, out_channels=out_channels)
        rows.append((c.sparsity, c.dense_fft, c.sparse_fft, c.direct))
    return np.array(
        rows,
        dtype=[
            ("sparsity", float),
            ("dense_fft", float),
            ("sparse_fft", float),
            ("direct", float),
        ],
    )
