"""Error budgets and network-wide design-space exploration.

The paper's constrained formulation (Section IV-C2) is ``min power s.t.
error < T_err`` per layer.  This module derives each layer's ``T_err``
from the network itself -- the re-quantization step after a layer discards
``shift`` LSBs, so HConv output errors below a fraction of ``2^shift``
cannot change the re-quantized activation -- and runs the per-layer DSE
under those budgets, yielding one approximate-FFT configuration per layer
plus the aggregate power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.explore import LayerDseResult, explore_layer, stride1_phase
from repro.dse.space import DesignPoint
from repro.encoding.conv_encoding import ConvShape


def requant_error_budget(shift: int, confidence_sigmas: float = 3.0) -> float:
    """Error variance tolerated by a ``shift``-bit re-quantization.

    The rounding threshold is half the step ``2^shift``; errors whose
    ``confidence_sigmas``-sigma range stays below it leave the
    re-quantized value unchanged with high probability.
    """
    if shift < 0:
        raise ValueError("shift must be >= 0")
    threshold = 0.5 * (1 << shift)
    return (threshold / confidence_sigmas) ** 2


@dataclass
class LayerPlan:
    """Chosen configuration for one layer."""

    name: str
    shape: ConvShape
    error_budget: float
    point: Optional[DesignPoint]
    power_mw: float
    error_variance: float

    @property
    def feasible(self) -> bool:
        return self.point is not None


@dataclass
class NetworkPlan:
    """Per-layer DSE outcome for a whole network."""

    layers: List[LayerPlan]

    @property
    def total_power_mw(self) -> float:
        return sum(l.power_mw for l in self.layers if l.feasible)

    @property
    def all_feasible(self) -> bool:
        return all(l.feasible for l in self.layers)

    def summary_rows(self) -> List[List[str]]:
        rows = []
        for plan in self.layers:
            if plan.feasible:
                widths = plan.point.stage_widths
                rows.append(
                    [plan.name, f"{plan.error_budget:.2e}",
                     f"{min(widths)}..{max(widths)}", str(plan.point.twiddle_k),
                     f"{plan.power_mw:.3f}"]
                )
            else:
                rows.append(
                    [plan.name, f"{plan.error_budget:.2e}", "-", "-",
                     "infeasible"]
                )
        return rows


def explore_network(
    layers: Sequence[Tuple[str, ConvShape, int]],
    n: int = 4096,
    budget_per_layer: int = 40,
    confidence_sigmas: float = 3.0,
    seed: int = 0,
    dedupe: bool = True,
) -> NetworkPlan:
    """Run the constrained DSE for every layer of a network.

    Args:
        layers: ``(name, shape, requant_shift)`` triples; strided shapes
            are reduced to their dominant stride-1 phase.
        n: ring degree.
        budget_per_layer: DSE evaluations per distinct layer geometry.
        confidence_sigmas: error-budget confidence (see
            :func:`requant_error_budget`).
        seed: search randomness.
        dedupe: reuse search results across layers that share geometry
            (ResNets repeat block shapes many times).

    Returns:
        a :class:`NetworkPlan`; layers whose budget no explored point
        meets are marked infeasible (raise the budget or the search
        effort).
    """
    plans: List[LayerPlan] = []
    cache: Dict[Tuple, LayerDseResult] = {}
    for index, (name, shape, shift) in enumerate(layers):
        phase = stride1_phase(shape)
        if phase.padded_height * phase.padded_width > n:
            from repro.hw.workload import spatial_tiles

            phase, _ = spatial_tiles(phase, n)
        key = (
            phase.in_channels, phase.height, phase.width,
            phase.kernel_h, phase.kernel_w,
        )
        if not dedupe or key not in cache:
            cache[key] = explore_layer(
                phase, n=n, budget=budget_per_layer, seed=seed + index
            )
        result = cache[key]
        threshold = requant_error_budget(shift, confidence_sigmas)
        best = result.best_under_error(threshold)
        if best is None:
            plans.append(
                LayerPlan(
                    name=name, shape=phase, error_budget=threshold,
                    point=None, power_mw=float("nan"),
                    error_variance=float("nan"),
                )
            )
            continue
        power, error = result.problem.objective(best)
        plans.append(
            LayerPlan(
                name=name, shape=phase, error_budget=threshold,
                point=best, power_mw=power, error_variance=error,
            )
        )
    return NetworkPlan(layers=plans)


def uniform_fallback_plan(
    layers: Sequence[Tuple[str, ConvShape, int]],
    n: int = 4096,
    data_width: int = 27,
    twiddle_k: int = 5,
) -> NetworkPlan:
    """The no-DSE baseline: one uniform configuration for every layer."""
    from repro.dse.explore import LayerDseProblem

    plans = []
    for name, shape, shift in layers:
        phase = stride1_phase(shape)
        if phase.padded_height * phase.padded_width > n:
            from repro.hw.workload import spatial_tiles

            phase, _ = spatial_tiles(phase, n)
        problem = LayerDseProblem(shape=phase, n=n)
        point = problem.space.uniform_point(data_width, twiddle_k)
        power, error = problem.objective(point)
        plans.append(
            LayerPlan(
                name=name, shape=phase,
                error_budget=requant_error_budget(shift),
                point=point, power_mw=power, error_variance=error,
            )
        )
    return NetworkPlan(layers=plans)
