"""Layer-level DSE driver: the complete Figure 10 workflow.

For one convolution layer: build its weight-sparsity pattern, define the
two objectives -- weight-FFT power from the butterfly LUT and HConv output
error variance from the analytical model -- and search the per-stage
bit-width / twiddle-k space with Bayesian optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dse.bayesopt import DseRun, bayesian_optimize, random_search
from repro.dse.error_model import hconv_error_variance
from repro.dse.space import DesignPoint, DesignSpace
from repro.encoding.conv_encoding import Conv2dEncoder, ConvShape
from repro.hw.butterfly import ButterflyLut
from repro.sparse.opcount import sparse_fft_mults
from repro.sparse.patterns import conv_weight_pattern


@dataclass
class LayerDseProblem:
    """Objectives for one layer's approximate-FFT configuration.

    Args:
        shape: the (stride-1) convolution layer shape.
        n: ring degree.
        weight_bits: weight quantization (sets the folded input power).
        activation_power: per-coefficient activation variance (message
            units) used by the error objective.
        lut: butterfly cost LUT (shared across layers).
    """

    shape: ConvShape
    n: int = 4096
    weight_bits: int = 4
    activation_power: float = 8.0
    lut: Optional[ButterflyLut] = None

    def __post_init__(self):
        self.lut = self.lut or ButterflyLut()
        encoder = Conv2dEncoder(self.shape, self.n)
        self._pattern = conv_weight_pattern(encoder)
        self._sparse_mults = sparse_fft_mults(self._pattern, self.n // 2)
        valid = len(encoder.weight_valid_indices(0))
        # The pipeline normalizes the folded weight input by the next
        # power of two above sqrt(2)*max|w| ~= 2^weight_bits; spectrum
        # errors computed in normalized units scale back by that factor.
        self._weight_scale = 2.0**self.weight_bits
        # Folded input power after normalization to [-1, 1): the valid
        # coefficients carry ~uniform w values (power w_max^2/3, i.e.
        # 1/12 of the normalization scale squared), everything else zero.
        self._weight_power = (valid / self.n) * (1.0 / 12.0)

    @property
    def space(self) -> DesignSpace:
        stages = (self.n // 2).bit_length() - 1
        return DesignSpace(stages=stages)

    def power_mw(self, point: DesignPoint) -> float:
        """Average weight-FFT power of the sparse dataflow (one PE)."""
        config = point.to_config(self.n // 2)
        dense = (config.n // 2) * config.stages
        utilization = self._sparse_mults / dense
        return self.lut.fft_power_mw(config) * utilization

    def error_variance(self, point: DesignPoint) -> float:
        """Analytical HConv output error variance for this layer
        (message-domain units)."""
        config = point.to_config(self.n // 2)
        normalized = hconv_error_variance(
            config,
            weight_power=self._weight_power,
            activation_power=self.activation_power,
            poly_n=self.n,
        )
        return normalized * self._weight_scale**2

    def objective(self, point: DesignPoint) -> Tuple[float, float]:
        return self.power_mw(point), self.error_variance(point)


@dataclass
class LayerDseResult:
    """Search output for one layer."""

    problem: LayerDseProblem
    run: DseRun

    def front(self):
        return self.run.front()

    def best_under_error(self, error_threshold: float) -> Optional[DesignPoint]:
        """Lowest-power point meeting ``error < T_err`` (the paper's
        constrained formulation)."""
        best = None
        best_power = np.inf
        for point, (power, err) in zip(self.run.points, self.run.objectives):
            if err < error_threshold and power < best_power:
                best, best_power = point, power
        return best


def stride1_phase(shape: ConvShape) -> ConvShape:
    """Dominant stride-1 phase of a (possibly strided) layer shape.

    The DSE characterizes one polynomial-multiplication pattern per layer;
    for strided layers that is the first phase of the standard stride
    decomposition (the others share its structure).
    """
    from repro.encoding.conv_encoding import decompose_strided

    padded = ConvShape(
        in_channels=shape.in_channels,
        height=shape.padded_height,
        width=shape.padded_width,
        out_channels=shape.out_channels,
        kernel_h=shape.kernel_h,
        kernel_w=shape.kernel_w,
        stride=shape.stride,
        padding=0,
    )
    phase, _, _ = decompose_strided(padded)[0]
    return phase


def explore_layer(
    shape: ConvShape,
    n: int = 4096,
    budget: int = 60,
    method: str = "bayes",
    seed: int = 0,
    lut: Optional[ButterflyLut] = None,
    activation_power: float = 8.0,
) -> LayerDseResult:
    """Run the DSE for one layer (Figures 11(b) and (c)).

    Args:
        shape: stride-1 convolution shape (decompose strided layers first,
            or pass the dominant phase).
        n: ring degree.
        budget: objective evaluations.
        method: ``"bayes"`` or ``"random"``.
        seed: search randomness.
        lut: shared butterfly LUT.
        activation_power: activation variance for the error objective.
    """
    problem = LayerDseProblem(
        shape=shape, n=n, lut=lut, activation_power=activation_power
    )
    rng = np.random.default_rng(seed)
    if method == "bayes":
        run = bayesian_optimize(problem.space, problem.objective, budget, rng=rng)
    elif method == "random":
        run = random_search(problem.space, problem.objective, budget, rng=rng)
    else:
        raise ValueError(f"unknown method {method!r}")
    return LayerDseResult(problem=problem, run=run)
