"""Pareto-front utilities for the two-objective (power, error) DSE."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def pareto_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (minimization, any #objectives).

    A row dominates another if it is <= everywhere and < somewhere.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    if obj.ndim != 2:
        raise ValueError("objectives must be a 2D array (points x objectives)")
    count = obj.shape[0]
    mask = np.ones(count, dtype=bool)
    for i in range(count):
        if not mask[i]:
            continue
        dominates_i = np.all(obj <= obj[i], axis=1) & np.any(obj < obj[i], axis=1)
        if np.any(dominates_i & mask):
            mask[i] = False
    return mask


def pareto_front(
    points: Sequence, objectives: np.ndarray
) -> Tuple[List, np.ndarray]:
    """Non-dominated subset of ``points``, sorted by the first objective."""
    obj = np.asarray(objectives, dtype=np.float64)
    if len(points) != obj.shape[0]:
        raise ValueError("points and objectives must align")
    mask = pareto_mask(obj)
    idx = np.nonzero(mask)[0]
    order = idx[np.argsort(obj[idx, 0])]
    return [points[i] for i in order], obj[order]


def hypervolume_2d(objectives: np.ndarray, reference: Tuple[float, float]) -> float:
    """Dominated hypervolume of a 2D minimization front w.r.t. ``reference``.

    Standard staircase integration; points beyond the reference point are
    clipped out.
    """
    obj = np.asarray(objectives, dtype=np.float64)
    if obj.ndim != 2 or obj.shape[1] != 2:
        raise ValueError("hypervolume_2d needs (points x 2) objectives")
    mask = pareto_mask(obj)
    front = obj[mask]
    front = front[(front[:, 0] < reference[0]) & (front[:, 1] < reference[1])]
    if front.size == 0:
        return 0.0
    front = front[np.argsort(front[:, 0])]
    volume = 0.0
    prev_y = reference[1]
    for x, y in front:
        volume += (reference[0] - x) * (prev_y - y)
        prev_y = y
    return float(volume)
