"""The approximate-FFT design space (Section IV-C2).

A design point fixes the data bit-width of every FFT stage plus the
twiddle quantization level ``k`` -- the variables of the paper's
``min power s.t. error < T_err`` formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.fftcore.fixed_point import ApproxFftConfig


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration: per-stage widths + twiddle level."""

    stage_widths: Tuple[int, ...]
    twiddle_k: int

    def to_config(self, n: int) -> ApproxFftConfig:
        if len(self.stage_widths) != n.bit_length() - 1:
            raise ValueError(
                f"point has {len(self.stage_widths)} stages; n={n} needs "
                f"{n.bit_length() - 1}"
            )
        return ApproxFftConfig(
            n=n, stage_widths=list(self.stage_widths), twiddle_k=self.twiddle_k
        )


class DesignSpace:
    """Sampling and encoding of design points.

    Args:
        stages: number of FFT stages (``log2(n_core)``).
        width_range: inclusive bounds of per-stage data widths.
        k_range: inclusive bounds of the twiddle quantization level.
    """

    def __init__(
        self,
        stages: int,
        width_range: Tuple[int, int] = (8, 39),
        k_range: Tuple[int, int] = (2, 18),
    ):
        if stages < 1:
            raise ValueError("need at least one stage")
        if width_range[0] > width_range[1] or k_range[0] > k_range[1]:
            raise ValueError("invalid ranges")
        if width_range[0] < 2:
            raise ValueError("widths below 2 bits are not representable")
        self.stages = stages
        self.width_range = width_range
        self.k_range = k_range

    @property
    def dimensions(self) -> int:
        return self.stages + 1

    def sample(self, rng: np.random.Generator) -> DesignPoint:
        widths = tuple(
            int(w)
            for w in rng.integers(
                self.width_range[0], self.width_range[1] + 1, size=self.stages
            )
        )
        k = int(rng.integers(self.k_range[0], self.k_range[1] + 1))
        return DesignPoint(stage_widths=widths, twiddle_k=k)

    def sample_many(self, count: int, rng: np.random.Generator) -> List[DesignPoint]:
        return [self.sample(rng) for _ in range(count)]

    def neighbors(
        self, point: DesignPoint, rng: np.random.Generator, count: int = 4
    ) -> List[DesignPoint]:
        """Local perturbations: +-1..3 on a few stages / the twiddle level."""
        out = []
        for _ in range(count):
            widths = list(point.stage_widths)
            for idx in rng.choice(self.stages, size=min(2, self.stages), replace=False):
                widths[idx] = int(
                    np.clip(
                        widths[idx] + rng.integers(-3, 4),
                        self.width_range[0],
                        self.width_range[1],
                    )
                )
            k = int(
                np.clip(
                    point.twiddle_k + rng.integers(-2, 3),
                    self.k_range[0],
                    self.k_range[1],
                )
            )
            out.append(DesignPoint(tuple(widths), k))
        return out

    def encode(self, point: DesignPoint) -> np.ndarray:
        """Normalize a point into [0, 1]^dims for the surrogate model."""
        lo, hi = self.width_range
        w = (np.array(point.stage_widths, dtype=np.float64) - lo) / max(hi - lo, 1)
        klo, khi = self.k_range
        k = (point.twiddle_k - klo) / max(khi - klo, 1)
        return np.concatenate([w, [k]])

    def clip(self, point: DesignPoint) -> DesignPoint:
        lo, hi = self.width_range
        widths = tuple(int(np.clip(w, lo, hi)) for w in point.stage_widths)
        k = int(np.clip(point.twiddle_k, *self.k_range))
        return DesignPoint(widths, k)

    def uniform_point(self, width: int, k: int) -> DesignPoint:
        return self.clip(DesignPoint((width,) * self.stages, k))
