"""Gaussian-process Bayesian optimization (the Figure 10 search engine).

A from-scratch GP surrogate (RBF kernel, Cholesky solve) with expected
improvement, run in ParEGO style for the two-objective problem: each
iteration draws a random scalarization weight, fits the GP to the
augmented-Chebyshev scalarized objective, and evaluates the
max-EI candidate from a pool of random samples and neighbors of the
current front.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.dse.pareto import pareto_front
from repro.dse.space import DesignPoint, DesignSpace

Objective = Callable[[DesignPoint], Tuple[float, float]]


class GaussianProcess:
    """Minimal RBF-kernel GP regressor with observation noise.

    Args:
        length_scale: RBF length scale in the normalized input space.
        signal_var: kernel amplitude.
        noise_var: observation noise (also the Cholesky jitter).
    """

    def __init__(
        self,
        length_scale: float = 0.3,
        signal_var: float = 1.0,
        noise_var: float = 1e-4,
    ):
        if length_scale <= 0 or signal_var <= 0 or noise_var <= 0:
            raise ValueError("GP hyper-parameters must be positive")
        self.length_scale = length_scale
        self.signal_var = signal_var
        self.noise_var = noise_var
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return self.signal_var * np.exp(-0.5 * np.maximum(d2, 0.0) / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x) + self.noise_var * np.eye(x.shape[0])
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, yn)
        )
        self._x = x
        return self

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points."""
        if self._x is None:
            raise RuntimeError("fit() must be called before predict()")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        ks = self._kernel(x, self._x)
        mean = ks @ self._alpha
        v = np.linalg.solve(self._chol, ks.T)
        var = self.signal_var - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float
) -> np.ndarray:
    """EI for minimization: ``E[max(best - f, 0)]`` under the posterior."""
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    z = (best - np.asarray(mean, dtype=np.float64)) / std
    phi = np.exp(-0.5 * z**2) / math.sqrt(2 * math.pi)
    big_phi = 0.5 * (1.0 + np.vectorize(math.erf)(z / math.sqrt(2.0)))
    return (best - mean) * big_phi + std * phi


@dataclass
class DseRun:
    """All evaluated points of one search plus the resulting front."""

    points: List[DesignPoint] = field(default_factory=list)
    objectives: List[Tuple[float, float]] = field(default_factory=list)

    def front(self) -> Tuple[List[DesignPoint], np.ndarray]:
        return pareto_front(self.points, np.array(self.objectives))

    def as_array(self) -> np.ndarray:
        return np.array(self.objectives, dtype=np.float64)


def _scalarize(obj: np.ndarray, weight: float) -> np.ndarray:
    """Augmented Chebyshev scalarization over normalized objectives."""
    lo = obj.min(axis=0)
    hi = obj.max(axis=0)
    norm = (obj - lo) / np.maximum(hi - lo, 1e-12)
    w = np.array([weight, 1.0 - weight])
    weighted = norm * w
    return weighted.max(axis=1) + 0.05 * weighted.sum(axis=1)


def bayesian_optimize(
    space: DesignSpace,
    objective: Objective,
    budget: int = 60,
    initial: int = 12,
    candidate_pool: int = 128,
    rng: Optional[np.random.Generator] = None,
) -> DseRun:
    """ParEGO-style multi-objective Bayesian optimization.

    Args:
        space: the design space.
        objective: maps a point to ``(power, error)`` (both minimized).
        budget: total evaluations (including the initial design).
        initial: random points evaluated before the GP takes over.
        candidate_pool: candidates scored by EI per iteration.
        rng: randomness.

    Returns:
        a :class:`DseRun` with every evaluated point.
    """
    if budget < initial:
        raise ValueError("budget must cover the initial design")
    rng = rng or np.random.default_rng(0)
    run = DseRun()
    seen = set()

    def evaluate(point: DesignPoint) -> None:
        if point in seen:
            return
        seen.add(point)
        run.points.append(point)
        run.objectives.append(tuple(float(v) for v in objective(point)))

    for point in space.sample_many(initial, rng):
        evaluate(point)
    # Seed the corners so the front is anchored.
    evaluate(space.uniform_point(space.width_range[0], space.k_range[0]))
    evaluate(space.uniform_point(space.width_range[1], space.k_range[1]))

    while len(run.points) < budget:
        obj = run.as_array()
        weight = float(rng.uniform(0.05, 0.95))
        y = _scalarize(obj, weight)
        x = np.array([space.encode(p) for p in run.points])
        gp = GaussianProcess().fit(x, y)

        candidates = space.sample_many(candidate_pool // 2, rng)
        front_points, _ = run.front()
        for p in front_points[: max(1, len(front_points))]:
            candidates.extend(space.neighbors(p, rng, count=3))
        candidates = [c for c in candidates if c not in seen]
        if not candidates:
            candidates = space.sample_many(8, rng)
        cx = np.array([space.encode(c) for c in candidates])
        mean, std = gp.predict(cx)
        ei = expected_improvement(mean, std, float(y.min()))
        evaluate(candidates[int(np.argmax(ei))])
    return run


def random_search(
    space: DesignSpace,
    objective: Objective,
    budget: int = 60,
    rng: Optional[np.random.Generator] = None,
) -> DseRun:
    """Pure random baseline with the same evaluation budget."""
    rng = rng or np.random.default_rng(0)
    run = DseRun()
    for point in space.sample_many(budget, rng):
        run.points.append(point)
        run.objectives.append(tuple(float(v) for v in objective(point)))
    return run
