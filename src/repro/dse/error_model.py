"""Analytical error-variance model of the approximate FFT (Figure 10's
"analytical simulations").

Two noise sources per stage ``i`` of the scaled-butterfly pipeline:

* data quantization to ``dw_i`` bits: uniform noise of variance
  ``ulp_i^2 / 12`` per real component, with ``ulp_i = 2^-(dw_i - 1)``;
* twiddle quantization at level ``k``: a relative multiplicative error
  ``eps_k`` on the (unit-magnitude) twiddle, injecting variance
  ``eps_k^2 * P_{i-1}`` where ``P_{i-1}`` is the per-component signal
  power entering the stage.

With the per-stage halving, both signal power and propagated noise
variance halve per stage, so noise injected at stage ``i`` reaches the
output attenuated by ``2^-(S-i)``; un-scaling multiplies amplitudes by
``2^S``.  Tests validate the model against Monte-Carlo simulation of the
bit-true pipeline.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.fftcore.fixed_point import ApproxFftConfig
from repro.fftcore.twiddle_quant import TwiddleRom


#: Structured-cancellation factor of deterministic CSD twiddle errors,
#: calibrated once against the bit-true simulator (tests keep model and
#: measurement within a small factor across the k / dw grid).
TWIDDLE_CORRELATION = 0.35


@lru_cache(maxsize=128)
def twiddle_relative_error(n: int, k: int, max_shift: int = 16) -> float:
    """RMS relative error of a level-k twiddle ROM (cached)."""
    if k <= 0:
        return 0.0
    return TwiddleRom(n, k, max_shift).stats().rms_error


@lru_cache(maxsize=128)
def stage_twiddle_errors(n: int, k: int, max_shift: int = 16):
    """Per-stage RMS twiddle error (early stages use trivial twiddles)."""
    stages = n.bit_length() - 1
    if k <= 0:
        return tuple(0.0 for _ in range(stages))
    rom = TwiddleRom(n, k, max_shift)
    out = []
    for s in range(1, stages + 1):
        approx = rom.stage_values(s)
        from repro.fftcore.reference import stage_twiddles

        exact = stage_twiddles(n, s, rom.sign)
        err = np.abs(approx - exact)
        out.append(float(np.sqrt(np.mean(err**2))))
    return tuple(out)


def spectrum_error_variance(
    config: ApproxFftConfig,
    signal_power: float = 1.0,
    input_power: Optional[float] = None,
) -> float:
    """Predicted per-component error variance of the *unscaled* spectrum.

    Args:
        config: the fixed-point FFT configuration.
        signal_power: per-component variance of the (normalized) input
            samples -- sets the twiddle-noise contribution.
        input_power: deprecated alias of ``signal_power``.

    Returns:
        variance of (approx - exact spectrum) per complex component, in
        unscaled spectrum units.
    """
    if input_power is not None:
        signal_power = input_power
    stages = config.stages
    eps_per_stage = stage_twiddle_errors(
        config.n, config.twiddle_k, config.twiddle_max_shift
    )
    total = 0.0
    power = signal_power
    if config.input_width is not None:
        ulp0 = 2.0 ** -(config.input_width - 1)
        total += (ulp0**2 / 12.0) * 2.0**-stages
    for i, dw in enumerate(config.stage_widths, start=1):
        injected = 0.0
        # Twiddle error perturbs the odd butterfly operand (w*y term):
        # |eps|^2 * P error power, attenuated by the 1/2 amplitude scaling
        # (1/4 in power).  CSD twiddle errors are deterministic and
        # partially cancel along butterfly paths; TWIDDLE_CORRELATION
        # calibrates that structured cancellation against the bit-true
        # Monte-Carlo pipeline (see tests).
        injected += (
            (eps_per_stage[i - 1] ** 2) * power * 0.25 * TWIDDLE_CORRELATION
        )
        ulp = 2.0 ** -(dw - 1)
        injected += ulp**2 / 12.0
        total += injected * 2.0 ** -(stages - i)
        power *= 0.5
    return total * 4.0**stages  # unscale amplitudes by 2^stages


def hconv_error_variance(
    config: ApproxFftConfig,
    weight_power: float,
    activation_power: float,
    poly_n: int,
) -> float:
    """Predicted error variance of HConv output coefficients.

    The weight-spectrum error ``E_k`` multiplies the activation spectrum
    ``A_k``; the inverse transform averages ``n/2`` spectrum products, so
    per-coefficient output variance is ``var(E) * E[|A|^2] / (n/2)`` with
    ``E[|A|^2] ~ n/2 * activation_power * ...`` -- the ``n/2`` factors
    cancel, leaving ``var(E) * activation_power`` up to folding constants.

    Args:
        config: weight-path FFT configuration (core size ``poly_n // 2``).
        weight_power: per-coefficient variance of the *normalized* folded
            weight input (after the [-1,1) scaling).
        activation_power: per-coefficient variance of the activation
            polynomial (message-domain units).
        poly_n: ring degree (for the folded-transform constant).
    """
    var_spec = spectrum_error_variance(config, signal_power=weight_power)
    # Folded pipeline: each output coefficient mixes real/imag parts of
    # n/2 products; empirical constant 1.0 absorbs the bookkeeping.
    return var_spec * activation_power * (poly_n / (poly_n / 2.0)) / 2.0


def monte_carlo_hconv_error(
    config: ApproxFftConfig,
    weight_poly: np.ndarray,
    poly_n: int,
    trials: int = 8,
    activation_range: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Measured HConv output error variance (pre-rounding, message units).

    Runs the bit-true approximate pipeline against the exact negacyclic
    product; the *unrounded* error is reported because rounding snaps
    sub-0.5 errors to zero (kernel-level robustness), which would hide the
    quantity the DSE optimizes.
    """
    from repro.fftcore.approx_pipeline import ApproxNegacyclic
    from repro.ntt import negacyclic_convolution_naive

    rng = rng or np.random.default_rng(2)
    pipe = ApproxNegacyclic(poly_n, config)
    weight_poly = np.asarray(weight_poly, dtype=np.int64)
    w_spec = pipe.weight_forward(weight_poly)
    errors = []
    for _ in range(trials):
        # repro-lint: disable=DTYPE001  sampled activations are bounded by
        # activation_range (a few bits), far below float64's 2**53 mantissa
        a = rng.integers(
            -activation_range, activation_range, size=poly_n
        ).astype(np.float64)
        approx = pipe.multiply_spectra(w_spec, pipe.activation_forward(a))
        exact = negacyclic_convolution_naive(weight_poly, a.astype(np.int64))
        errors.append(
            approx - np.array([int(v) for v in exact], dtype=np.float64)
        )
    return float(np.var(np.concatenate(errors)))


def monte_carlo_spectrum_error(
    config: ApproxFftConfig,
    trials: int = 16,
    signal_std: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Measured spectrum error variance (validation for the model)."""
    from repro.fftcore.fixed_point import FixedPointFft

    rng = rng or np.random.default_rng(0)
    fxp = FixedPointFft(config, sign=+1)
    acc = 0.0
    count = 0
    for _ in range(trials):
        x = signal_std * (
            rng.standard_normal(config.n) + 1j * rng.standard_normal(config.n)
        )
        x = np.clip(x.real, -0.99, 0.99) + 1j * np.clip(x.imag, -0.99, 0.99)
        approx = fxp(x) / fxp.output_scale
        exact = fxp.reference(x) / fxp.output_scale
        err = approx - exact
        acc += float(np.sum(err.real**2 + err.imag**2)) / 2.0
        count += config.n
    return acc / count
