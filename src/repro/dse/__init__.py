"""Design-space exploration: error model, Bayesian optimization, Pareto."""

from repro.dse.bayesopt import (
    DseRun,
    GaussianProcess,
    bayesian_optimize,
    expected_improvement,
    random_search,
)
from repro.dse.error_model import (
    hconv_error_variance,
    monte_carlo_hconv_error,
    monte_carlo_spectrum_error,
    spectrum_error_variance,
    stage_twiddle_errors,
    twiddle_relative_error,
)
from repro.dse.budget import (
    LayerPlan,
    NetworkPlan,
    explore_network,
    requant_error_budget,
    uniform_fallback_plan,
)
from repro.dse.explore import (
    LayerDseProblem,
    LayerDseResult,
    explore_layer,
    stride1_phase,
)
from repro.dse.pareto import hypervolume_2d, pareto_front, pareto_mask
from repro.dse.space import DesignPoint, DesignSpace

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DseRun",
    "GaussianProcess",
    "LayerDseProblem",
    "LayerPlan",
    "NetworkPlan",
    "LayerDseResult",
    "bayesian_optimize",
    "expected_improvement",
    "explore_layer",
    "explore_network",
    "hconv_error_variance",
    "hypervolume_2d",
    "monte_carlo_hconv_error",
    "monte_carlo_spectrum_error",
    "pareto_front",
    "pareto_mask",
    "random_search",
    "requant_error_budget",
    "spectrum_error_variance",
    "stride1_phase",
    "uniform_fallback_plan",
    "stage_twiddle_errors",
    "twiddle_relative_error",
]
