"""FLASH reproduction: approximate and sparse FFT acceleration for HConv.

Full Python reimplementation of the system described in *FLASH: An Efficient
Hardware Accelerator Leveraging Approximate and Sparse FFT for Homomorphic
Encryption* (DATE 2025): a BFV homomorphic-encryption substrate, Cheetah-style
coefficient encoding for private CNN inference, the approximate fixed-point
FFT with quantized twiddle factors, the sparse skipping/merging butterfly
dataflow, the hardware cost/energy models, and the Bayesian-optimization
design-space exploration.

Subpackages
-----------
``repro.ntt``       exact negacyclic NTT and modular arithmetic (baseline)
``repro.he``        BFV scheme (keygen / encrypt / decrypt / evaluate)
``repro.fftcore``   reference, negacyclic, and fixed-point approximate FFTs
``repro.sparse``    sparse butterfly dataflow (skipping + merging)
``repro.encoding``  Cheetah coefficient encoding for conv and linear layers
``repro.protocol``  hybrid HE/2PC secret-sharing protocol simulation
``repro.nn``        quantized numpy CNNs and ResNet shape tables
``repro.hw``        multiplier / butterfly / accelerator cost models
``repro.dse``       design-space exploration (error model + Bayesian opt)
``repro.core``      FLASH top-level API (HConv pipelines, accelerator facade)
``repro.analysis``  latency profiles and report formatting
"""

__version__ = "1.0.0"
