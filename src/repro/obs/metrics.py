"""Unified metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` instance is the single metrics surface of a
process (the serve front end owns one and exposes it through
``health()``).  It does **not** replace the existing per-layer stats
objects -- ``RuntimeStats``, ``ProtocolStats``, ``ClusterStats``,
``ServeStats`` keep their invariants and tests -- instead the
``absorb_*`` adapters project those objects into the registry on demand.

Determinism rules:

- Histogram bucket boundaries are fixed at construction (default
  :data:`DEFAULT_LATENCY_BUCKETS_MS`), never adaptive, so two runs with
  the same observations produce identical bucket vectors.
- ``to_dict()`` / ``to_text()`` emit series sorted by (name, labels), so
  snapshots diff cleanly.

Thread safety: acceptor threads, the coalescer, and the test harness all
write concurrently; every read-modify-write happens under one internal
lock (``repro lint --concurrency`` runs over this package in CI).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Fixed latency bucket upper bounds (milliseconds).  A value ``v`` lands
#: in the first bucket with ``v <= bound``; larger values overflow into
#: the implicit ``+Inf`` bucket.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render(name: str, key: _LabelKey) -> str:
    if not key:
        return name
    inner = ",".join('%s="%s"' % (k, v) for k, v in key)
    return "%s{%s}" % (name, inner)


class _Histogram:
    """Fixed-boundary histogram cell.  Callers synchronize."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by ``(name, labels)``."""

    def __init__(
        self, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    ):
        if list(buckets) != sorted(set(float(b) for b in buckets)):
            raise ValueError("buckets must be strictly increasing")
        self._lock = threading.Lock()
        self._buckets = tuple(float(b) for b in buckets)
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], _Histogram] = {}

    # -- writing ----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            cell = self._histograms.get(key)
            if cell is None:
                cell = _Histogram(self._buckets)
                self._histograms[key] = cell
            cell.observe(float(value))

    # -- reading ----------------------------------------------------------

    def counter_value(
        self, name: str, default: float = 0.0, **labels: object
    ) -> float:
        with self._lock:
            return self._counters.get((name, _label_key(labels)), default)

    def gauge_value(
        self, name: str, default: Optional[float] = None, **labels: object
    ) -> Optional[float]:
        with self._lock:
            return self._gauges.get((name, _label_key(labels)), default)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot, deterministically ordered."""
        with self._lock:
            counters = {
                _render(name, key): value
                for (name, key), value in self._counters.items()
            }
            gauges = {
                _render(name, key): value
                for (name, key), value in self._gauges.items()
            }
            histograms = {}
            for (name, key), cell in self._histograms.items():
                histograms[_render(name, key)] = {
                    "buckets": list(cell.bounds),
                    "counts": list(cell.counts),
                    "sum": cell.total,
                    "count": cell.count,
                }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def to_text(self) -> str:
        """Prometheus-style text exposition (cumulative ``_bucket`` rows)."""
        snap = self.to_dict()
        lines: List[str] = []
        for series, value in snap["counters"].items():
            lines.append("%s %g" % (series, value))
        for series, value in snap["gauges"].items():
            lines.append("%s %g" % (series, value))
        for series, cell in snap["histograms"].items():
            name, brace, inner = series.partition("{")
            inner = inner[:-1] if brace else ""
            cumulative = 0
            for bound, count in zip(
                list(cell["buckets"]) + ["+Inf"], cell["counts"]
            ):
                cumulative += count
                extra = 'le="%s"' % bound
                joined = "%s,%s" % (inner, extra) if inner else extra
                lines.append("%s_bucket{%s} %d" % (name, joined, cumulative))
            suffix = "{%s}" % inner if inner else ""
            lines.append("%s_sum%s %g" % (name, suffix, cell["sum"]))
            lines.append("%s_count%s %d" % (name, suffix, cell["count"]))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Adapters: project existing stats objects into a registry.  Counters in
# the sources are cumulative, so adapters SET gauges (idempotent across
# repeated absorbs) rather than incrementing counters.
# ---------------------------------------------------------------------------


def absorb_runtime_stats(registry: MetricsRegistry, stats) -> None:
    """Project one :class:`repro.runtime.engine.RuntimeStats` run."""
    mode = getattr(stats, "mode", "unknown")
    registry.inc("runtime_runs_total", 1, mode=mode)
    registry.inc(
        "runtime_products_total", getattr(stats, "products", 0), mode=mode
    )
    registry.inc(
        "runtime_worker_faults_total",
        getattr(stats, "worker_faults", 0),
        mode=mode,
    )
    registry.inc(
        "runtime_weight_transforms_total",
        getattr(stats, "weight_transforms", 0),
        mode=mode,
    )
    total = 0.0
    for stage, seconds in sorted(
        getattr(stats, "stage_seconds", {}).items()
    ):
        registry.inc(
            "runtime_stage_seconds_total", seconds, mode=mode, stage=stage
        )
        registry.observe("runtime_stage_ms", seconds * 1e3, stage=stage)
        total += seconds
    registry.observe("runtime_run_ms", total * 1e3, mode=mode)


def absorb_protocol_stats(registry: MetricsRegistry, stats) -> None:
    """Project a cumulative :class:`repro.protocol.hybrid.ProtocolStats`."""
    for field in (
        "bytes_sent", "bytes_received", "ciphertexts_sent",
        "ciphertexts_returned", "retries", "timeouts",
        "checksum_failures", "dead_letters",
    ):
        value = getattr(stats, field, None)
        if isinstance(value, (int, float)):
            registry.set_gauge("protocol_" + field, float(value))


def absorb_cluster_stats(registry: MetricsRegistry, stats) -> None:
    """Project :class:`repro.cluster.supervisor.ClusterStats` totals."""
    data = stats.to_dict() if hasattr(stats, "to_dict") else dict(stats)
    for key, value in data.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.set_gauge("cluster_" + str(key), float(value))


def absorb_serve_stats(registry: MetricsRegistry, stats_dict: dict) -> None:
    """Project a :meth:`repro.serve.stats.ServeStats.to_dict` snapshot."""
    for key, value in stats_dict.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.set_gauge("serve_" + str(key), float(value))
    shed = stats_dict.get("shed")
    if isinstance(shed, dict):
        for reason, count in shed.items():
            if isinstance(count, (int, float)):
                registry.set_gauge(
                    "serve_shed", float(count), reason=str(reason)
                )
    breaker = stats_dict.get("breaker")
    if isinstance(breaker, dict):
        for key in ("trips", "recoveries"):
            value = breaker.get(key)
            if isinstance(value, (int, float)):
                registry.set_gauge(
                    "serve_breaker_%s" % key, float(value)
                )


__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "absorb_cluster_stats",
    "absorb_protocol_stats",
    "absorb_runtime_stats",
    "absorb_serve_stats",
]
