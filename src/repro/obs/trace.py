"""Low-overhead span tracer with a bounded flight recorder.

Design constraints, in priority order:

1. **Disabled must be near-free.**  Every instrumented hot path runs
   ``obs_trace.tracer.span(...)`` unconditionally; when tracing is off
   that is one module-attribute read plus one truth test returning a
   shared no-op singleton (no allocation, no lock).  ``bench-check``
   gates the measured overhead (< 3% disabled, < 10% enabled).

2. **Thread-safe when enabled.**  Spans finish on acceptor, coalescer,
   fan-out, and supervisor threads concurrently; the ring buffer and id
   counter are guarded by one lock, while parent inference uses a
   per-thread span stack (``threading.local``) that needs none.

3. **Cross-process stitching.**  Span/trace ids mix the pid into their
   high bits so ids allocated in different worker processes never
   collide; timestamps are ``time.monotonic()``, which on Linux is
   CLOCK_MONOTONIC -- system-wide, so worker-side timestamps are
   directly comparable to supervisor-side ones.  The executor stamps the
   caller's context onto job envelopes (:func:`stamp_trace_context`),
   workers strip it (:func:`pop_trace_context`), run under a span
   parented to it, and ship their records back *beside* the result data.

4. **Fork-safe.**  The cluster forks workers while other threads may
   hold the tracer lock; a forked child calls :func:`reset_for_fork`
   first thing, rebinding a fresh :class:`Tracer` so it never touches
   the inherited (possibly locked) one.  Instrumented code therefore
   always accesses ``obs_trace.tracer`` as a module attribute -- never
   ``from repro.obs.trace import tracer``.

Record schema (one dict per finished span or event)::

    {"name": str, "trace": int, "span": int, "parent": int | None,
     "ts": float monotonic-seconds, "dur": float seconds,
     "pid": int, "tid": int, "thread": str,
     "status": "ok" | "error" | "truncated",
     "kind": "span" | "event", "attrs": {...}}
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Envelope key carrying ``[trace_id, span_id]`` over the cluster wire.
#: Workers pop it before execution -- same discipline as ``deadline_ms``.
TRACE_CTX_KEY = "_trace_ctx"

DEFAULT_CAPACITY = 8192


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def end(self, status: str = "ok") -> None:
        return None

    def context(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; becomes a record dict in the ring buffer on exit."""

    __slots__ = (
        "_tracer", "name", "trace_id", "span_id", "parent_id",
        "attrs", "start_s", "_done",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = time.monotonic()
        self._done = False

    def context(self) -> Tuple[int, int]:
        """``(trace_id, span_id)`` -- what children/wire stamps parent to."""
        return (self.trace_id, self.span_id)

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, status: str = "ok") -> None:
        if not self._done:
            self._done = True
            self._tracer._finish(self, status)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> bool:
        self.end("error" if exc_type is not None else "ok")
        return False


class Tracer:
    """Ring-buffered flight recorder with per-thread parent inference.

    All shared mutable state (``_records``, ``_seq``, ``_enabled``,
    ``_incident_dir``) is written only under ``_lock``; the per-thread
    span stacks live in ``threading.local`` and are single-owner.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._lock = threading.Lock()
        self._enabled = False
        self._records: deque = deque(maxlen=int(capacity))
        self._seq = 0
        self._id_base = (os.getpid() & 0x3FFFFF) << 40
        self._incident_dir: Optional[str] = None
        self._incident_seq = 0
        self._local = threading.local()

    # -- lifecycle --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(
        self,
        capacity: Optional[int] = None,
        incident_dir: Optional[str] = None,
    ) -> "Tracer":
        """Turn recording on; optionally resize the ring / arm auto-dumps.

        ``incident_dir`` arms the flight recorder: any
        :meth:`event` with ``incident=True`` (breaker trips, worker
        deaths, chaos failures) dumps the current ring to a Chrome-trace
        JSON file in that directory.
        """
        with self._lock:
            self._enabled = True
            if capacity is not None and capacity != self._records.maxlen:
                self._records = deque(self._records, maxlen=int(capacity))
            if incident_dir is not None:
                self._incident_dir = incident_dir or None
        return self

    def disable(self) -> None:
        with self._lock:
            self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- recording --------------------------------------------------------

    def _alloc_id(self) -> int:
        with self._lock:
            self._seq += 1
            return self._id_base | self._seq

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _resolve_parent(
        self, parent: Optional[Iterable[int]]
    ) -> Optional[Tuple[int, int]]:
        """Explicit ``(trace, span)`` wins; else the thread's active span."""
        if parent is not None:
            ctx = tuple(parent)
            if len(ctx) == 2:
                return (int(ctx[0]), int(ctx[1]))
            return None
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].context()
        return None

    def span(self, name: str, parent: Optional[Iterable[int]] = None,
             **attrs: Any):
        """Open a span (context manager).  No-op singleton when disabled."""
        if not self._enabled:
            return NOOP_SPAN
        ctx = self._resolve_parent(parent)
        if ctx is None:
            trace_id = self._alloc_id()
            parent_id: Optional[int] = None
        else:
            trace_id, parent_id = ctx
        span = Span(self, name, trace_id, self._alloc_id(), parent_id, attrs)
        self._stack().append(span)
        return span

    def _finish(self, span: Span, status: str) -> None:
        end_s = time.monotonic()
        stack = getattr(self._local, "stack", None)
        if stack:
            if stack[-1] is span:
                stack.pop()
            else:
                # Out-of-order end() (span closed on another thread or
                # leaked): remove without disturbing the rest.
                try:
                    stack.remove(span)
                except ValueError:
                    pass
        record = {
            "name": span.name,
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "ts": span.start_s,
            "dur": end_s - span.start_s,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "status": status,
            "kind": "span",
            "attrs": span.attrs,
        }
        with self._lock:
            if self._enabled:
                self._records.append(record)

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent: Optional[Iterable[int]] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Optional[Tuple[int, int]]:
        """Record a span from already-measured timestamps.

        Used where a context manager cannot wrap the work: per-request
        ``serve.execute`` spans cut from one shared batch execution, and
        the supervisor's ``status="truncated"`` marker for a job whose
        worker died mid-span.
        """
        if not self._enabled:
            return None
        ctx = self._resolve_parent(parent) if parent is not None else None
        if ctx is None:
            trace_id = self._alloc_id()
            parent_id: Optional[int] = None
        else:
            trace_id, parent_id = ctx
        span_id = self._alloc_id()
        record = {
            "name": name,
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "ts": float(start_s),
            "dur": max(0.0, float(end_s) - float(start_s)),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "status": status,
            "kind": "span",
            "attrs": dict(attrs),
        }
        with self._lock:
            if self._enabled:
                self._records.append(record)
        return (trace_id, span_id)

    def event(
        self,
        name: str,
        parent: Optional[Iterable[int]] = None,
        incident: bool = False,
        **attrs: Any,
    ) -> None:
        """Record an instant event; ``incident=True`` may dump the ring."""
        if not self._enabled:
            return
        ctx = self._resolve_parent(parent)
        if ctx is None:
            trace_id = self._alloc_id()
            parent_id: Optional[int] = None
        else:
            trace_id, parent_id = ctx
        record = {
            "name": name,
            "trace": trace_id,
            "span": self._alloc_id(),
            "parent": parent_id,
            "ts": time.monotonic(),
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "status": "ok",
            "kind": "event",
            "attrs": dict(attrs, incident=bool(incident)),
        }
        dump: Optional[Tuple[str, List[dict]]] = None
        with self._lock:
            if not self._enabled:
                return
            self._records.append(record)
            if incident and self._incident_dir:
                self._incident_seq += 1
                safe = "".join(
                    c if c.isalnum() or c in "._-" else "_" for c in name
                )
                path = os.path.join(
                    self._incident_dir,
                    "obs-incident-%d-%03d-%s.json"
                    % (os.getpid(), self._incident_seq, safe),
                )
                dump = (path, list(self._records))
        if dump is not None:
            self._write_dump(dump[0], dump[1])

    @staticmethod
    def _write_dump(path: str, records: List[dict]) -> None:
        from repro.obs.export import to_chrome_trace

        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(to_chrome_trace(records), handle)
        except OSError:
            pass  # incident dumps are best-effort; never fail the caller

    # -- reading / transport ----------------------------------------------

    def current_context(self) -> Optional[Tuple[int, int]]:
        """The calling thread's active span context (``None`` when idle)."""
        if not self._enabled:
            return None
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].context()
        return None

    def records(self) -> List[dict]:
        with self._lock:
            return list(self._records)

    def drain(self) -> List[dict]:
        with self._lock:
            out = list(self._records)
            self._records.clear()
        return out

    def ingest(self, records: Iterable[dict]) -> int:
        """Absorb records shipped from another process (worker replies)."""
        if not self._enabled:
            return 0
        cleaned = [
            r for r in records
            if isinstance(r, dict) and "name" in r and "span" in r
        ]
        if not cleaned:
            return 0
        with self._lock:
            if self._enabled:
                self._records.extend(cleaned)
        return len(cleaned)


#: Process-wide default tracer.  Always access as ``obs_trace.tracer``
#: (module attribute) so :func:`reset_for_fork` rebinds take effect.
tracer = Tracer()


def reset_for_fork() -> Tracer:
    """Rebind a fresh disabled tracer; call first thing in forked children.

    A fork can capture the parent's tracer lock *held* by another thread;
    the child must never touch that object.
    """
    global tracer
    tracer = Tracer()
    return tracer


def stamp_trace_context(payloads: Iterable[Dict[str, Any]]):
    """Attach the caller's active span context to job envelopes.

    No-op (no key added) when tracing is disabled or no span is active,
    so untraced payloads are byte-identical to pre-tracing ones.
    """
    ctx = tracer.current_context()
    if ctx is not None:
        for payload in payloads:
            payload[TRACE_CTX_KEY] = [int(ctx[0]), int(ctx[1])]
    return payloads


def pop_trace_context(payload: Any) -> Optional[Tuple[int, int]]:
    """Strip the wire key worker-side; returns the context or ``None``."""
    if not isinstance(payload, dict):
        return None
    ctx = payload.pop(TRACE_CTX_KEY, None)
    if isinstance(ctx, (list, tuple)) and len(ctx) == 2:
        return (int(ctx[0]), int(ctx[1]))
    return None


def traced(name: str, **static_attrs: Any):
    """Decorator wrapping a function in a span when tracing is enabled.

    The disabled fast path is one module-attribute read and one truth
    test before calling through -- cheap enough for per-batch methods
    (do not use it inside per-element inner loops).
    """

    def decorate(fn):
        def wrapper(*args: Any, **kwargs: Any):
            active = tracer
            if not active._enabled:
                return fn(*args, **kwargs)
            with active.span(name, **static_attrs):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", name)
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


__all__ = [
    "DEFAULT_CAPACITY",
    "NOOP_SPAN",
    "Span",
    "TRACE_CTX_KEY",
    "Tracer",
    "pop_trace_context",
    "reset_for_fork",
    "stamp_trace_context",
    "traced",
    "tracer",
]
