"""repro.obs: end-to-end tracing, unified metrics, and profiling exports.

Three pieces, designed to stay out of the hot path unless asked:

- :mod:`repro.obs.trace` -- a low-overhead span tracer.  Instrumented
  code calls ``obs_trace.tracer.span("runtime.encode")``; when tracing
  is disabled (the default) that returns a shared no-op singleton, so
  the cost is one attribute read and one truth test.  When enabled,
  finished spans land in a bounded ring buffer (the flight recorder)
  with monotonic timestamps, pids/thread ids, and parent links inferred
  from a per-thread span stack.  Trace context crosses the CRC32-framed
  cluster wire as a ``_trace_ctx`` envelope key (stripped worker-side,
  same discipline as ``deadline_ms``), so one serve request's spans
  stitch across worker processes while results stay byte-identical.

- :mod:`repro.obs.metrics` -- a lock-disciplined
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms with fixed bucket boundaries) plus adapters that *absorb*
  the existing per-layer stats objects (``RuntimeStats``,
  ``ProtocolStats``, ``ClusterStats``, ``ServeStats``) instead of
  replacing them.

- :mod:`repro.obs.export` -- Chrome-trace (``chrome://tracing``) and
  flamegraph-folded exporters over flight-recorder records, with the
  inverse reader and span-forest analysis behind ``python -m repro obs``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    absorb_cluster_stats,
    absorb_protocol_stats,
    absorb_runtime_stats,
    absorb_serve_stats,
)
from repro.obs.trace import (
    TRACE_CTX_KEY,
    Span,
    Tracer,
    pop_trace_context,
    reset_for_fork,
    stamp_trace_context,
    traced,
    tracer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "Span",
    "TRACE_CTX_KEY",
    "Tracer",
    "absorb_cluster_stats",
    "absorb_protocol_stats",
    "absorb_runtime_stats",
    "absorb_serve_stats",
    "pop_trace_context",
    "reset_for_fork",
    "stamp_trace_context",
    "traced",
    "tracer",
]
