"""Exporters and analysis over flight-recorder records.

Two output formats:

- **Chrome trace** (``chrome://tracing`` / Perfetto): span records
  become ``"ph": "X"`` complete events (``ts``/``dur`` in microseconds,
  rebased so the earliest record starts at 0), events become
  ``"ph": "i"`` instants.  The trace/span/parent ids travel in ``args``
  so :func:`from_chrome_trace` can reconstruct the records exactly --
  the ``python -m repro obs`` analyzer and the stitching tests run on
  round-tripped files.

- **Flamegraph folded** stacks (``a;b;c <self-time-us>`` lines, one per
  unique root-to-span path, self time = duration minus recorded
  children), consumable by ``flamegraph.pl`` / speedscope.

:func:`forest` groups spans per trace id and classifies roots vs
orphans (a span whose parent id is absent from the record set) -- the
acceptance check for cross-process stitching.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

_CORE_ARGS = ("trace", "span", "parent", "status")


def to_chrome_trace(records: List[dict]) -> dict:
    """Render records as a ``chrome://tracing`` JSON object."""
    events = []
    if records:
        t0 = min(float(r.get("ts", 0.0)) for r in records)
    else:
        t0 = 0.0
    for r in records:
        args = {
            "trace": r.get("trace"),
            "span": r.get("span"),
            "parent": r.get("parent"),
            "status": r.get("status", "ok"),
            "ts_monotonic_s": r.get("ts"),
        }
        for key, value in (r.get("attrs") or {}).items():
            if key not in args:
                args[key] = value
        event = {
            "name": str(r.get("name", "?")),
            "cat": str(r.get("kind", "span")),
            "ph": "i" if r.get("kind") == "event" else "X",
            "ts": (float(r.get("ts", 0.0)) - t0) * 1e6,
            "pid": int(r.get("pid", 0)),
            "tid": int(r.get("tid", 0)),
            "args": args,
        }
        if event["ph"] == "X":
            event["dur"] = float(r.get("dur", 0.0)) * 1e6
        else:
            event["s"] = "p"  # process-scoped instant
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, records: List[dict]) -> int:
    """Write the Chrome-trace JSON; returns the number of records."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(records), handle)
    return len(records)


def from_chrome_trace(doc: dict) -> List[dict]:
    """Inverse of :func:`to_chrome_trace` (timestamps stay rebased)."""
    records = []
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict):
            continue
        args = event.get("args") or {}
        ts = args.get("ts_monotonic_s")
        if not isinstance(ts, (int, float)):
            ts = float(event.get("ts", 0.0)) * 1e-6
        records.append({
            "name": event.get("name", "?"),
            "trace": args.get("trace"),
            "span": args.get("span"),
            "parent": args.get("parent"),
            "ts": float(ts),
            "dur": float(event.get("dur", 0.0)) * 1e-6,
            "pid": int(event.get("pid", 0)),
            "tid": int(event.get("tid", 0)),
            "thread": "",
            "status": args.get("status", "ok"),
            "kind": "event" if event.get("ph") == "i" else "span",
            "attrs": {
                k: v for k, v in args.items() if k not in _CORE_ARGS
                and k != "ts_monotonic_s"
            },
        })
    return records


def read_chrome_trace(path: str) -> List[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return from_chrome_trace(json.load(handle))


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def forest(records: List[dict]) -> Dict[object, dict]:
    """Group spans per trace: roots, orphans, and participating pids.

    An *orphan* has a parent id that no span in the record set carries --
    for a stitched cross-process trace there must be none, and exactly
    one root per request trace.
    """
    spans = [r for r in records if r.get("kind", "span") == "span"]
    by_trace: Dict[object, List[dict]] = {}
    for r in spans:
        by_trace.setdefault(r.get("trace"), []).append(r)
    out: Dict[object, dict] = {}
    for trace_id, rows in by_trace.items():
        ids = {r.get("span") for r in rows}
        roots = [r for r in rows if r.get("parent") is None]
        orphans = [
            r for r in rows
            if r.get("parent") is not None and r.get("parent") not in ids
        ]
        out[trace_id] = {
            "spans": rows,
            "roots": roots,
            "orphans": orphans,
            "pids": sorted({int(r.get("pid", 0)) for r in rows}),
        }
    return out


def _self_times_us(spans: Dict[object, dict]) -> Dict[object, float]:
    children_dur: Dict[object, float] = {}
    for r in spans.values():
        parent = r.get("parent")
        if parent in spans:
            children_dur[parent] = (
                children_dur.get(parent, 0.0) + float(r.get("dur", 0.0))
            )
    return {
        sid: max(
            0.0, float(r.get("dur", 0.0)) - children_dur.get(sid, 0.0)
        ) * 1e6
        for sid, r in spans.items()
    }


def _stack_of(record: dict, spans: Dict[object, dict]) -> str:
    path = []
    cursor: Optional[dict] = record
    guard = 0
    while cursor is not None and guard < 64:
        path.append(str(cursor.get("name", "?")))
        parent = cursor.get("parent")
        cursor = spans.get(parent) if parent is not None else None
        guard += 1
    return ";".join(reversed(path))


def to_folded(records: List[dict]) -> str:
    """Flamegraph-folded stacks: ``root;child;leaf <self-us>`` lines."""
    spans = {
        r.get("span"): r
        for r in records if r.get("kind", "span") == "span"
    }
    self_us = _self_times_us(spans)
    lines: Dict[str, float] = {}
    for sid, r in spans.items():
        stack = _stack_of(r, spans)
        lines[stack] = lines.get(stack, 0.0) + self_us[sid]
    return "\n".join(
        "%s %d" % (stack, int(round(us)))
        for stack, us in sorted(lines.items())
    )


def write_folded(path: str, records: List[dict]) -> int:
    folded = to_folded(records)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(folded + ("\n" if folded else ""))
    return len(folded.splitlines())


def summarize(records: List[dict]) -> dict:
    """Per-name aggregates plus forest-level stitching stats."""
    spans = {
        r.get("span"): r
        for r in records if r.get("kind", "span") == "span"
    }
    self_us = _self_times_us(spans)
    by_name: Dict[str, Dict[str, float]] = {}
    for sid, r in spans.items():
        row = by_name.setdefault(
            str(r.get("name", "?")),
            {"count": 0, "total_ms": 0.0, "self_ms": 0.0},
        )
        row["count"] += 1
        row["total_ms"] += float(r.get("dur", 0.0)) * 1e3
        row["self_ms"] += self_us[sid] * 1e-3
    groves = forest(records)
    return {
        "spans": len(spans),
        "events": sum(1 for r in records if r.get("kind") == "event"),
        "traces": len(groves),
        "orphans": sum(len(g["orphans"]) for g in groves.values()),
        "truncated": sum(
            1 for r in spans.values() if r.get("status") == "truncated"
        ),
        "processes": len({r.get("pid") for r in spans.values()}),
        "by_name": by_name,
    }


__all__ = [
    "forest",
    "from_chrome_trace",
    "read_chrome_trace",
    "summarize",
    "to_chrome_trace",
    "to_folded",
    "write_chrome_trace",
    "write_folded",
]
