"""Randomized fault campaign: ``python -m repro chaos``.

Each iteration draws fault rates up to ``max_rate`` from a seeded PRNG and
fires four probes at the stack (five with ``--cluster``):

* **transport** -- a full private convolution (exact NTT) whose ciphertext
  traffic crosses a :class:`repro.faults.FaultyChannel` through a
  :class:`repro.faults.ResilientSession`; must finish bit-exact or fail
  loudly with a dead letter.
* **degradation** -- the same convolution on an approximate-FFT backend
  under a ``"fallback"`` :class:`repro.faults.BudgetGuard`; alternating
  iterations undersize ``q`` (predicted exhaustion) or crank the FFT
  approximation (observed exhaustion); must finish bit-exact.
* **runtime** -- ``multiply_many`` with a
  :class:`repro.faults.WorkerFaultInjector` poisoning parallel jobs; the
  output must be byte-identical to the fault-free run.
* **sparse** -- the compiled-sparse-plan path
  (:class:`repro.runtime.SparseBatchedFftBackend`) under the same worker
  faults *plus* in-place corruption of cached plans/spectra; the
  integrity-checked caches must detect, evict and recompute, and the
  output must stay byte-identical.
* **cluster** (``--cluster``) -- a batched convolution sharded across
  supervised worker *processes* (:mod:`repro.cluster`) while random
  workers are SIGKILLed and hung mid-run; the reassembled output must be
  bit-identical to the serial path.

The campaign's verdict is binary: **zero silent corruptions** (a probe
that completes with a wrong answer).  Detected-and-handled faults --
retries, fallbacks, serial recoveries, respawns, even dead letters -- are
survival, and the report counts them.

Heavy imports (protocol, runtime, cluster) stay inside the probes so
importing :mod:`repro.faults` never drags the whole stack in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.channel import FaultyChannel, TransportError
from repro.faults.guard import BudgetGuard
from repro.faults.inject import WorkerFaultInjector
from repro.faults.session import ResilientSession


@dataclass
class ChaosIteration:
    """Outcome of one campaign iteration (four or five probes)."""

    index: int
    rates: Dict[str, float]
    transport_ok: bool = False
    degradation_ok: bool = False
    runtime_ok: bool = False
    sparse_ok: bool = False
    #: ``None`` when the cluster probe did not run this campaign.
    cluster_ok: Optional[bool] = None
    silent_corruptions: int = 0
    loud_failures: int = 0
    retries: int = 0
    timeouts: int = 0
    checksum_failures: int = 0
    dead_letters: int = 0
    injected_channel_faults: int = 0
    guard_events: int = 0
    worker_faults_injected: int = 0
    worker_faults_recovered: int = 0
    cache_corruptions_detected: int = 0
    cluster_kills: int = 0
    cluster_hangs: int = 0
    cluster_recoveries: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.transport_ok
            and self.degradation_ok
            and self.runtime_ok
            and self.sparse_ok
            and self.cluster_ok is not False
        )

    def to_dict(self) -> dict:
        """JSON-ready form (``python -m repro chaos --json``)."""
        out = dict(vars(self))
        out["rates"] = dict(self.rates)
        out["errors"] = list(self.errors)
        out["ok"] = self.ok
        return out

    def describe(self) -> str:
        flags = "".join(
            "Y" if ok else "n"
            for ok in (
                self.transport_ok, self.degradation_ok, self.runtime_ok,
                self.sparse_ok,
            )
        )
        if self.cluster_ok is not None:
            flags += "Y" if self.cluster_ok else "n"
        rates = " ".join(f"{k}={v:.2f}" for k, v in sorted(self.rates.items()))
        line = (
            f"iter {self.index}: [{flags}] {rates} | "
            f"injected={self.injected_channel_faults} retries={self.retries} "
            f"crc={self.checksum_failures} timeouts={self.timeouts} "
            f"dead={self.dead_letters} guard={self.guard_events} "
            f"workers={self.worker_faults_injected}/"
            f"{self.worker_faults_recovered} "
            f"cachecorrupt={self.cache_corruptions_detected}"
        )
        if self.cluster_ok is not None:
            line += (
                f" cluster={self.cluster_kills}k/{self.cluster_hangs}h/"
                f"{self.cluster_recoveries}r"
            )
        if self.errors:
            line += " | " + "; ".join(self.errors)
        return line


@dataclass
class ChaosReport:
    """Aggregated campaign outcome; ``survived`` is the acceptance gate."""

    seed: int
    max_rate: float
    iterations: List[ChaosIteration] = field(default_factory=list)

    @property
    def silent_corruptions(self) -> int:
        return sum(it.silent_corruptions for it in self.iterations)

    @property
    def loud_failures(self) -> int:
        return sum(it.loud_failures for it in self.iterations)

    @property
    def survived(self) -> bool:
        """No probe ever completed with a wrong answer."""
        return self.silent_corruptions == 0

    def to_dict(self) -> dict:
        """JSON-ready campaign trajectory for CI artifacts."""
        return {
            "seed": self.seed,
            "max_rate": self.max_rate,
            "survived": self.survived,
            "silent_corruptions": self.silent_corruptions,
            "loud_failures": self.loud_failures,
            "iterations": [it.to_dict() for it in self.iterations],
        }

    def describe(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} "
            f"iterations={len(self.iterations)} max_rate={self.max_rate:.2f}"
        ]
        lines.extend("  " + it.describe() for it in self.iterations)
        total_faults = sum(it.injected_channel_faults for it in self.iterations)
        total_retries = sum(it.retries for it in self.iterations)
        total_guard = sum(it.guard_events for it in self.iterations)
        total_workers = sum(
            it.worker_faults_injected for it in self.iterations
        )
        total_corrupt = sum(
            it.cache_corruptions_detected for it in self.iterations
        )
        line = (
            f"  totals: {total_faults} channel faults injected, "
            f"{total_retries} retries, {total_guard} guard degradations, "
            f"{total_workers} worker faults, "
            f"{total_corrupt} cache corruptions detected, "
            f"{self.loud_failures} loud failures, "
            f"{self.silent_corruptions} SILENT corruptions"
        )
        if any(it.cluster_ok is not None for it in self.iterations):
            line += (
                f"; cluster: "
                f"{sum(it.cluster_kills for it in self.iterations)} kills, "
                f"{sum(it.cluster_hangs for it in self.iterations)} hangs, "
                f"{sum(it.cluster_recoveries for it in self.iterations)} "
                "recoveries"
            )
        lines.append(line)
        lines.append(
            "verdict: SURVIVED (all completed results correct)"
            if self.survived
            else "verdict: FAILED (silent corruption detected)"
        )
        return "\n".join(lines)


def _probe_transport(it: ChaosIteration, n: int, seed: int) -> None:
    """Private conv over a faulty channel: exact result or loud failure."""
    import numpy as np

    from repro.encoding.conv_encoding import ConvShape
    from repro.he.params import toy_preset
    from repro.protocol.hybrid import HybridConvProtocol

    params = toy_preset(n=n)
    channel = FaultyChannel(
        seed=seed,
        drop=it.rates["drop"],
        corrupt=it.rates["corrupt"],
        truncate=it.rates["truncate"],
        duplicate=it.rates["duplicate"],
        max_latency=it.rates["latency"],
    )
    transport = ResilientSession(channel=channel, seed=seed)
    shape = ConvShape(
        in_channels=1, height=4, width=4, out_channels=1,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )
    rng = np.random.default_rng(seed)
    x = rng.integers(-7, 8, size=(1, 4, 4))
    w = rng.integers(-2, 3, size=(1, 1, 3, 3))
    protocol = HybridConvProtocol(
        params, shape, transport=transport, layer_name=f"chaos{it.index}"
    )
    try:
        result = protocol.run(x, w, rng)
    except TransportError as exc:
        it.loud_failures += 1
        it.errors.append(f"transport dead-letter: {exc}")
        it.transport_ok = True  # loud failure, nothing corrupted
    else:
        if result.exact:
            it.transport_ok = True
        else:
            it.silent_corruptions += 1
            it.errors.append(
                f"transport probe corrupted: max_error={result.max_error}"
            )
        it.retries += result.stats.retries
        it.timeouts += result.stats.timeouts
        it.checksum_failures += result.stats.checksum_failures
    it.dead_letters += transport.stats.dead_letters
    it.injected_channel_faults += sum(
        count
        for name, count in channel.injected.items()
        if name != "frames"
    )


def _probe_degradation(it: ChaosIteration, n: int, seed: int) -> None:
    """Approx path under a fallback guard: must land bit-exact."""
    import numpy as np

    from repro.encoding.conv_encoding import ConvShape
    from repro.fftcore.fixed_point import ApproxFftConfig
    from repro.he.backend import FftPolyMulBackend
    from repro.he.params import toy_preset

    from repro.protocol.hybrid import HybridConvProtocol

    params = toy_preset(n=n)
    if it.index % 2 == 0:
        # Demand more margin than the parameters can offer: the noise
        # model predicts exhaustion pre-flight, before any crypto runs.
        config = None
        guard = BudgetGuard(params, policy="fallback", min_margin_bits=200.0)
    else:
        # Aggressive approximation: error shows up only after the run.
        config = ApproxFftConfig(
            n=n // 2, stage_widths=12, twiddle_k=2, twiddle_max_shift=8
        )
        guard = BudgetGuard(params, policy="fallback")
    shape = ConvShape(
        in_channels=1, height=4, width=4, out_channels=1,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )
    rng = np.random.default_rng(seed)
    x = rng.integers(-3, 4, size=(1, 4, 4))
    w = rng.integers(-2, 3, size=(1, 1, 3, 3))
    protocol = HybridConvProtocol(
        params, shape,
        backend=FftPolyMulBackend(weight_config=config),
        guard=guard,
        layer_name=f"chaos{it.index}",
    )
    result = protocol.run(x, w, rng)
    it.guard_events += len(guard.events)
    if result.exact:
        it.degradation_ok = True
    else:
        it.silent_corruptions += 1
        it.errors.append(
            f"degradation probe corrupted: max_error={result.max_error} "
            f"({guard.describe()})"
        )


def _probe_runtime(it: ChaosIteration, n: int, seed: int, workers: int) -> None:
    """multiply_many under worker faults: byte-identical to fault-free."""
    import numpy as np

    from repro.he.params import toy_preset
    from repro.he.poly import RingPoly
    from repro.runtime.engine import BatchedNttBackend

    basis = toy_preset(n=n).basis
    rng = np.random.default_rng(seed)
    polys, weights = [], []
    for _ in range(4):
        coeffs = rng.integers(0, 1 << 29, size=basis.n)
        polys.append(RingPoly(basis, basis.to_rns(coeffs)))
        weights.append(rng.integers(-5, 6, size=basis.n))
    reference = BatchedNttBackend(max_workers=workers).multiply_many(
        polys, weights
    )
    injector = WorkerFaultInjector(rate=it.rates["worker"], seed=seed)
    faulty = BatchedNttBackend(max_workers=workers, fault_injector=injector)
    outs = faulty.multiply_many(polys, weights)
    it.worker_faults_injected += injector.injected
    it.worker_faults_recovered += faulty.last_stats.worker_faults
    identical = all(
        np.array_equal(a, b)
        for out, ref in zip(outs, reference)
        for a, b in zip(out.residues, ref.residues)
    )
    if identical:
        it.runtime_ok = True
    else:
        it.silent_corruptions += 1
        it.errors.append("runtime probe corrupted: recovered output differs")


def _tamper_backend_caches(backend) -> int:
    """Flip one byte inside one cached array of each integrity-checked
    cache the backend owns (in place, simulating memory corruption).

    Returns how many entries were mutated; subsequent lookups must detect
    the damage via the entry digests, evict and recompute.
    """
    import numpy as np

    tampered = 0
    for attr in ("plan_cache", "_spectrum_cache", "_pipelines"):
        cache = getattr(backend, attr, None)
        if cache is None or not getattr(cache, "check_integrity", False):
            continue
        for key in cache.keys():
            value = cache.get(key)
            arrays = [
                arr
                for arr in (value, getattr(value, "values", None))
                if isinstance(arr, np.ndarray) and arr.size
            ]
            if not arrays:
                continue
            flat = arrays[0].view(np.uint8).reshape(-1)
            flat[0] ^= 0xFF
            tampered += 1
            break
    return tampered


def _probe_sparse(it: ChaosIteration, n: int, seed: int, workers: int) -> None:
    """Sparse-plan path under worker faults + cache corruption.

    The compiled-plan and spectrum caches of a
    :class:`repro.runtime.SparseBatchedFftBackend` are corrupted in place
    between two runs; the integrity digests must evict the damage and the
    second run must stay byte-identical to the fault-free reference.
    """
    import numpy as np

    from repro.fftcore.fixed_point import ApproxFftConfig
    from repro.he.params import toy_preset
    from repro.he.poly import RingPoly
    from repro.runtime.engine import SparseBatchedFftBackend

    basis = toy_preset(n=n).basis
    cfg = ApproxFftConfig(
        n=n // 2, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
    )
    rng = np.random.default_rng(seed)
    polys, weights = [], []
    for _ in range(4):
        coeffs = rng.integers(0, 1 << 20, size=basis.n)
        polys.append(RingPoly(basis, basis.to_rns(coeffs)))
        w = rng.integers(-5, 6, size=basis.n)
        w[rng.random(size=basis.n) < 0.6] = 0  # structural sparsity
        weights.append(w)
    reference = SparseBatchedFftBackend(
        weight_config=cfg, max_workers=workers
    ).multiply_many(polys, weights)

    injector = WorkerFaultInjector(rate=it.rates["worker"], seed=seed)
    faulty = SparseBatchedFftBackend(
        weight_config=cfg, max_workers=workers, fault_injector=injector
    )
    first = faulty.multiply_many(polys, weights)
    corruptions_before = faulty.plan_cache.stats().get("corruptions", 0)
    _tamper_backend_caches(faulty)
    second = faulty.multiply_many(polys, weights)
    corruptions_after = sum(
        getattr(faulty, attr).stats().get("corruptions", 0)
        for attr in ("plan_cache", "_spectrum_cache", "_pipelines")
        if hasattr(faulty, attr)
    )
    it.worker_faults_injected += injector.injected
    it.worker_faults_recovered += faulty.last_stats.worker_faults
    it.cache_corruptions_detected += corruptions_after - corruptions_before
    identical = all(
        np.array_equal(a, b)
        for out, ref in zip(first + second, reference + reference)
        for a, b in zip(out.residues, ref.residues)
    )
    if identical:
        it.sparse_ok = True
    else:
        it.silent_corruptions += 1
        it.errors.append(
            "sparse probe corrupted: output differs after cache tampering"
        )


def _probe_cluster(
    it: ChaosIteration, n: int, seed: int, cluster_workers: int
) -> None:
    """Sharded multi-process conv under SIGKILLs and hangs.

    Random supervised workers are killed and hung mid-run; the
    reassembled batch must be bit-identical to the serial engine
    (dense NTT on even iterations, compiled sparse plans on odd).
    """
    import numpy as np

    from repro.cluster import ClusterFaultInjector, ClusterPolicy, ClusterExecutor
    from repro.encoding.conv_encoding import ConvShape
    from repro.fftcore.fixed_point import ApproxFftConfig
    from repro.runtime.engine import BatchedHConvEngine

    mode = "ntt" if it.index % 2 == 0 else "sparse"
    cfg = (
        None
        if mode == "ntt"
        else ApproxFftConfig(
            n=n // 2, stage_widths=27, twiddle_k=18, twiddle_max_shift=24
        )
    )
    shape = ConvShape(
        in_channels=1, height=4, width=4, out_channels=2,
        kernel_h=3, kernel_w=3, stride=1, padding=1,
    )
    rng = np.random.default_rng(seed)
    xs = rng.integers(-7, 8, size=(2 * cluster_workers, 1, 4, 4))
    w = rng.integers(-2, 3, size=(2, 1, 3, 3))
    reference = BatchedHConvEngine(
        mode=mode, weight_config=cfg, max_workers=None
    ).conv2d_batch(xs, w, shape, n)

    injector = ClusterFaultInjector(
        kill_rate=it.rates["cluster_kill"],
        hang_rate=it.rates["cluster_hang"],
        seed=seed,
    )
    executor = ClusterExecutor(
        policy=ClusterPolicy(
            workers=cluster_workers,
            # Probe shards are tiny (sub-second); a short deadline keeps
            # injected hangs from stalling the campaign.
            heartbeat_timeout=5.0,
            max_respawns=4 * cluster_workers,
            min_workers=1,
        ),
        fault_injector=injector,
        seed=seed,
    )
    try:
        engine = BatchedHConvEngine(
            mode=mode, weight_config=cfg, cluster=executor
        )
        out = engine.conv2d_batch(xs, w, shape, n)
        cluster_stats = engine.last_stats.cluster
    finally:
        executor.close()
    it.cluster_kills += injector.injected["kills"]
    it.cluster_hangs += injector.injected["hangs"]
    it.cluster_recoveries += int(cluster_stats.get("recoveries", 0))
    it.cache_corruptions_detected += int(
        cluster_stats.get("cache_corruptions", 0)
    )
    if np.array_equal(out, reference):
        it.cluster_ok = True
    else:
        it.cluster_ok = False
        it.silent_corruptions += 1
        it.errors.append(
            f"cluster probe corrupted: {mode} output differs from serial"
        )


def run_campaign(
    seed: int = 0,
    iterations: int = 10,
    max_rate: float = 0.2,
    n: int = 64,
    workers: int = 2,
    cluster: bool = False,
    cluster_workers: int = 2,
) -> ChaosReport:
    """Run the randomized fault campaign and return its report.

    Args:
        seed: master PRNG seed; campaigns replay bit-identically.
        iterations: fault-rate draws (four probes each, five with
            ``cluster=True``).
        max_rate: upper bound on drop/corrupt/truncate/duplicate rates.
        n: polynomial degree of the probe parameters (tiny by design).
        workers: thread-pool width for the runtime/sparse probes.
        cluster: also run the multi-process cluster probe (SIGKILLs and
            hangs random supervised workers mid-run).
        cluster_workers: pool width for the cluster probe.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 <= max_rate <= 1.0:
        raise ValueError("max_rate must be in [0, 1]")
    if cluster and cluster_workers < 1:
        raise ValueError("cluster_workers must be >= 1")
    master = random.Random(seed)
    report = ChaosReport(seed=seed, max_rate=max_rate)
    for index in range(iterations):
        rates = {
            "drop": master.uniform(0.0, max_rate),
            "corrupt": master.uniform(0.0, max_rate),
            "truncate": master.uniform(0.0, max_rate),
            "duplicate": master.uniform(0.0, max_rate),
            "latency": master.uniform(0.0, 0.3),
            "worker": master.uniform(0.2, 0.8),
            "cluster_kill": master.uniform(0.1, 0.5),
            "cluster_hang": master.uniform(0.0, 0.25),
        }
        probe_seed = master.randrange(1 << 30)
        it = ChaosIteration(index=index, rates=rates)
        _probe_transport(it, n, probe_seed)
        _probe_degradation(it, n, probe_seed + 1)
        _probe_runtime(it, n, probe_seed + 2, workers)
        _probe_sparse(it, n, probe_seed + 3, workers)
        if cluster:
            _probe_cluster(it, n, probe_seed + 4, cluster_workers)
        report.iterations.append(it)
    return report
