"""Framed, checksummed transport channels with deterministic fault injection.

The wire format of :mod:`repro.protocol.wire` serializes ciphertexts but
assumes the bytes arrive intact.  This module adds the missing transport
layer: every payload travels inside a *frame* carrying a magic tag, a
sequence number, the payload length and a CRC32 checksum, so any drop,
bit-flip, truncation or duplication is *detected* rather than silently
decoded into a wrong ciphertext.

Channels are modeled as a deterministic function from one outgoing frame
to a list of ``(latency, bytes)`` deliveries:

* :class:`PerfectChannel` delivers every frame once, instantly;
* :class:`FaultyChannel` is a seedable adversary injecting drops,
  bit-flips, truncations, duplicates and latency at configured rates.

The model is synchronous and virtual-time (latencies are numbers compared
against the receiver's timeout, no real sleeping), which keeps fault
campaigns fast and bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import random
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

_FRAME_MAGIC = b"FRME"
_FRAME = struct.Struct("<4sIQI")  # magic, seq, payload length, crc32


class TransportError(RuntimeError):
    """A message could not be delivered within the retry budget."""


class ChecksumError(ValueError):
    """Frame payload does not match its CRC32 checksum."""


def encode_frame(seq: int, payload: bytes) -> bytes:
    """Wrap ``payload`` in a checksummed frame with sequence number ``seq``."""
    return _FRAME.pack(
        _FRAME_MAGIC, seq & 0xFFFFFFFF, len(payload), zlib.crc32(payload)
    ) + payload


def decode_frame(data: bytes) -> Tuple[int, bytes]:
    """Parse one frame; returns ``(seq, payload)``.

    Raises:
        ValueError: malformed header, bad magic, or length mismatch
            (byte offsets included for fault triage).
        ChecksumError: intact-looking frame whose payload fails the CRC32.
    """
    if len(data) < _FRAME.size:
        raise ValueError(
            f"truncated frame header: need {_FRAME.size} bytes, "
            f"have {len(data)} (offset 0)"
        )
    magic, seq, length, crc = _FRAME.unpack_from(data)
    if magic != _FRAME_MAGIC:
        raise ValueError(f"bad frame magic {magic!r} at offset 0")
    if len(data) != _FRAME.size + length:
        raise ValueError(
            f"frame length mismatch at offset 8: header says {length} "
            f"payload bytes, frame carries {len(data) - _FRAME.size}"
        )
    payload = data[_FRAME.size :]
    if zlib.crc32(payload) != crc:
        raise ChecksumError(
            f"frame payload CRC mismatch (seq {seq}, {length} bytes)"
        )
    return seq, payload


class Channel:
    """Transport interface: one frame in, zero or more deliveries out."""

    def transmit(self, frame: bytes) -> List[Tuple[float, bytes]]:
        """Send ``frame``; returns ``(latency_seconds, bytes)`` deliveries."""
        raise NotImplementedError


class PerfectChannel(Channel):
    """Lossless, instantaneous channel (the pre-faults behaviour)."""

    def transmit(self, frame: bytes) -> List[Tuple[float, bytes]]:
        return [(0.0, frame)]


@dataclass
class FaultProfile:
    """Injection rates of one :class:`FaultyChannel` (all in ``[0, 1]``)."""

    drop: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    duplicate: float = 0.0
    max_latency: float = 0.0

    def __post_init__(self):
        for name in ("drop", "corrupt", "truncate", "duplicate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if self.max_latency < 0.0:
            raise ValueError("max_latency must be >= 0")


class FaultyChannel(Channel):
    """Seedable lossy channel: drops, bit-flips, truncations, duplicates.

    Every fault decision draws from one ``random.Random(seed)`` stream, so
    a campaign replays bit-identically under the same seed.  Injection
    counters (``injected``) record what the channel actually did, which the
    chaos report compares against what the receiver *detected*.

    Args:
        profile: injection rates (or pass the rates as keyword arguments).
        seed: PRNG seed for all fault decisions.
    """

    def __init__(
        self,
        profile: FaultProfile = None,
        seed: int = 0,
        **rates,
    ):
        self.profile = profile if profile is not None else FaultProfile(**rates)
        self._rng = random.Random(seed)
        self.injected: Dict[str, int] = {
            "frames": 0,
            "drops": 0,
            "bit_flips": 0,
            "truncations": 0,
            "duplicates": 0,
            "delays": 0,
        }

    def _mutate(self, frame: bytes) -> bytes:
        data = bytearray(frame)
        p = self.profile
        if p.corrupt and self._rng.random() < p.corrupt:
            idx = self._rng.randrange(len(data))
            data[idx] ^= 1 << self._rng.randrange(8)
            self.injected["bit_flips"] += 1
        if p.truncate and self._rng.random() < p.truncate and len(data) > 1:
            data = data[: self._rng.randrange(1, len(data))]
            self.injected["truncations"] += 1
        return bytes(data)

    def transmit(self, frame: bytes) -> List[Tuple[float, bytes]]:
        p = self.profile
        self.injected["frames"] += 1
        copies = 1
        if p.duplicate and self._rng.random() < p.duplicate:
            copies += 1
            self.injected["duplicates"] += 1
        out: List[Tuple[float, bytes]] = []
        for _ in range(copies):
            if p.drop and self._rng.random() < p.drop:
                self.injected["drops"] += 1
                continue
            latency = 0.0
            if p.max_latency:
                latency = self._rng.uniform(0.0, p.max_latency)
                if latency > 0.0:
                    self.injected["delays"] += 1
            out.append((latency, self._mutate(frame)))
        return out


@dataclass
class DeadLetter:
    """Record of one message the transport gave up on."""

    seq: int
    payload_bytes: int
    attempts: int
    last_error: str = ""


@dataclass
class TransportStats:
    """Receiver-side accounting of one :class:`ResilientSession`."""

    messages: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    checksum_failures: int = 0
    decode_failures: int = 0
    duplicates_discarded: int = 0
    dead_letters: int = 0
    backoff_seconds: float = 0.0
    dead_letter_log: List[DeadLetter] = field(default_factory=list)

    def copy(self) -> "TransportStats":
        out = TransportStats(
            messages=self.messages,
            attempts=self.attempts,
            retries=self.retries,
            timeouts=self.timeouts,
            checksum_failures=self.checksum_failures,
            decode_failures=self.decode_failures,
            duplicates_discarded=self.duplicates_discarded,
            dead_letters=self.dead_letters,
            backoff_seconds=self.backoff_seconds,
        )
        out.dead_letter_log = list(self.dead_letter_log)
        return out
