"""Fault injection, resilient transport, and graceful degradation.

The robustness layer of the reproduction: everything that keeps a private
inference *correct or loudly failed* when the world misbehaves.

* :mod:`repro.faults.channel` -- CRC32-framed transport with a seedable
  adversarial channel (drops, bit-flips, truncations, duplicates, latency).
* :mod:`repro.faults.session` -- bounded retry with exponential backoff +
  jitter, per-delivery timeouts and dead-letter records.
* :mod:`repro.faults.guard` -- noise-budget watchdog degrading approximate
  FFT layers to the exact NTT path before they silently corrupt.
* :mod:`repro.faults.inject` -- deterministic worker-fault injection for
  the batched runtime's serial-retry recovery.
* :mod:`repro.faults.chaos` -- randomized fault campaign behind
  ``python -m repro chaos``.
"""

from repro.faults.channel import (
    Channel,
    ChecksumError,
    DeadLetter,
    FaultProfile,
    FaultyChannel,
    PerfectChannel,
    TransportError,
    TransportStats,
    decode_frame,
    encode_frame,
)
from repro.faults.chaos import ChaosIteration, ChaosReport, run_campaign
from repro.faults.guard import BudgetGuard, DegradationEvent
from repro.faults.inject import (
    FaultRecovery,
    InjectedWorkerFault,
    WorkerFaultInjector,
)
from repro.faults.session import ResilientSession, RetryPolicy
from repro.he.noise import NoiseBudgetError

__all__ = [
    "BudgetGuard",
    "Channel",
    "ChaosIteration",
    "ChaosReport",
    "ChecksumError",
    "DeadLetter",
    "DegradationEvent",
    "FaultProfile",
    "FaultRecovery",
    "FaultyChannel",
    "InjectedWorkerFault",
    "NoiseBudgetError",
    "PerfectChannel",
    "ResilientSession",
    "RetryPolicy",
    "TransportError",
    "TransportStats",
    "WorkerFaultInjector",
    "decode_frame",
    "encode_frame",
    "run_campaign",
]
