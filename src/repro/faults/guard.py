"""Graceful approx->exact degradation when the noise budget runs out.

Section III-A's correctness argument holds only while total noise stays
below ``q/(2t)``.  The approximate-FFT path silently corrupts convolutions
once its per-layer error crosses that ceiling -- the classifier keeps
producing numbers, just wrong ones.  :class:`BudgetGuard` closes the gap
with two detectors:

* **predicted** -- :func:`repro.he.noise.conv_budget_margin_bits` bounds a
  layer's noise growth *before* any cryptography runs; too little margin
  means the approximate path cannot be trusted for this layer;
* **observed** -- the protocol's reconstructed-vs-expected error after a
  layer; any error beyond the tolerance means the budget was in fact
  exceeded (unmodeled FFT error, e.g. an aggressive DSE configuration).

Either trigger applies the configured policy: ``"fallback"`` reruns the
layer on the exact NTT backend (bit-exact result, degradation recorded),
``"raise"`` aborts with :class:`repro.he.noise.NoiseBudgetError`, and
``"warn"`` emits a warning but keeps the approximate result.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List

from repro.he.noise import NoiseBudgetError, conv_budget_margin_bits
from repro.he.params import BfvParameters


@dataclass
class DegradationEvent:
    """One guard trigger: which layer degraded, why, and what was done."""

    layer: str
    reason: str  # "predicted" | "observed"
    action: str  # "fallback" | "raise" | "warn"
    margin_bits: float
    observed_error: int = 0

    def describe(self) -> str:
        detail = (
            f"margin {self.margin_bits:+.2f} bits"
            if self.reason == "predicted"
            else f"observed error {self.observed_error}"
        )
        return f"{self.layer}: {self.reason} exhaustion ({detail}) -> {self.action}"


@dataclass
class BudgetGuard:
    """Noise-budget watchdog for the approximate HConv path.

    Args:
        params: BFV parameters the margins are computed against.
        policy: ``"fallback"`` (rerun the layer exactly), ``"raise"``
            (abort with :class:`NoiseBudgetError`) or ``"warn"`` (record
            and continue with the approximate result).
        min_margin_bits: smallest predicted margin accepted on the
            approximate path; layers below it degrade pre-flight.
        error_tolerance: largest observed reconstruction error treated as
            benign (0 = any plaintext error degrades).
    """

    POLICIES = ("fallback", "raise", "warn")

    params: BfvParameters
    policy: str = "fallback"
    min_margin_bits: float = 1.0
    error_tolerance: int = 0
    events: List[DegradationEvent] = field(default_factory=list)

    def __post_init__(self):
        if self.policy not in self.POLICIES:
            raise ValueError(
                f"policy must be one of {self.POLICIES}, got {self.policy!r}"
            )
        if self.error_tolerance < 0:
            raise ValueError("error_tolerance must be >= 0")

    @property
    def degraded_layers(self) -> List[str]:
        """Names of layers that fell back to the exact NTT path."""
        return [e.layer for e in self.events if e.action == "fallback"]

    def fallback_backend(self):
        """The exact backend degraded layers rerun on."""
        from repro.he.backend import NttPolyMulBackend

        return NttPolyMulBackend()

    # -- detectors -------------------------------------------------------

    def preflight(
        self, weights, num_accumulated: int = 1, layer: str = "layer"
    ) -> bool:
        """Pre-flight check; ``True`` means: run this layer exactly.

        Args:
            weights: the layer's integer weight tensor (out channels first).
            num_accumulated: upper bound on ciphertext partial sums per
                output (channel tiling).
            layer: label recorded in the degradation event.
        """
        margin = conv_budget_margin_bits(self.params, weights, num_accumulated)
        if margin >= self.min_margin_bits:
            return False
        return self._trigger(layer, "predicted", margin)

    def observe(self, max_error: int, layer: str = "layer") -> bool:
        """Post-run check; ``True`` means: rerun this layer exactly.

        Args:
            max_error: worst reconstructed-vs-expected deviation the
                protocol measured for this layer.
            layer: label recorded in the degradation event.
        """
        if max_error <= self.error_tolerance:
            return False
        return self._trigger(layer, "observed", 0.0, observed_error=max_error)

    def _trigger(
        self, layer: str, reason: str, margin: float, observed_error: int = 0
    ) -> bool:
        event = DegradationEvent(
            layer=layer,
            reason=reason,
            action=self.policy,
            margin_bits=margin,
            observed_error=observed_error,
        )
        self.events.append(event)
        if self.policy == "raise":
            raise NoiseBudgetError(event.describe())
        if self.policy == "warn":
            warnings.warn(event.describe(), RuntimeWarning, stacklevel=3)
            return False
        return True

    def describe(self) -> str:
        if not self.events:
            return "budget guard: no degradations"
        lines = [f"budget guard ({self.policy}): {len(self.events)} event(s)"]
        lines.extend(f"  {e.describe()}" for e in self.events)
        return "\n".join(lines)
