"""Resilient message sessions: bounded retry, backoff + jitter, dead letters.

A :class:`ResilientSession` carries opaque payloads (typically serialized
ciphertexts) across a :class:`repro.faults.channel.Channel`, retrying on
every *detected* fault -- nothing delivered, delivery past the timeout,
checksum mismatch, or undecodable frame.  Retries back off exponentially
with seeded jitter; a message that exhausts its attempt budget is recorded
as a dead letter and raised as :class:`TransportError`, never silently
dropped.

Latency is virtual (compared against the policy timeout, no real
sleeping), so protocol tests and chaos campaigns run at full speed and are
bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Optional

from repro.faults.channel import (
    Channel,
    ChecksumError,
    DeadLetter,
    PerfectChannel,
    TransportError,
    TransportStats,
    decode_frame,
    encode_frame,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff parameters of one session.

    Args:
        max_attempts: total tries per message (first send included).
        base_delay: backoff before the first retry (seconds, virtual).
        max_delay: backoff ceiling.
        jitter: uniform multiplicative jitter in ``[0, jitter]`` added to
            each backoff (decorrelates retry storms across sessions).
        timeout: per-delivery latency budget; slower deliveries count as
            timeouts and trigger a retry.
    """

    max_attempts: int = 12
    base_delay: float = 0.01
    max_delay: float = 1.0
    jitter: float = 0.5
    timeout: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.timeout <= 0:
            raise ValueError("timeout must be > 0")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Virtual backoff before retry number ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        return delay * (1.0 + self.jitter * rng.random())


class ResilientSession:
    """Reliable request pipe over an unreliable channel.

    A session may be shared across worker threads (the batched runtime
    fans ciphertext transfers out): sequence numbers are allocated and
    statistics folded in under ``_lock``, and each in-flight transfer
    tallies its counters locally so the lock is never held across a
    channel round-trip.

    Args:
        channel: transport to send frames through (lossless by default).
        policy: retry/backoff/timeout parameters.
        seed: PRNG seed for backoff jitter.
    """

    def __init__(
        self,
        channel: Optional[Channel] = None,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
    ):
        self.channel = channel if channel is not None else PerfectChannel()
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = TransportStats()
        self._rng = random.Random(seed)
        self._next_seq = 0
        self._lock = threading.Lock()

    def _allocate_seq(self) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def _draw_backoff(self, attempt: int) -> float:
        # The shared PRNG is stateful; drawing under the lock keeps
        # concurrent transfers from interleaving inside its state.
        with self._lock:
            return self.policy.backoff(attempt, self._rng)

    def _fold_stats(self, tally: TransportStats) -> None:
        with self._lock:
            s = self.stats
            s.messages += tally.messages
            s.attempts += tally.attempts
            s.retries += tally.retries
            s.timeouts += tally.timeouts
            s.checksum_failures += tally.checksum_failures
            s.decode_failures += tally.decode_failures
            s.duplicates_discarded += tally.duplicates_discarded
            s.dead_letters += tally.dead_letters
            s.backoff_seconds += tally.backoff_seconds
            s.dead_letter_log.extend(tally.dead_letter_log)

    def transfer_bytes(self, payload: bytes) -> bytes:
        """Deliver ``payload`` across the channel, retrying detected faults.

        Returns the payload as received (always byte-identical to the
        input: every corruption is caught by the frame CRC and retried).

        Raises:
            TransportError: the attempt budget ran out; the message is
                appended to ``stats.dead_letter_log`` first.
        """
        seq = self._allocate_seq()
        frame = encode_frame(seq, payload)
        tally = TransportStats()
        tally.messages += 1
        last_error = "no delivery"
        for attempt in range(1, self.policy.max_attempts + 1):
            tally.attempts += 1
            if attempt > 1:
                tally.retries += 1
                tally.backoff_seconds += self._draw_backoff(attempt - 1)
            deliveries = self.channel.transmit(frame)
            received: Optional[bytes] = None
            for latency, data in deliveries:
                if latency > self.policy.timeout:
                    tally.timeouts += 1
                    last_error = f"delivery exceeded {self.policy.timeout}s"
                    continue
                try:
                    rseq, rpayload = decode_frame(data)
                except ChecksumError as exc:
                    tally.checksum_failures += 1
                    last_error = str(exc)
                    continue
                except ValueError as exc:
                    tally.decode_failures += 1
                    last_error = str(exc)
                    continue
                if rseq != seq or received is not None:
                    tally.duplicates_discarded += 1
                    continue
                received = rpayload
            if received is not None:
                self._fold_stats(tally)
                return received
            if not deliveries:
                tally.timeouts += 1
                last_error = "frame dropped (nothing delivered)"
        tally.dead_letters += 1
        tally.dead_letter_log.append(
            DeadLetter(
                seq=seq,
                payload_bytes=len(payload),
                attempts=self.policy.max_attempts,
                last_error=last_error,
            )
        )
        self._fold_stats(tally)
        raise TransportError(
            f"message seq {seq} ({len(payload)} bytes) undeliverable after "
            f"{self.policy.max_attempts} attempts: {last_error}"
        )

    def transfer_ciphertext(self, ct, params):
        """Carry one BFV ciphertext across the channel and re-parse it.

        Args:
            ct: a :class:`repro.he.bfv.Ciphertext`.
            params: the :class:`repro.he.params.BfvParameters` the receiver
                validates the wire bytes against.
        """
        from repro.protocol.wire import (
            deserialize_ciphertext,
            serialize_ciphertext,
        )

        data = self.transfer_bytes(serialize_ciphertext(ct))
        return deserialize_ciphertext(data, params)
