"""Deterministic worker-fault injection for the batched runtime.

The runtime fans RNS limbs and channel groups across a thread pool; a
worker can die mid-job (injected here as :class:`InjectedWorkerFault`, in
production as any exception escaping the vectorized kernels).  The
runtime's recovery path (:func:`repro.runtime.engine.fan_out` with a
:class:`FaultRecovery`) retries the failed job serially in the submitting
thread -- the kernels are pure, so the retried result is bit-identical --
and records the fault instead of losing the whole batch.

:class:`WorkerFaultInjector` decides *once per job tag* (seeded, or via an
explicit tag list) whether that job is poisoned, then fails its first
``failures_per_job`` executions, so a single retry always lands on the
real computation unless a test configures a permanently poisoned job.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence


class InjectedWorkerFault(RuntimeError):
    """Synthetic failure raised inside a poisoned runtime job."""


class WorkerFaultInjector:
    """Poison selected parallel jobs for a bounded number of attempts.

    Args:
        rate: probability that a never-before-seen job tag is poisoned
            (ignored for tags listed in ``tags``).
        seed: PRNG seed for the per-tag poison decisions.
        tags: explicit job tags to poison (``None`` = rate-based).
        failures_per_job: executions of a poisoned job that fail before it
            starts succeeding (1 = a single serial retry recovers it; a
            large value models a permanently broken job).
    """

    def __init__(
        self,
        rate: float = 0.0,
        seed: int = 0,
        tags: Optional[Sequence[Hashable]] = None,
        failures_per_job: int = 1,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if failures_per_job < 1:
            raise ValueError("failures_per_job must be >= 1")
        self.rate = rate
        self.tags = set(tags) if tags is not None else None
        self.failures_per_job = failures_per_job
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._poisoned: Dict[Hashable, bool] = {}
        self._attempts: Dict[Hashable, int] = {}
        self.injected = 0

    def poison(self, tag: Hashable) -> None:
        """Raise :class:`InjectedWorkerFault` if this execution is poisoned.

        Runtime jobs call this at their start with a stable tag such as
        ``("limb", 2)`` or ``("group", 0)``.
        """
        with self._lock:
            if tag not in self._poisoned:
                self._poisoned[tag] = (
                    tag in self.tags
                    if self.tags is not None
                    else self._rng.random() < self.rate
                )
            attempt = self._attempts.get(tag, 0)
            self._attempts[tag] = attempt + 1
            fire = self._poisoned[tag] and attempt < self.failures_per_job
            if fire:
                self.injected += 1
        if fire:
            raise InjectedWorkerFault(
                f"injected fault in job {tag!r} (attempt {attempt + 1})"
            )


@dataclass
class FaultRecovery:
    """Mutable record of worker faults recovered by a serial retry."""

    faults: int = 0
    errors: List[str] = field(default_factory=list)

    def record(self, exc: BaseException) -> None:
        self.faults += 1
        self.errors.append(f"{type(exc).__name__}: {exc}")
