"""Rule base class, per-file context, and the global rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.lint.findings import Finding, Severity


@dataclass
class RuleContext:
    """Everything a rule may inspect for one file."""

    path: str
    module: str
    tree: ast.AST
    lines: Sequence[str] = field(default_factory=list)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Syntactic parent of ``node`` (annotated by the engine)."""
        return getattr(node, "_repro_parent", None)


class Rule:
    """One lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes`` restricts the rule to dotted-module prefixes (empty tuple =
    every file); scoping is what makes the rules *domain-aware*: a raw
    ``a * b % q`` is idiomatic in generic Python but a landmine inside the
    modular-arithmetic packages.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    scopes: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.scopes:
            return True
        return any(
            module == scope or module.startswith(scope + ".")
            for scope in self.scopes
        )

    def check(self, ctx: RuleContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, ctx: RuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (keyed by rule_id)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by ID."""
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def known_rule_ids() -> set:
    """IDs of every registered AST rule (for suppression validation)."""
    return set(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None
