"""Bit-width dataflow analysis of approximate-FFT stage configurations.

Symbolically propagates a worst-case value-magnitude bound through the
butterfly pipeline of :class:`repro.fftcore.fixed_point.FixedPointFft`
and reports every stage whose worst-case intermediate exceeds what its
declared register width can absorb (rule **BW001**).

Datapath contract (mirrors ``FixedPointFft.__call__``):

* Stage registers store complex parts as signed fixed-point in
  ``[-1, 1)`` with ``dw_s`` total bits.
* Inputs have complex magnitude at most 1 -- the pipeline guarantees this
  with its power-of-two normalization (``approx_pipeline.weight_forward``).
* One butterfly computes ``(lo +- w * hi) / 2``:

  - the **twiddle multiply** scales the magnitude bound by
    ``W_s = max |w_quantized|`` over the stage's ROM entries.  Exact
    twiddles have ``W_s = 1``; CSD quantization overshoots the unit
    circle by up to ``~2**(1-k)``, and that overshoot *compounds* across
    stages -- this is the ``k``-term bound of the analysis;
  - the **butterfly add** doubles the worst case (+1 bit), and the
    architectural halving takes that bit back, so the net stage gain is
    ``(1 + W_s) / 2``;
  - the **per-stage truncation** to ``dw_s`` bits rounds each part by up
    to half a ULP, adding ``sqrt(2) * 2**-dw_s`` to the magnitude bound.
    Narrow registers therefore *grow* the bound every stage -- an
    under-budgeted width is an overflow problem, not only a noise one.

A stage is safe while the stored bound exceeds the representable range by
at most :data:`GUARD_TOLERANCE_BITS`: the saturating quantizer clips
rare worst-case alignments within the rounding-noise regime the DSE
error model absorbs (paper Section IV-C2); beyond the tolerance,
saturation becomes systematic and corrupts spectra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.fftcore.fixed_point import ApproxFftConfig
from repro.fftcore.twiddle_quant import TwiddleRom
from repro.lint.findings import Finding, Severity

#: Allowed worst-case overshoot, in bits, beyond the register range.
#: Within this margin the saturating rounder clips only adversarial
#: worst-case alignments; beyond it, clipping is systematic.
GUARD_TOLERANCE_BITS = 0.25


@dataclass(frozen=True)
class StageReport:
    """Worst-case magnitude bounds through one butterfly stage.

    All bounds are complex magnitudes relative to the register range
    ``[-1, 1)`` (so 1.0 means "exactly fills the format").
    """

    stage: int
    width: int
    twiddle_gain: float  #: max |quantized twiddle| this stage (W_s)
    input_bound: float  #: magnitude entering the stage
    add_bound: float  #: worst case after lo + w*hi (the +1-bit point)
    stored_bound: float  #: after halving and round-to-nearest
    overshoot_bits: float  #: log2 excess of stored_bound over 1.0 (>= 0)
    ok: bool

    def describe(self) -> str:
        status = "ok" if self.ok else "OVERFLOW"
        return (
            f"stage {self.stage:2d} dw={self.width:2d} "
            f"gain={self.twiddle_gain:.6f} bound={self.stored_bound:.6f} "
            f"overshoot={self.overshoot_bits:+.4f}b [{status}]"
        )


@dataclass
class BitwidthReport:
    """Full-pipeline verdict for one :class:`ApproxFftConfig`."""

    label: str
    config: ApproxFftConfig
    guard_tolerance_bits: float
    stages: List[StageReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.stages)

    @property
    def worst_overshoot_bits(self) -> float:
        return max((s.overshoot_bits for s in self.stages), default=0.0)

    @property
    def margin_bits(self) -> float:
        """Guard headroom remaining at the worst stage (negative = overflow)."""
        return self.guard_tolerance_bits - self.worst_overshoot_bits

    def findings(self) -> List[Finding]:
        """BW001 findings for the overflowing stages (empty when safe)."""
        out = []
        for s in self.stages:
            if s.ok:
                continue
            out.append(
                Finding(
                    rule_id="BW001",
                    severity=Severity.ERROR,
                    path=self.label,
                    line=s.stage,
                    col=1,
                    message=(
                        f"stage {s.stage} (dw={s.width}) worst-case bound "
                        f"{s.stored_bound:.4f} exceeds the register range "
                        f"by {s.overshoot_bits:.3f} bits "
                        f"(tolerance {self.guard_tolerance_bits}); widen the "
                        f"stage or raise twiddle_k"
                    ),
                )
            )
        return out

    def describe(self) -> str:
        head = (
            f"bitwidth {self.label}: {self.config.describe()} -> "
            f"{'ok' if self.ok else 'OVERFLOW'} "
            f"(worst overshoot {self.worst_overshoot_bits:.4f}b, "
            f"margin {self.margin_bits:+.4f}b)"
        )
        return "\n".join([head] + ["  " + s.describe() for s in self.stages])

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "ok": self.ok,
            "guard_tolerance_bits": self.guard_tolerance_bits,
            "worst_overshoot_bits": self.worst_overshoot_bits,
            "margin_bits": self.margin_bits,
            "stages": [
                {
                    "stage": s.stage,
                    "width": s.width,
                    "twiddle_gain": s.twiddle_gain,
                    "stored_bound": s.stored_bound,
                    "overshoot_bits": s.overshoot_bits,
                    "ok": s.ok,
                }
                for s in self.stages
            ],
        }


def _stage_gains(config: ApproxFftConfig, sign: int) -> List[float]:
    """Max quantized-twiddle magnitude per stage (1.0 for exact twiddles)."""
    if not config.twiddle_k:
        return [1.0] * config.stages
    rom = TwiddleRom(
        config.n, config.twiddle_k, config.twiddle_max_shift, sign
    )
    return [
        float(np.max(np.abs(rom.stage_values(s))))
        for s in range(1, config.stages + 1)
    ]


def analyze_fft_config(
    config: ApproxFftConfig,
    label: str = "<config>",
    sign: int = +1,
    guard_tolerance_bits: float = GUARD_TOLERANCE_BITS,
) -> BitwidthReport:
    """Propagate worst-case magnitude bounds through every stage.

    Args:
        config: the stage-width / twiddle-level configuration to verify.
        label: name used in findings and reports.
        sign: twiddle sign of the transform (+1 is the weight path).
        guard_tolerance_bits: allowed overshoot before a stage is flagged.
    """
    report = BitwidthReport(
        label=label, config=config, guard_tolerance_bits=guard_tolerance_bits
    )
    gains = _stage_gains(config, sign)
    bound = 1.0
    if config.input_width is not None:
        # Input quantization rounds each part by up to half a ULP.
        bound += math.sqrt(2.0) * 2.0 ** -config.input_width
    for stage in range(1, config.stages + 1):
        width = config.stage_widths[stage - 1]
        gain = gains[stage - 1]
        add_bound = bound * (1.0 + gain)
        stored = add_bound / 2.0 + math.sqrt(2.0) * 2.0**-width
        overshoot = max(0.0, math.log2(stored))
        report.stages.append(
            StageReport(
                stage=stage,
                width=width,
                twiddle_gain=gain,
                input_bound=bound,
                add_bound=add_bound,
                stored_bound=stored,
                overshoot_bits=overshoot,
                ok=overshoot <= guard_tolerance_bits,
            )
        )
        bound = stored
    return report


def analyze_design_space(
    space,
    n: int,
    twiddle_max_shift: int = 16,
    sign: int = +1,
    guard_tolerance_bits: float = GUARD_TOLERANCE_BITS,
) -> Dict[str, BitwidthReport]:
    """Verify the corners of a :class:`repro.dse.space.DesignSpace`.

    The four (width, k) corners bound the whole space for this monotone
    analysis: magnitude growth shrinks as either the register width or the
    twiddle level increases, so the min-width/min-k corner is the worst
    point of the space and the max/max corner the best.
    """
    if (1 << space.stages) != n:
        raise ValueError(
            f"space has {space.stages} stages but n={n} needs "
            f"{n.bit_length() - 1}"
        )
    reports = {}
    for w_name, width in (("min_w", space.width_range[0]),
                          ("max_w", space.width_range[1])):
        for k_name, k in (("min_k", space.k_range[0]),
                          ("max_k", space.k_range[1])):
            label = f"dse-corner:{w_name}={width},{k_name}={k}"
            config = ApproxFftConfig(
                n=n,
                stage_widths=width,
                twiddle_k=k,
                twiddle_max_shift=twiddle_max_shift,
            )
            reports[label] = analyze_fft_config(
                config, label=label, sign=sign,
                guard_tolerance_bits=guard_tolerance_bits,
            )
    return reports


def analyze_default_configs(
    include_space: bool = True,
) -> Dict[str, BitwidthReport]:
    """Verify the default FLASH weight-path config (and DSE-space corners).

    This is what ``python -m repro lint`` runs: the deployed
    ``FlashConfig`` datapath must be overflow-free; the DSE corners are
    reported informationally (the search space deliberately includes
    under-budgeted points the explorer must price, not configurations we
    ship).
    """
    from repro.core.config import FlashConfig
    from repro.dse.space import DesignSpace

    default = FlashConfig()
    reports = {
        "flash-default": analyze_fft_config(
            default.weight_fft_config(), label="flash-default"
        )
    }
    if include_space:
        core_n = default.n // 2
        space = DesignSpace(stages=core_n.bit_length() - 1)
        reports.update(
            analyze_design_space(
                space, core_n, twiddle_max_shift=default.twiddle_max_shift
            )
        )
    return reports
