"""Dynamic race sanitizer: vector-clock happens-before tracking (mini-TSan).

The static rules in :mod:`repro.lint.rules_concurrency` *infer* a lock
discipline; this module *observes* one.  A :class:`RaceSanitizer` tracks a
vector clock per thread, per lock and per instrumented field:

* releasing a :class:`SanitizedLock` publishes the releasing thread's
  clock into the lock; acquiring joins it -- the classic lock-induced
  happens-before edge;
* every instrumented field access is checked against the field's last
  write (and, for writes, its concurrent reads): an access by another
  thread that the current clock has not yet observed is a data race.

Races are *recorded*, never raised mid-flight (raising inside a worker
would change the very interleaving under test); tests assert on
``sanitizer.races`` afterwards.  Typical pytest usage::

    san = RaceSanitizer()
    cache = PlanCache(...)
    instrument(cache, fields=("hits", "misses", "_bytes"),
               mutable_fields=("_entries",), sanitizer=san)
    san.start()                 # setup happens-before every worker
    ... run the 8-worker stress ...
    san.join_all()              # workers happen-before the assertions
    assert san.races == []

Instrumentation swaps the object's class for a generated subclass whose
``__setattr__`` / ``__getattribute__`` report the named fields, and wraps
the object's lock attributes in :class:`SanitizedLock` -- no source
changes, and uninstrumented objects pay nothing.

This is a test harness, not a production monitor: it serializes metadata
updates behind one internal mutex, so it perturbs timing (like any
sanitizer) and only detects races the schedule actually exhibits.  The
pytest stress tests run enough iterations that a planted race is caught
reliably; see ``tests/test_lint_sanitizer.py``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


class VectorClock:
    """Map of thread id -> event counter with the usual lattice operations."""

    __slots__ = ("_c",)

    def __init__(self, counts: Optional[Dict[int, int]] = None):
        self._c: Dict[int, int] = dict(counts) if counts else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def get(self, tid: int) -> int:
        return self._c.get(tid, 0)

    def increment(self, tid: int) -> None:
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place least upper bound (componentwise max)."""
        for tid, count in other._c.items():
            if count > self._c.get(tid, 0):
                self._c[tid] = count

    def happens_before(self, other: "VectorClock") -> bool:
        """Componentwise ``<=`` (reflexive: a clock happens-before itself)."""
        return all(count <= other.get(tid) for tid, count in self._c.items())

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {t: c for t, c in self._c.items() if c} == {
            t: c for t, c in other._c.items() if c
        }

    def __hash__(self):
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"t{t}:{c}" for t, c in sorted(self._c.items()))
        return f"VectorClock({inner})"


@dataclass(frozen=True)
class RaceReport:
    """One detected happens-before violation."""

    var: str
    kind: str  # "write-write" | "read-write" | "write-read"
    first_thread: int
    second_thread: int

    def __str__(self) -> str:
        return (
            f"{self.kind} race on {self.var}: thread {self.first_thread} "
            f"vs thread {self.second_thread} (unordered by happens-before)"
        )


@dataclass
class _VarState:
    """Access history of one instrumented variable."""

    last_write: Optional[Tuple[int, VectorClock]] = None
    reads: Dict[int, VectorClock] = field(default_factory=dict)


class RaceSanitizer:
    """Vector-clock happens-before checker for locks and field accesses.

    All metadata lives behind one internal mutex, so the sanitizer itself
    is thread-safe; application-level happens-before is tracked purely
    through the clocks, not through that mutex.
    """

    def __init__(self):
        self._mu = threading.Lock()
        self._thread_clocks: Dict[int, VectorClock] = {}
        self._lock_clocks: Dict[int, VectorClock] = {}
        self._lock_depths: Dict[Tuple[int, int], int] = {}
        self._vars: Dict[Hashable, _VarState] = {}
        self._genesis = VectorClock()
        self.races: List[RaceReport] = []
        self._race_keys: set = set()
        self._tls = threading.local()
        self._next_tid = 0

    # -- thread clock management ----------------------------------------

    def _tid(self) -> int:
        """Unique id of the calling thread for this sanitizer's lifetime.

        ``threading.get_ident()`` is unusable here: the OS reuses idents
        of joined threads, which would make a fresh thread silently
        inherit a dead thread's clock (missing every race against it).
        Thread-local storage dies with its thread, so each thread gets a
        fresh counter value exactly once.
        """
        tid = getattr(self._tls, "tid", None)
        if tid is None:
            with self._mu:
                tid = self._next_tid
                self._next_tid += 1
            self._tls.tid = tid
        return tid

    def _clock_locked(self, tid: int) -> VectorClock:
        clock = self._thread_clocks.get(tid)
        if clock is None:
            # New thread: everything the session had done at start()
            # happens-before its first event.
            clock = self._genesis.copy()
            clock.increment(tid)
            self._thread_clocks[tid] = clock
        return clock

    def start(self) -> None:
        """Mark the end of single-threaded setup.

        Everything the calling thread has done so far happens-before any
        thread registered afterwards, so initialization writes are not
        misreported as races.
        """
        tid = self._tid()
        with self._mu:
            clock = self._clock_locked(tid)
            self._genesis = clock.copy()

    def join_all(self) -> None:
        """Join every known thread's clock into the calling thread.

        Call after the worker pool has been joined (e.g. the executor
        context exited): post-parallel assertions then read instrumented
        fields without spurious reports.
        """
        tid = self._tid()
        with self._mu:
            clock = self._clock_locked(tid)
            for other in self._thread_clocks.values():
                clock.join(other)

    # -- lock events -----------------------------------------------------

    def on_acquire(self, lock_id: int) -> None:
        tid = self._tid()
        with self._mu:
            depth = self._lock_depths.get((lock_id, tid), 0)
            self._lock_depths[(lock_id, tid)] = depth + 1
            if depth == 0:
                lock_clock = self._lock_clocks.get(lock_id)
                if lock_clock is not None:
                    self._clock_locked(tid).join(lock_clock)

    def on_release(self, lock_id: int) -> None:
        tid = self._tid()
        with self._mu:
            depth = self._lock_depths.get((lock_id, tid), 0)
            if depth > 1:
                # Reentrant inner release: the critical section continues,
                # publish only at the outermost release.
                self._lock_depths[(lock_id, tid)] = depth - 1
                return
            self._lock_depths.pop((lock_id, tid), None)
            clock = self._clock_locked(tid)
            self._lock_clocks[lock_id] = clock.copy()
            clock.increment(tid)

    # -- variable accesses ----------------------------------------------

    def _report_locked(
        self, var: Hashable, kind: str, first: int, second: int
    ) -> None:
        key = (str(var), kind, first, second)
        if key in self._race_keys:
            return  # one report per (var, kind, thread pair)
        self._race_keys.add(key)
        self.races.append(
            RaceReport(
                var=str(var), kind=kind,
                first_thread=first, second_thread=second,
            )
        )

    def on_read(self, var: Hashable) -> None:
        tid = self._tid()
        with self._mu:
            clock = self._clock_locked(tid)
            state = self._vars.setdefault(var, _VarState())
            if state.last_write is not None:
                wtid, wclock = state.last_write
                if wtid != tid and not wclock.happens_before(clock):
                    self._report_locked(var, "write-read", wtid, tid)
            state.reads[tid] = clock.copy()

    def on_write(self, var: Hashable) -> None:
        tid = self._tid()
        with self._mu:
            clock = self._clock_locked(tid)
            state = self._vars.setdefault(var, _VarState())
            if state.last_write is not None:
                wtid, wclock = state.last_write
                if wtid != tid and not wclock.happens_before(clock):
                    self._report_locked(var, "write-write", wtid, tid)
            for rtid, rclock in state.reads.items():
                if rtid != tid and not rclock.happens_before(clock):
                    self._report_locked(var, "read-write", rtid, tid)
            state.last_write = (tid, clock.copy())
            state.reads = {}

    def describe(self) -> str:
        if not self.races:
            return "sanitizer: no races detected"
        lines = [f"sanitizer: {len(self.races)} race(s) detected"]
        lines.extend(f"  {r}" for r in self.races)
        return "\n".join(lines)


class SanitizedLock:
    """Lock proxy that reports acquire/release to a :class:`RaceSanitizer`.

    Wraps ``threading.Lock`` and ``threading.RLock`` alike (reentrancy is
    tracked by the sanitizer, which publishes only at the outermost
    release).
    """

    def __init__(self, inner, sanitizer: RaceSanitizer, name: str = "lock"):
        self._inner = inner
        self._san = sanitizer
        self._name = name

    def acquire(self, *args, **kwargs) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._san.on_acquire(id(self))
        return got

    def release(self) -> None:
        self._san.on_release(id(self))
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"SanitizedLock({self._name})"


_CLASS_CACHE: Dict[Tuple[type, frozenset, frozenset, int], type] = {}


def _sanitized_class(
    base: type,
    fields: frozenset,
    mutable_fields: frozenset,
    san: RaceSanitizer,
) -> type:
    key = (base, fields, mutable_fields, id(san))
    cached = _CLASS_CACHE.get(key)
    if cached is not None:
        return cached
    tracked = fields | mutable_fields

    def __setattr__(self, name, value):
        if name in tracked:
            san.on_write((f"{base.__name__}#{id(self):x}", name))
        base.__setattr__(self, name, value)

    def __getattribute__(self, name):
        if name in tracked:
            var = (f"{base.__name__}#{id(self):x}", name)
            # Handing out a reference to a mutable container counts as a
            # write: the caller may mutate it in place, and attribute-level
            # tracking cannot see deeper.
            if name in mutable_fields:
                san.on_write(var)
            else:
                san.on_read(var)
        return base.__getattribute__(self, name)

    cls = type(
        f"Sanitized{base.__name__}",
        (base,),
        {"__setattr__": __setattr__, "__getattribute__": __getattribute__},
    )
    _CLASS_CACHE[key] = cls
    return cls


def instrument(
    obj,
    fields: Sequence[str],
    mutable_fields: Sequence[str] = (),
    lock_attrs: Sequence[str] = ("_lock",),
    sanitizer: Optional[RaceSanitizer] = None,
) -> RaceSanitizer:
    """Attach race tracking to ``obj`` in place.

    Args:
        obj: instance to watch (its class is swapped for a generated
            subclass; ``isinstance`` checks keep working).
        fields: attribute names whose reads and writes are tracked.
        mutable_fields: attributes holding containers mutated in place;
            every access (even a read) is treated as a write, since the
            reference may be used to mutate.
        lock_attrs: lock-valued attributes to wrap in
            :class:`SanitizedLock` (missing names are ignored).
        sanitizer: shared :class:`RaceSanitizer`; a fresh one by default.

    Returns:
        the sanitizer (for ``start()`` / ``join_all()`` / ``races``).
    """
    san = sanitizer if sanitizer is not None else RaceSanitizer()
    for attr in lock_attrs:
        inner = getattr(obj, attr, None)
        if inner is not None and not isinstance(inner, SanitizedLock):
            object.__setattr__(
                obj, attr,
                SanitizedLock(inner, san, f"{type(obj).__name__}.{attr}"),
            )
    cls = _sanitized_class(
        type(obj), frozenset(fields), frozenset(mutable_fields), san
    )
    object.__setattr__(obj, "__class__", cls)
    return san
