"""Modular-arithmetic rules (MOD001, MOD002).

These protect the invariant documented in :mod:`repro.ntt.modmath`: the
vectorized kernels support moduli up to 40 bits *only* because every
intermediate of the 20-bit operand split stays below ``2**63``.  A raw
``a * b % q`` on ``uint64`` arrays passes every test at toy moduli and
silently wraps at ``q`` around ``2**32`` -- exactly the 32/35/39-bit
regime the F1/CHAM baselines and our RNS bases operate in.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, RuleContext, register_rule

#: Packages whose integer arithmetic lives in the modular domain.
MODULAR_SCOPES = ("repro.ntt", "repro.fftcore", "repro.he")


def _is_plain_int_expr(node: ast.AST) -> bool:
    """True when ``node`` is provably a Python ``int`` (exact arithmetic).

    Recognized: integer literals, ``int(...)`` / ``len(...)`` /
    ``round(...)`` calls, ``.bit_length()`` calls, and arithmetic composed
    purely of those.  Python ints are arbitrary-precision, so raw ``%`` on
    them cannot overflow and floored division handles negatives correctly.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("int", "len", "round"):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "bit_length":
            return True
        return False
    if isinstance(node, ast.BinOp):
        return _is_plain_int_expr(node.left) and _is_plain_int_expr(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_plain_int_expr(node.operand)
    return False


def _in_compare(ctx: RuleContext, node: ast.AST) -> bool:
    """True when ``node`` is a direct operand of a comparison.

    ``(q - 1) % (2 * n) != 0`` is the standard divisibility test on scalar
    parameters; flagging it would bury the real findings in noise.
    """
    parent = ctx.parent(node)
    return isinstance(parent, ast.Compare)


@register_rule
class RawModularProductRule(Rule):
    """MOD001: ``(a * b) % q`` / ``(a ** b) % q`` instead of mulmod/powmod.

    On ``uint64`` arrays the product wraps modulo ``2**64`` *before* the
    reduction once operands exceed 32 bits; use
    :func:`repro.ntt.modmath.mulmod` (20-bit split) or
    :func:`repro.ntt.modmath.powmod` instead.  Scalar Python-int sites are
    exact -- suppress them with a reason.
    """

    rule_id = "MOD001"
    severity = Severity.ERROR
    description = (
        "raw `*`/`**` followed by `%` in a modular-arithmetic module; "
        "use mulmod()/powmod() (uint64 products wrap above 2**32 operands)"
    )
    scopes = MODULAR_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)):
                continue
            left = node.left
            if not (
                isinstance(left, ast.BinOp)
                and isinstance(left.op, (ast.Mult, ast.Pow))
            ):
                continue
            if _is_plain_int_expr(left):
                continue
            kind = "product" if isinstance(left.op, ast.Mult) else "power"
            helper = "mulmod" if isinstance(left.op, ast.Mult) else "powmod"
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"raw modular {kind}: use repro.ntt.modmath.{helper} "
                    f"(uint64 intermediates wrap for moduli above ~32 bits)",
                )
            )
        return findings


@register_rule
class NegativeModRule(Rule):
    """MOD002: ``%`` applied to a possibly-negative difference/negation.

    ``(a - b) % q`` wraps modulo ``2**64`` *before* the reduction when the
    operands are unsigned arrays, and is a porting landmine for signed
    code translated from C (truncated division).  Use
    :func:`repro.ntt.modmath.submod` / :func:`negmod`, which stay inside
    unsigned arithmetic.  Divisibility tests (``% ... != 0``) and pure
    Python-int expressions are exempt.
    """

    rule_id = "MOD002"
    severity = Severity.ERROR
    description = (
        "`%` on a possibly-negative difference/negation; use "
        "submod()/negmod() (unsigned arrays wrap before the reduction)"
    )
    scopes = MODULAR_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)):
                continue
            left = node.left
            negated = isinstance(left, ast.BinOp) and isinstance(left.op, ast.Sub)
            negated = negated or (
                isinstance(left, ast.UnaryOp) and isinstance(left.op, ast.USub)
            )
            if not negated:
                continue
            if _in_compare(ctx, node) or _is_plain_int_expr(left):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "modular reduction of a possibly-negative value: use "
                    "repro.ntt.modmath.submod/negmod (uint64 differences "
                    "wrap before `%` reduces them)",
                )
            )
        return findings
