"""Concurrency rules (RACE001, RACE002, LOCK001, DET001).

The batched runtime fans work across thread pools and the fault layer
retries it; both share mutable state (plan caches, stats counters,
sessions).  These rules turn the repository's lock discipline -- learned
from the code itself by :mod:`repro.lint.locks` -- into a checked
contract:

* RACE001 -- a shared attribute is mutated outside its inferred guard;
* RACE002 -- a compound read-modify-write (``self.hits += 1``) runs
  unguarded on a lock-disciplined class: lost updates even when each
  individual access looks benign;
* LOCK001 -- an attribute is guarded by *different* locks at different
  sites, which serializes nothing;
* DET001 -- nondeterminism inside parallel paths: unordered ``set``
  iteration (result order then depends on hash seeding) or wall-clock /
  PRNG calls inside worker-thread jobs, which break the runtime's
  bit-identical serial-fallback contract.

Scoped to the packages that actually run concurrent code.  The dynamic
counterpart (:mod:`repro.lint.sanitizer`) validates these findings
against real interleavings.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding, Severity
from repro.lint.locks import ClassModel, build_module_model, job_function_nodes
from repro.lint.rules import Rule, RuleContext, register_rule

#: Packages whose code runs on (or hands work to) worker threads.
CONCURRENCY_SCOPES = (
    "repro.runtime",
    "repro.faults",
    "repro.protocol",
    "repro.serve",
    "repro.obs",
)

#: Rule IDs that `python -m repro lint --concurrency` selects.
CONCURRENCY_RULE_IDS = ("RACE001", "RACE002", "LOCK001", "DET001")


class _ModelCache:
    """One :class:`ModuleModel` per RuleContext, shared by the four rules."""

    def get(self, ctx: RuleContext):
        model = getattr(ctx.tree, "_repro_concurrency_model", None)
        if model is None:
            model = build_module_model(ctx.tree)
            ctx.tree._repro_concurrency_model = model
        return model


_MODELS = _ModelCache()


def _is_compound(kind: str) -> bool:
    return kind in ("augassign", "rmw")


@register_rule
class UnguardedSharedWriteRule(Rule):
    """RACE001: shared attribute mutated outside its inferred guard."""

    rule_id = "RACE001"
    severity = Severity.ERROR
    description = (
        "attribute with an inferred lock guard is mutated outside that "
        "lock (or a worker-thread job writes shared state unguarded)"
    )
    scopes = CONCURRENCY_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for cls in _MODELS.get(ctx).classes:
            findings.extend(self._check_class(ctx, cls))
        return findings

    def _check_class(self, ctx: RuleContext, cls: ClassModel) -> List[Finding]:
        findings = []
        guards = cls.guards()
        for w in cls.writes:
            if w.in_init or w.locks_held:
                continue
            if w.kind == "locked_call":
                findings.append(
                    self.finding(
                        ctx, w.node,
                        f"{cls.name}.{w.attr}() asserts the caller holds "
                        f"the lock, but {w.method}() calls it without one",
                    )
                )
                continue
            if _is_compound(w.kind):
                continue  # RACE002's territory
            guarded_by = guards.get(w.attr)
            if guarded_by:
                locks = "/".join(sorted(guarded_by))
                findings.append(
                    self.finding(
                        ctx, w.node,
                        f"{cls.name}.{w.attr} is written under self.{locks} "
                        f"elsewhere but mutated without it in {w.method}()",
                    )
                )
            elif w.in_job and cls.lock_disciplined:
                findings.append(
                    self.finding(
                        ctx, w.node,
                        f"{cls.name}.{w.attr} is mutated from a worker-"
                        f"thread job ({w.method}) with no lock held",
                    )
                )
        return findings


@register_rule
class CompoundUpdateRule(Rule):
    """RACE002: unguarded read-modify-write on a lock-disciplined class.

    ``self.hits += 1`` is a load, an add and a store; two threads
    interleaving them lose updates.  On a class that owns a lock, every
    compound update of instance state must run under it -- even counters
    that "only drift a little": the conformance tier asserts exact
    numbers.
    """

    rule_id = "RACE002"
    severity = Severity.ERROR
    description = (
        "compound read-modify-write (`self.x += ...`) outside the lock "
        "on a lock-disciplined class (lost updates under threads)"
    )
    scopes = CONCURRENCY_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for cls in _MODELS.get(ctx).classes:
            shared = cls.lock_disciplined
            for w in cls.writes:
                if w.in_init or w.locks_held or not _is_compound(w.kind):
                    continue
                if not (shared or w.in_job):
                    continue
                where = (
                    "a worker-thread job" if w.in_job else f"{w.method}()"
                )
                findings.append(
                    self.finding(
                        ctx, w.node,
                        f"compound update of {cls.name}.{w.attr} in {where} "
                        "without the class lock: concurrent increments "
                        "lose updates",
                    )
                )
        return findings


@register_rule
class InconsistentGuardRule(Rule):
    """LOCK001: one attribute guarded by different locks at different sites."""

    rule_id = "LOCK001"
    severity = Severity.ERROR
    description = (
        "attribute is written under different locks at different sites; "
        "inconsistent guards serialize nothing"
    )
    scopes = CONCURRENCY_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for cls in _MODELS.get(ctx).classes:
            # Discipline is consistent when one common lock is held at
            # every guarded write of the attribute (holding extra locks
            # at some sites is fine); an empty intersection across two or
            # more sites means no single lock serializes them.
            sites: dict = {}
            for w in cls.writes:
                if w.in_init or not w.locks_held:
                    continue
                sites.setdefault(w.attr, []).append(w)
            for attr, writes in sorted(sites.items()):
                if len(writes) < 2:
                    continue
                common = set(writes[0].locks_held)
                for w in writes[1:]:
                    common &= w.locks_held
                if common:
                    continue
                seen = sorted(
                    {name for w in writes for name in w.locks_held}
                )
                locks = ", ".join(f"self.{name}" for name in seen)
                findings.append(
                    self.finding(
                        ctx, writes[-1].node,
                        f"{cls.name}.{attr} is guarded by {locks} at "
                        "different sites with no common lock; pick one "
                        "lock per field",
                    )
                )
        return findings


_TIME_MODULES = ("time",)
_RANDOM_MODULES = ("random",)
#: time.* calls that are pure reads of configuration, not the wall clock.
_TIME_SAFE = frozenset({"sleep", "strftime", "gmtime", "localtime"})


def _set_iteration_target(node: ast.AST):
    """The iterable expression when ``node`` iterates something set-typed."""
    if isinstance(node, ast.For):
        return node.iter
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return node.generators[0].iter
    return None


#: Wrappers that preserve the order of their (first) argument, so a set
#: inside them still iterates in arbitrary order.
_ORDER_PRESERVING = ("enumerate", "list", "tuple", "iter", "reversed", "zip")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
        if node.func.id in _ORDER_PRESERVING and node.args:
            return _is_set_expr(node.args[0])
    return False


@register_rule
class ParallelNondeterminismRule(Rule):
    """DET001: nondeterminism feeding or inside parallel paths.

    The runtime's contract (PR 2) is byte-identical output for every
    worker count.  Iterating an unordered ``set`` makes job order depend
    on hash seeding, and wall-clock / PRNG reads inside a worker job make
    the result depend on scheduling.  Sort the iterable; draw randomness
    and timestamps in the submitting thread.
    """

    rule_id = "DET001"
    severity = Severity.WARNING
    description = (
        "nondeterminism in a parallel path: unordered set iteration, or "
        "time/random calls inside a worker-thread job"
    )
    scopes = CONCURRENCY_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        model = _MODELS.get(ctx)
        job_lines = set()
        for _, linenos in job_function_nodes(model):
            job_lines.update(linenos)

        for node in ast.walk(ctx.tree):
            target = _set_iteration_target(node)
            if target is not None and _is_set_expr(target):
                findings.append(
                    self.finding(
                        ctx, target,
                        "iterating an unordered set: order depends on hash "
                        "seeding; wrap in sorted(...) to keep parallel "
                        "job order deterministic",
                    )
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and getattr(node, "lineno", 0) in job_lines
            ):
                mod = node.func.value.id
                if mod in _TIME_MODULES and node.func.attr not in _TIME_SAFE:
                    findings.append(
                        self.finding(
                            ctx, node,
                            f"wall-clock read (time.{node.func.attr}) inside "
                            "a worker-thread job: results become "
                            "schedule-dependent; time in the submitting "
                            "thread instead",
                        )
                    )
                elif mod in _RANDOM_MODULES:
                    findings.append(
                        self.finding(
                            ctx, node,
                            f"PRNG call (random.{node.func.attr}) inside a "
                            "worker-thread job: draw randomness in the "
                            "submitting thread and pass it in",
                        )
                    )
        return findings
