"""File walking, AST parsing, rule dispatch, and suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, RuleContext, all_rules, known_rule_ids
from repro.lint.suppress import ALL, SuppressionIndex


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed_count += other.suppressed_count
        self.files_checked += other.files_checked
        self.parse_errors.extend(other.parse_errors)


def module_for_path(path: str) -> str:
    """Dotted module name inferred from the path.

    The *last* ``repro`` component anchors the package root, so both
    ``src/repro/ntt/modmath.py`` and lint-test fixtures laid out as
    ``tests/lint_fixtures/repro/ntt/bad.py`` resolve into the ``repro.*``
    namespace the scoped rules target.
    """
    parts = list(os.path.normpath(os.path.abspath(path)).split(os.sep))
    stem = os.path.splitext(parts[-1])[0]
    parts[-1] = stem
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = [stem]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotate_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git") and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


#: Rule IDs that are valid suppression targets but not AST-registry rules.
_NON_AST_RULE_IDS = frozenset({"BW001", "SUP001", "SUP002"})


def _validate_suppressions(
    suppressions: SuppressionIndex, lines: Sequence[str], path: str
) -> List[Finding]:
    """Check the suppression comments themselves.

    SUP001: a directive names a rule ID that does not exist -- a typo
    like ``disable=RACE01`` silently disables nothing while the author
    believes the site is audited.  SUP002: a directive carries no
    justification; the reason is the audit trail that makes a suppression
    reviewable (docs/static_analysis.md).
    """
    known = known_rule_ids() | _NON_AST_RULE_IDS
    findings = []
    for directive in suppressions.directives:
        for rule_id in directive.rules:
            if rule_id != ALL and rule_id not in known:
                findings.append(
                    Finding(
                        rule_id="SUP001",
                        severity=Severity.WARNING,
                        path=path,
                        line=directive.line,
                        col=1,
                        message=(
                            f"suppression names unknown rule {rule_id!r} "
                            "and disables nothing; fix the ID"
                        ),
                    )
                )
        if not directive.reason and not _has_reason_continuation(
            lines, directive.line
        ):
            findings.append(
                Finding(
                    rule_id="SUP002",
                    severity=Severity.WARNING,
                    path=path,
                    line=directive.line,
                    col=1,
                    message=(
                        "suppression without a justification; state the "
                        "bound or property that makes the pattern safe"
                    ),
                )
            )
    return findings


def _has_reason_continuation(lines: Sequence[str], lineno: int) -> bool:
    """A standalone-comment directive may carry its reason on the next
    comment line (the documented multi-line justification form)."""
    if lineno > len(lines) or not lines[lineno - 1].lstrip().startswith("#"):
        return False
    if lineno >= len(lines):
        return False
    nxt = lines[lineno].lstrip()
    return nxt.startswith("#") and "repro-lint:" not in nxt


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint one source string (the unit every higher entry point uses)."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.parse_errors.append(f"{path}:{exc.lineno}: {exc.msg}")
        return result
    _annotate_parents(tree)
    lines = source.splitlines()
    ctx = RuleContext(
        path=path,
        module=module if module is not None else module_for_path(path),
        tree=tree,
        lines=lines,
    )
    suppressions = SuppressionIndex(lines)
    active = rules if rules is not None else all_rules()
    checked = list(active)
    for rule in checked:
        if not rule.applies_to(ctx.module):
            continue
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                result.suppressed_count += 1
            else:
                result.findings.append(finding)
    # The suppression comments are linted too (always, regardless of rule
    # selection: a broken directive is broken for every rule set).
    for finding in _validate_suppressions(suppressions, lines, path):
        if suppressions.is_suppressed(finding.rule_id, finding.line):
            result.suppressed_count += 1
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> LintResult:
    """Lint every Python file under ``paths`` with the given (or all) rules."""
    total = LintResult()
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            total.parse_errors.append(f"{path}: {exc}")
            continue
        total.extend(lint_source(source, path=path, rules=rules))
    return total
