"""Hygiene rules (HYG001, HYG002) -- unscoped, apply to every file."""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, RuleContext, register_rule


@register_rule
class SilentExceptRule(Rule):
    """HYG001: bare ``except:`` or ``except Exception: pass``.

    Swallowing exceptions hides the very overflow/precision failures the
    MOD/DTYPE rules exist to prevent -- a saturated spectrum or a failed
    CRT reconstruction must surface, not vanish.
    """

    rule_id = "HYG001"
    severity = Severity.WARNING
    description = "bare `except:` or `except Exception: pass` swallows failures"

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        ctx, node,
                        "bare `except:` catches SystemExit/KeyboardInterrupt "
                        "too; name the exception type",
                    )
                )
                continue
            broad = (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            silent = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
            if broad and silent:
                findings.append(
                    self.finding(
                        ctx, node,
                        "`except Exception: pass` silently swallows failures; "
                        "handle or at least log the error",
                    )
                )
        return findings


_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "OrderedDict")


@register_rule
class MutableDefaultRule(Rule):
    """HYG002: mutable default argument values.

    A shared default list/dict/set persists across calls; stateful caches
    must be explicit (module-level, like ``_NTT_CACHE``), not accidental.
    """

    rule_id = "HYG002"
    severity = Severity.WARNING
    description = "mutable default argument (shared across calls)"

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(
                        self.finding(
                            ctx, default,
                            f"mutable default in {node.name}(): one instance "
                            "is shared across every call; default to None "
                            "and create inside",
                        )
                    )
        return findings

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS
        return False
