"""Dtype-overflow rule (DTYPE001).

CRT-composed coefficients and polynomial products in this codebase exceed
``2**53`` for the default ~60-bit ciphertext modulus; a ``float64`` cast
rounds their low bits away *silently* -- decryption still works at toy
parameters and corrupts at production ones.  Any cast of modular-domain
integers to ``float64`` must therefore carry a suppression documenting
the magnitude bound that makes it safe.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.findings import Finding, Severity
from repro.lint.rules import Rule, RuleContext, register_rule

#: Packages whose integers may be CRT-composed / product values.
INTEGER_DOMAIN_SCOPES = (
    "repro.ntt",
    "repro.he",
    "repro.nn",
    "repro.dse",
    "repro.protocol",
)


def _float64_dtype_arg(node: ast.Call) -> Optional[ast.AST]:
    """The argument of an ``.astype`` call that names float64, if any."""
    candidates = list(node.args)
    for kw in node.keywords:
        if kw.arg == "dtype":
            candidates.append(kw.value)
    for arg in candidates:
        if isinstance(arg, ast.Attribute) and arg.attr == "float64":
            return arg
        if isinstance(arg, ast.Name) and arg.id in ("float64", "float"):
            return arg
        if isinstance(arg, ast.Constant) and arg.value in ("float64", "float"):
            return arg
    return None


@register_rule
class Float64CastRule(Rule):
    """DTYPE001: ``.astype(np.float64)`` in an integer-domain module.

    float64 has a 53-bit mantissa; CRT-composed values (~60-bit q) and
    accumulated products lose low bits in the cast.  Casts of values
    provably below ``2**53`` are fine -- suppress them with the bound as
    the reason (see ``docs/static_analysis.md``).
    """

    rule_id = "DTYPE001"
    severity = Severity.ERROR
    description = (
        ".astype(float64) on modular-domain integers; values above 2**53 "
        "lose low bits silently (suppress with the magnitude bound if safe)"
    )
    scopes = INTEGER_DOMAIN_SCOPES

    def check(self, ctx: RuleContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
                continue
            if _float64_dtype_arg(node) is None:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    "float64 cast of integer-domain data: values above "
                    "2**53 lose precision silently; keep CRT/product "
                    "values integral, or suppress with the magnitude "
                    "bound that makes this safe",
                )
            )
        return findings
