"""Per-line suppression comments.

Syntax::

    x = a * b % q  # repro-lint: disable=MOD001  scalar Python ints, exact

    # repro-lint: disable=DTYPE001  values are < 2**53 by construction
    y = arr.astype(np.float64)

A suppression on a code line covers findings reported on that line; a
suppression on a standalone comment line covers the next non-comment
line (so the justification may continue over several comment lines).
``disable=all`` (or ``disable=*``) suppresses every rule.  Free text after
the rule list documents *why* the pattern is safe -- reviewers should
treat a bare suppression with no reason as a smell.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,]+)(.*)")

#: Sentinel rule name matching every rule.
ALL = "all"


@dataclass(frozen=True)
class Directive:
    """One parsed suppression comment (for validation and tooling)."""

    line: int
    rules: Tuple[str, ...]  # normalized rule IDs (ALL for the wildcard)
    reason: str  # free text after the rule list ("" when missing)


class SuppressionIndex:
    """Maps line numbers to the set of rule IDs suppressed there."""

    def __init__(self, lines: Sequence[str]):
        self._by_line: Dict[int, Set[str]] = {}
        self.directives: List[Directive] = []
        for lineno, text in enumerate(lines, start=1):
            match = _DIRECTIVE.search(text)
            if not match:
                continue
            rules = {
                token.strip().upper() if token.strip() != "*" else ALL.upper()
                for token in match.group(1).split(",")
                if token.strip()
            }
            rules = {ALL if r in ("ALL", "*") else r for r in rules}
            self.directives.append(
                Directive(
                    line=lineno,
                    rules=tuple(sorted(rules)),
                    reason=match.group(2).strip(),
                )
            )
            self._add(lineno, rules)
            if text.lstrip().startswith("#"):
                # Standalone comment: also covers the next non-comment line,
                # so the justification may span several comment lines.
                target = lineno + 1
                while (
                    target <= len(lines)
                    and lines[target - 1].lstrip().startswith("#")
                ):
                    target += 1
                self._add(target, rules)

    def _add(self, lineno: int, rules: Set[str]) -> None:
        self._by_line.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self._by_line.get(line)
        if not rules:
            return False
        return ALL in rules or rule_id.upper() in rules

    def __len__(self) -> int:
        return len(self._by_line)
