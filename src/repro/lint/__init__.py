"""Domain-aware static analysis for the FLASH reproduction.

The numeric core of this codebase rests on invariants that ordinary
linters cannot see:

* :func:`repro.ntt.modmath.mulmod` is safe only because every
  intermediate of its 20-bit operand split stays below ``2**63`` -- a raw
  ``a * b % q`` on ``uint64`` arrays silently wraps for ``q`` above
  ~32 bits (MOD001);
* reducing a difference with ``%`` wraps *before* the reduction on
  unsigned arrays (MOD002);
* casting CRT-composed or product values to ``float64`` corrupts
  coefficients above ``2**53`` (DTYPE001);
* fixed-point FFT stages must respect per-stage bit-width budgets
  (:mod:`repro.lint.bitwidth`).

This package turns those paper-level invariants into CI-enforced
contracts: an AST rule engine with per-line suppressions
(``# repro-lint: disable=<ID>  reason``), text/JSON reporters, and a bit-width
dataflow analyzer for :class:`repro.fftcore.fixed_point.ApproxFftConfig`
stage configurations.  Run it as ``python -m repro lint [paths]``.
"""

from repro.lint.bitwidth import (
    BitwidthReport,
    StageReport,
    analyze_default_configs,
    analyze_design_space,
    analyze_fft_config,
)
from repro.lint.engine import LintResult, lint_paths, lint_source, module_for_path
from repro.lint.findings import Finding, Severity
from repro.lint.locks import ClassModel, ModuleModel, build_module_model
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import Rule, RuleContext, all_rules, get_rule, register_rule
from repro.lint.rules_concurrency import CONCURRENCY_RULE_IDS
from repro.lint.sanitizer import (
    RaceReport,
    RaceSanitizer,
    SanitizedLock,
    VectorClock,
    instrument,
)

# Importing the rule modules populates the registry.
from repro.lint import (  # noqa: F401, E402
    rules_concurrency,
    rules_dtype,
    rules_hygiene,
    rules_modular,
)

__all__ = [
    "BitwidthReport",
    "CONCURRENCY_RULE_IDS",
    "ClassModel",
    "Finding",
    "LintResult",
    "ModuleModel",
    "RaceReport",
    "RaceSanitizer",
    "Rule",
    "RuleContext",
    "SanitizedLock",
    "Severity",
    "StageReport",
    "VectorClock",
    "all_rules",
    "analyze_default_configs",
    "analyze_design_space",
    "analyze_fft_config",
    "build_module_model",
    "get_rule",
    "instrument",
    "lint_paths",
    "lint_source",
    "module_for_path",
    "register_rule",
    "render_json",
    "render_text",
]
