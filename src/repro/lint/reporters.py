"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Optional

from repro.lint.engine import LintResult

#: Version of the JSON report schema (bump on breaking changes).
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, bitwidth_summary: Optional[str] = None) -> str:
    """Human-readable report, one ``path:line:col rule message`` per finding."""
    lines = []
    for err in result.parse_errors:
        lines.append(f"parse error: {err}")
    for f in result.findings:
        lines.append(f"{f.location()} {f.severity.value} {f.rule_id} {f.message}")
    if bitwidth_summary:
        lines.append(bitwidth_summary)
    errors = sum(1 for f in result.findings if f.severity.value == "error")
    warnings = len(result.findings) - errors
    lines.append(
        f"{result.files_checked} files checked: {errors} errors, "
        f"{warnings} warnings, {result.suppressed_count} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult, bitwidth: Optional[dict] = None) -> str:
    """Machine-readable report (stable schema, see docs/static_analysis.md)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "counts": {
            "errors": sum(
                1 for f in result.findings if f.severity.value == "error"
            ),
            "warnings": sum(
                1 for f in result.findings if f.severity.value == "warning"
            ),
            "suppressed": result.suppressed_count,
        },
        "parse_errors": list(result.parse_errors),
    }
    if bitwidth is not None:
        payload["bitwidth"] = bitwidth
    return json.dumps(payload, indent=2, sort_keys=True)
