"""Lock-discipline and thread-reachability inference for one module.

The concurrency rules (:mod:`repro.lint.rules_concurrency`) need two
module-level facts that no single AST node carries:

* **which callables run on worker threads** -- anything handed to
  ``ThreadPoolExecutor.submit`` / ``.map``, the runtime's
  :func:`repro.runtime.engine.fan_out`, or ``threading.Thread(target=...)``
  is a *job function*; every ``self.<attr>`` write inside one executes
  concurrently with the submitting thread;
* **which lock guards which attribute** -- learned from the code itself:
  a class that assigns ``self._lock = threading.Lock()`` (or ``RLock``) is
  *lock-disciplined*, and an attribute ever written inside
  ``with self._lock:`` is inferred to be guarded by that lock everywhere.

The model is intentionally intra-module (one file at a time, like every
other rule) and trusts two conventions that the codebase already follows:

* ``__init__`` / ``__post_init__`` writes are exempt (the object is not
  yet published to other threads);
* a method named ``*_locked`` asserts "caller holds the lock": its body
  is analyzed as if every class lock were held, and *call sites* of such
  methods outside a lock region are reported instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: Constructors recognized as lock objects when assigned to ``self.<attr>``.
LOCK_CONSTRUCTORS = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")

#: Method names treated as initialization (writes there are pre-publication).
INIT_METHODS = ("__init__", "__post_init__", "__new__", "__init_subclass__")

#: Attribute-method calls that mutate the underlying container in place.
MUTATING_METHODS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert",
        "move_to_end", "pop", "popitem", "remove", "setdefault", "update",
    }
)


@dataclass
class AttrWrite:
    """One write (or in-place mutation) of ``self.<attr>`` inside a class."""

    attr: str
    node: ast.AST
    kind: str  # "assign" | "augassign" | "rmw" | "mutate" | "locked_call"
    locks_held: FrozenSet[str]
    method: str
    in_init: bool
    in_job: bool


@dataclass
class ClassModel:
    """Inferred concurrency facts for one class definition."""

    name: str
    node: ast.ClassDef
    lock_attrs: Set[str] = field(default_factory=set)
    writes: List[AttrWrite] = field(default_factory=list)

    @property
    def lock_disciplined(self) -> bool:
        return bool(self.lock_attrs)

    def guards(self) -> Dict[str, Set[str]]:
        """Attribute -> set of lock names it was ever written under.

        This is the *inferred discipline*: one guarded write anywhere
        declares the attribute shared, and every other write site must
        agree (RACE001) and use the same lock (LOCK001).
        """
        out: Dict[str, Set[str]] = {}
        for w in self.writes:
            if w.in_init or not w.locks_held:
                continue
            out.setdefault(w.attr, set()).update(w.locks_held)
        return out


@dataclass
class ModuleModel:
    """Concurrency facts for one parsed module."""

    classes: List[ClassModel] = field(default_factory=list)
    #: FunctionDef/AsyncFunctionDef/Lambda nodes that run on worker threads.
    job_functions: List[ast.AST] = field(default_factory=list)
    #: Call nodes that hand work to a parallel primitive.
    entry_points: List[ast.Call] = field(default_factory=list)


def _self_attr(node: ast.AST, self_name: str) -> Optional[str]:
    """Attribute name when ``node`` is ``<self_name>.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _is_lock_ctor(node: ast.AST) -> bool:
    """True for ``threading.Lock()`` / ``Lock()`` / ``RLock()`` etc."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in LOCK_CONSTRUCTORS
    if isinstance(func, ast.Attribute):
        return func.attr in LOCK_CONSTRUCTORS
    return False


def _callable_names(call: ast.Call) -> List[str]:
    """Names of callables handed to a parallel entry-point call."""
    names: List[str] = []

    def name_of(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    func = call.func
    target = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if target == "fan_out":
        # fan_out(jobs, fn, max_workers, ...)
        if len(call.args) >= 2:
            n = name_of(call.args[1])
            if n:
                names.append(n)
        for kw in call.keywords:
            if kw.arg == "fn":
                n = name_of(kw.value)
                if n:
                    names.append(n)
    elif target in ("submit", "map"):
        if call.args:
            n = name_of(call.args[0])
            if n:
                names.append(n)
    elif target == "Thread":
        for kw in call.keywords:
            if kw.arg == "target":
                n = name_of(kw.value)
                if n:
                    names.append(n)
    return names


def _is_entry_point(call: ast.Call) -> bool:
    func = call.func
    target = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if target == "fan_out":
        return True
    if target == "Thread":
        return any(kw.arg == "target" for kw in call.keywords)
    if target in ("submit", "map"):
        # Only attribute calls (pool.submit / executor.map): the builtin
        # ``map(...)`` is a plain Name call and stays exempt.
        return isinstance(func, ast.Attribute)
    return False


class _ClassVisitor(ast.NodeVisitor):
    """Collects lock attributes and attribute writes for one class body."""

    def __init__(self, model: ClassModel, job_names: Set[str]):
        self.model = model
        self.job_names = job_names

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node is not self.model.node:
            return  # nested classes get their own model
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_method(item)

    # -- method walking --------------------------------------------------

    def _walk_method(self, method: ast.FunctionDef) -> None:
        args = method.args.posonlyargs + method.args.args
        self_name = args[0].arg if args else "self"
        in_init = method.name in INIT_METHODS
        # A *_locked method asserts the caller holds every class lock.
        base_locks: FrozenSet[str] = (
            frozenset(self.model.lock_attrs)
            if method.name.endswith("_locked")
            else frozenset()
        )
        self._walk_body(
            method.body, self_name, method.name, in_init,
            locks=base_locks, in_job=False,
        )

    def _walk_body(
        self,
        body: List[ast.stmt],
        self_name: str,
        method: str,
        in_init: bool,
        locks: FrozenSet[str],
        in_job: bool,
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, self_name, method, in_init, locks, in_job)

    def _record(
        self,
        attr: str,
        node: ast.AST,
        kind: str,
        locks: FrozenSet[str],
        method: str,
        in_init: bool,
        in_job: bool,
    ) -> None:
        self.model.writes.append(
            AttrWrite(
                attr=attr, node=node, kind=kind, locks_held=locks,
                method=method, in_init=in_init, in_job=in_job,
            )
        )

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        self_name: str,
        method: str,
        in_init: bool,
        locks: FrozenSet[str],
        in_job: bool,
    ) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            held = set(locks)
            for item in stmt.items:
                lock_attr = _self_attr(item.context_expr, self_name)
                if lock_attr is not None and lock_attr in self.model.lock_attrs:
                    held.add(lock_attr)
            self._walk_body(
                stmt.body, self_name, method, in_init, frozenset(held), in_job
            )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: a job if its name was handed to a parallel
            # primitive anywhere in the module; the enclosing lock context
            # does not carry over (the closure runs later, possibly on
            # another thread with no lock held).
            nested_in_job = in_job or stmt.name in self.job_names
            self._walk_body(
                stmt.body, self_name, f"{method}.{stmt.name}", in_init,
                frozenset(), nested_in_job,
            )
            return

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_target(
                    target, stmt, self_name, method, in_init, locks, in_job
                )
            if not in_init:
                self._record_rmw(stmt, self_name, method, locks, in_job)
        elif isinstance(stmt, ast.AugAssign):
            attr = _self_attr(stmt.target, self_name)
            if attr is not None:
                self._record(
                    attr, stmt, "augassign", locks, method, in_init, in_job
                )
            else:
                self._record_subscript(
                    stmt.target, stmt, self_name, method, in_init, locks,
                    in_job,
                )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._record_target(
                stmt.target, stmt, self_name, method, in_init, locks, in_job
            )
        elif isinstance(stmt, (ast.Delete,)):
            for target in stmt.targets:
                self._record_subscript(
                    target, stmt, self_name, method, in_init, locks, in_job
                )

        # Shallow expressions of this statement (lock context is constant
        # inside an expression): container mutations and *_locked calls.
        for expr in self._shallow_exprs(stmt):
            self._scan_expr(
                expr, self_name, method, in_init, locks, in_job
            )

        # Nested statement bodies keep the current lock context.
        for child_body_name in ("body", "orelse", "finalbody"):
            child_body = getattr(stmt, child_body_name, None)
            if child_body:
                self._walk_body(
                    child_body, self_name, method, in_init, locks, in_job
                )
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk_body(
                handler.body, self_name, method, in_init, locks, in_job
            )

    @staticmethod
    def _shallow_exprs(stmt: ast.stmt) -> List[ast.expr]:
        """Direct expression children of ``stmt`` (no nested statements)."""
        out = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                out.append(child)
        return out

    def _scan_expr(
        self,
        expr: ast.expr,
        self_name: str,
        method: str,
        in_init: bool,
        locks: FrozenSet[str],
        in_job: bool,
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            attr = _self_attr(func.value, self_name)
            if attr is not None and func.attr in MUTATING_METHODS:
                self._record(
                    attr, node, "mutate", locks, method, in_init, in_job
                )
            helper = _self_attr(func, self_name)
            if (
                helper is not None
                and helper.endswith("_locked")
                and not locks
                and not in_init
            ):
                self._record(
                    helper, node, "locked_call", locks, method, in_init,
                    in_job,
                )

    def _record_target(
        self,
        target: ast.AST,
        stmt: ast.stmt,
        self_name: str,
        method: str,
        in_init: bool,
        locks: FrozenSet[str],
        in_job: bool,
    ) -> None:
        attr = _self_attr(target, self_name)
        if attr is not None:
            self._record(attr, stmt, "assign", locks, method, in_init, in_job)
            return
        self._record_subscript(
            target, stmt, self_name, method, in_init, locks, in_job
        )
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._record_target(
                    elt, stmt, self_name, method, in_init, locks, in_job
                )

    def _record_subscript(
        self,
        target: ast.AST,
        stmt: ast.stmt,
        self_name: str,
        method: str,
        in_init: bool,
        locks: FrozenSet[str],
        in_job: bool,
    ) -> None:
        """``self.d[k] = v`` mutates the container held in ``self.d``."""
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value, self_name)
            if attr is not None:
                self._record(
                    attr, stmt, "mutate", locks, method, in_init, in_job
                )

    def _record_rmw(
        self,
        stmt: ast.Assign,
        self_name: str,
        method: str,
        locks: FrozenSet[str],
        in_job: bool,
    ) -> None:
        """``self.x = self.x + 1`` is a compound read-modify-write too."""
        for target in stmt.targets:
            attr = _self_attr(target, self_name)
            if attr is None:
                continue
            for node in ast.walk(stmt.value):
                if _self_attr(node, self_name) == attr:
                    self._record(
                        attr, stmt, "rmw", locks, method, False, in_job
                    )
                    return


def _collect_lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """First pass: every ``self.<attr> = threading.Lock()`` in any method."""
    locks: Set[str] = set()
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = item.args.posonlyargs + item.args.args
        self_name = args[0].arg if args else "self"
        for node in ast.walk(item):
            if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                for target in node.targets:
                    attr = _self_attr(target, self_name)
                    if attr is not None:
                        locks.add(attr)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and _is_lock_ctor(node.value)
            ):
                attr = _self_attr(node.target, self_name)
                if attr is not None:
                    locks.add(attr)
    return locks


def build_module_model(tree: ast.AST) -> ModuleModel:
    """Analyze one parsed module into a :class:`ModuleModel`."""
    model = ModuleModel()

    # Pass 1: parallel entry points and the names of their job callables.
    job_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_entry_point(node):
            model.entry_points.append(node)
            job_names.update(_callable_names(node))
            # Lambdas passed inline are job bodies too.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    model.job_functions.append(arg)

    # Pass 2: resolve job names to function definitions.
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in job_names
        ):
            model.job_functions.append(node)

    # Pass 3: per-class lock discipline.
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls_model = ClassModel(name=node.name, node=node)
        cls_model.lock_attrs = _collect_lock_attrs(node)
        visitor = _ClassVisitor(cls_model, job_names)
        visitor.visit_ClassDef(node)
        model.classes.append(cls_model)
    return model


def job_function_nodes(model: ModuleModel) -> List[Tuple[ast.AST, Set[int]]]:
    """Job functions paired with the line numbers their bodies span.

    Used by DET001 to decide whether a call site executes on a worker
    thread without re-walking the tree per call.
    """
    out = []
    for fn in model.job_functions:
        linenos = {
            n.lineno for n in ast.walk(fn) if hasattr(n, "lineno")
        }
        out.append((fn, linenos))
    return out
