"""Finding and severity types shared by all rules and reporters."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad an unsuppressed finding is.

    ``ERROR`` findings break numeric invariants (silent corruption);
    ``WARNING`` findings are hygiene/robustness problems.  Both fail the
    lint run -- the distinction only affects reporting.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
