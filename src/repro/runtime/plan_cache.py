"""Bounded, keyed cache for transform plans and precomputed spectra.

Every hot path in the repository used to keep its own unbounded dict cache
(NTT plans in :mod:`repro.ntt.ntt`, weight spectra and FFT pipelines in
:mod:`repro.he.backend`).  :class:`PlanCache` replaces those with one
byte-accounted LRU structure: entries are keyed by arbitrary hashable
tuples -- typically ``(kind, degree, modulus)`` for NTT plans and
``(kind, degree, config_key, weights_bytes)`` for weight spectra -- and
evicted least-recently-used when a capacity is exceeded.

Two full-cache policies exist because the paper needs both:

* ``on_full="evict"`` -- the runtime behaviour: never hold more than
  ``capacity_bytes``, evicting LRU entries (an entry larger than the whole
  capacity is returned but not retained).
* ``on_full="error"`` -- the Figure 1 memory-wall model used by
  :class:`repro.he.backend.CachedNttBackend`: exceeding the budget raises
  :class:`MemoryError`, demonstrating why storing NTT-domain weights is
  infeasible at ResNet scale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple


def estimate_nbytes(value: Any) -> int:
    """Best-effort byte footprint of a cached value.

    Understands numpy arrays, containers of arrays, objects exposing a
    ``plan_bytes`` property (transform plans) and objects with ``values``
    arrays (:class:`repro.fftcore.approx_pipeline.ApproxSpectrum`).
    """
    import numpy as np

    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    plan_bytes = getattr(value, "plan_bytes", None)
    if isinstance(plan_bytes, (int, np.integer)):
        return int(plan_bytes)
    if isinstance(value, (list, tuple)):
        return sum(estimate_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v) for v in value.values())
    values = getattr(value, "values", None)
    if isinstance(values, np.ndarray):
        return int(values.nbytes) + estimate_nbytes(
            getattr(value, "scale", None)
        )
    if isinstance(value, (int, float, complex)):
        return 8
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    return 0


class PlanCache:
    """Keyed LRU cache with byte accounting and hit/miss statistics.

    Args:
        capacity_bytes: byte budget; ``None`` means unbounded.
        max_entries: optional entry-count bound (applied with LRU order).
        on_full: ``"evict"`` (LRU eviction, the runtime default) or
            ``"error"`` (raise :class:`MemoryError` when the byte budget is
            exceeded -- the paper's memory-wall model).
        sizeof: override for the byte estimator.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        on_full: str = "evict",
        sizeof: Optional[Callable[[Any], int]] = None,
    ):
        if on_full not in ("evict", "error"):
            raise ValueError(f"unknown on_full policy {on_full!r}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.max_entries = max_entries
        self.on_full = on_full
        self._sizeof = sizeof or estimate_nbytes
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- inspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def cached_bytes(self) -> int:
        """Bytes held by cached values (per the size estimator)."""
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot of counters for reports and benchmarks."""
        return {
            "entries": len(self._entries),
            "cached_bytes": self._bytes,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def keys(self):
        return list(self._entries.keys())

    # Dict-style access, so a PlanCache is a drop-in for the plain dict
    # caches it replaced (misses raise KeyError instead of counting).

    def __getitem__(self, key: Hashable) -> Any:
        with self._lock:
            if key not in self._entries:
                raise KeyError(key)
            self._entries.move_to_end(key)
            return self._entries[key][0]

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    # -- core operations -------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its LRU position on a hit."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any, nbytes: Optional[int] = None) -> Any:
        """Insert ``value`` under ``key``, applying the full-cache policy.

        Returns the value (possibly without retaining it, when a single
        entry exceeds the whole byte budget under the eviction policy).
        """
        size = self._sizeof(value) if nbytes is None else int(nbytes)
        with self._lock:
            if (
                self.on_full == "evict"
                and self.capacity_bytes is not None
                and size > self.capacity_bytes
            ):
                # Oversized entry: caching it would only evict every other
                # entry and then itself; hand it back without retaining.
                if key in self._entries:
                    self._bytes -= self._entries.pop(key)[1]
                return value
            if key in self._entries:
                self._bytes -= self._entries.pop(key)[1]
            self._entries[key] = (value, size)
            self._bytes += size
            if self.on_full == "error":
                if (
                    self.capacity_bytes is not None
                    and self._bytes > self.capacity_bytes
                ):
                    raise MemoryError(
                        f"plan cache exceeds {self.capacity_bytes} bytes "
                        f"({self._bytes} held; the Figure 1 memory wall)"
                    )
                return value
            self._shrink_locked()
            return value

    def _shrink_locked(self) -> None:
        """Evict LRU entries until both capacity bounds hold."""
        while self._entries and (
            (
                self.capacity_bytes is not None
                and self._bytes > self.capacity_bytes
            )
            or (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            )
        ):
            _, (_, size) = self._entries.popitem(last=False)
            self._bytes -= size
            self.evictions += 1

    def get_or_build(
        self,
        key: Hashable,
        build: Callable[[], Any],
        nbytes: Optional[int] = None,
    ) -> Any:
        """Return the cached value for ``key`` or build, insert and return it.

        The build runs outside the lock (plan construction can be slow); a
        concurrent duplicate build is tolerated and the first inserted value
        wins, keeping results deterministic for pure builders.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
        value = build()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key][0]
        return self.put(key, value, nbytes=nbytes)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __repr__(self) -> str:
        cap = (
            f"{self.capacity_bytes}B"
            if self.capacity_bytes is not None
            else "unbounded"
        )
        return (
            f"PlanCache(entries={len(self._entries)}, "
            f"bytes={self._bytes}, capacity={cap}, policy={self.on_full})"
        )


def approx_config_key(config) -> tuple:
    """Hashable cache key for an :class:`ApproxFftConfig` (or ``None``)."""
    if config is None:
        return ("fp64",)
    return (
        config.n,
        tuple(config.stage_widths),
        config.twiddle_k,
        config.twiddle_max_shift,
        config.input_width,
    )
