"""Bounded, keyed cache for transform plans and precomputed spectra.

Every hot path in the repository used to keep its own unbounded dict cache
(NTT plans in :mod:`repro.ntt.ntt`, weight spectra and FFT pipelines in
:mod:`repro.he.backend`).  :class:`PlanCache` replaces those with one
byte-accounted LRU structure: entries are keyed by arbitrary hashable
tuples -- typically ``(kind, degree, modulus)`` for NTT plans and
``(kind, degree, config_key, weights_bytes)`` for weight spectra -- and
evicted least-recently-used when a capacity is exceeded.

Two full-cache policies exist because the paper needs both:

* ``on_full="evict"`` -- the runtime behaviour: never hold more than
  ``capacity_bytes``, evicting LRU entries (an entry larger than the whole
  capacity is returned but not retained).
* ``on_full="error"`` -- the Figure 1 memory-wall model used by
  :class:`repro.he.backend.CachedNttBackend`: exceeding the budget raises
  :class:`MemoryError`, demonstrating why storing NTT-domain weights is
  infeasible at ResNet scale.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple


def estimate_nbytes(value: Any) -> int:
    """Best-effort byte footprint of a cached value.

    Understands numpy arrays, containers of arrays, objects exposing a
    ``plan_bytes`` property (transform plans) and objects with ``values``
    arrays (:class:`repro.fftcore.approx_pipeline.ApproxSpectrum`).
    """
    import numpy as np

    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    plan_bytes = getattr(value, "plan_bytes", None)
    if isinstance(plan_bytes, (int, np.integer)):
        return int(plan_bytes)
    if isinstance(value, (list, tuple)):
        return sum(estimate_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v) for v in value.values())
    values = getattr(value, "values", None)
    if isinstance(values, np.ndarray):
        return int(values.nbytes) + estimate_nbytes(
            getattr(value, "scale", None)
        )
    if isinstance(value, (int, float, complex)):
        return 8
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    return 0


def value_digest(value: Any) -> Optional[int]:
    """CRC32 digest of the array content of a cached value.

    Walks the same structures as :func:`estimate_nbytes` (arrays,
    containers of arrays, spectrum objects with ``values`` arrays) and
    folds their raw bytes, dtypes and shapes into one CRC32.  Returns
    ``None`` for values with no digestible content (e.g. opaque transform
    plans), which the integrity check then skips.
    """
    import numpy as np

    state = {"crc": 0, "found": False}

    def mix(data: bytes) -> None:
        state["crc"] = zlib.crc32(data, state["crc"])
        state["found"] = True

    def walk(v: Any) -> None:
        if v is None:
            return
        if isinstance(v, np.ndarray):
            mix(np.ascontiguousarray(v).tobytes())
            mix(repr((v.dtype.str, v.shape)).encode())
            return
        if isinstance(v, (list, tuple)):
            for item in v:
                walk(item)
            return
        if isinstance(v, dict):
            for item in v.values():
                walk(item)
            return
        if isinstance(v, (bytes, bytearray)):
            mix(bytes(v))
            return
        if isinstance(v, (bool, int, float, complex, str, np.generic)):
            mix(repr(v).encode())
            return
        values = getattr(v, "values", None)
        if isinstance(values, np.ndarray):
            walk(values)
            walk(getattr(v, "scale", None))
            return
        payload = getattr(v, "digest_payload", None)
        if callable(payload):
            # Compiled plans (e.g. repro.sparse.plan.SparsePlan) expose
            # their index/twiddle arrays for integrity checking.
            walk(payload())
            return
        # Opaque objects (other transform plans etc.): nothing to digest.

    walk(value)
    return state["crc"] if state["found"] else None


class PlanCache:
    """Keyed LRU cache with byte accounting and hit/miss statistics.

    Args:
        capacity_bytes: byte budget; ``None`` means unbounded.
        max_entries: optional entry-count bound (applied with LRU order).
        on_full: ``"evict"`` (LRU eviction, the runtime default) or
            ``"error"`` (raise :class:`MemoryError` when the byte budget is
            exceeded -- the paper's memory-wall model).
        sizeof: override for the byte estimator.
        check_integrity: digest each entry's array content at insert
            (:func:`value_digest`) and re-verify on every hit; a tampered
            entry is evicted and counted in ``corruptions`` instead of
            being served, so the caller transparently recomputes it.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        on_full: str = "evict",
        sizeof: Optional[Callable[[Any], int]] = None,
        check_integrity: bool = False,
    ):
        if on_full not in ("evict", "error"):
            raise ValueError(f"unknown on_full policy {on_full!r}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.max_entries = max_entries
        self.on_full = on_full
        self._sizeof = sizeof or estimate_nbytes
        self.check_integrity = check_integrity
        self._entries: "OrderedDict[Hashable, Tuple[Any, int, Optional[int]]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0

    def _intact_locked(self, key: Hashable) -> bool:
        """Verify (and on mismatch evict) the entry under ``key``.

        Returns ``False`` when the entry was corrupted and dropped; callers
        then treat the lookup as a miss and rebuild.
        """
        if not self.check_integrity:
            return True
        value, size, digest = self._entries[key]
        if digest is None or value_digest(value) == digest:
            return True
        self._entries.pop(key)
        self._bytes -= size
        self.corruptions += 1
        return False

    # -- inspection ------------------------------------------------------
    # All snapshots take the lock: ``stats()`` reads several counters that
    # must come from one consistent state, and even single-field reads
    # interleave with ``put``'s pop/reinsert windows.  ``_lock`` is an
    # RLock, so nesting (``stats`` -> ``hit_rate``) is fine.

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def cached_bytes(self) -> int:
        """Bytes held by cached values (per the size estimator)."""
        with self._lock:
            return self._bytes

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Consistent snapshot of counters for reports and benchmarks."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "cached_bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "corruptions": self.corruptions,
                "hit_rate": self.hit_rate,
            }

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    # Dict-style access, so a PlanCache is a drop-in for the plain dict
    # caches it replaced (misses raise KeyError instead of counting).

    def __getitem__(self, key: Hashable) -> Any:
        with self._lock:
            if key not in self._entries or not self._intact_locked(key):
                raise KeyError(key)
            self._entries.move_to_end(key)
            return self._entries[key][0]

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    # -- core operations -------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its LRU position on a hit."""
        with self._lock:
            if key in self._entries and self._intact_locked(key):
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any, nbytes: Optional[int] = None) -> Any:
        """Insert ``value`` under ``key``, applying the full-cache policy.

        Returns the value (possibly without retaining it, when a single
        entry exceeds the whole byte budget under the eviction policy).
        """
        size = self._sizeof(value) if nbytes is None else int(nbytes)
        digest = value_digest(value) if self.check_integrity else None
        with self._lock:
            if (
                self.on_full == "evict"
                and self.capacity_bytes is not None
                and size > self.capacity_bytes
            ):
                # Oversized entry: caching it would only evict every other
                # entry and then itself; hand it back without retaining.
                if key in self._entries:
                    self._bytes -= self._entries.pop(key)[1]
                return value
            if key in self._entries:
                self._bytes -= self._entries.pop(key)[1]
            self._entries[key] = (value, size, digest)
            self._bytes += size
            if self.on_full == "error":
                if (
                    self.capacity_bytes is not None
                    and self._bytes > self.capacity_bytes
                ):
                    raise MemoryError(
                        f"plan cache exceeds {self.capacity_bytes} bytes "
                        f"({self._bytes} held; the Figure 1 memory wall)"
                    )
                return value
            self._shrink_locked()
            return value

    def _shrink_locked(self) -> None:
        """Evict LRU entries until both capacity bounds hold."""
        while self._entries and (
            (
                self.capacity_bytes is not None
                and self._bytes > self.capacity_bytes
            )
            or (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            )
        ):
            _, (_, size, _) = self._entries.popitem(last=False)
            self._bytes -= size
            self.evictions += 1

    def get_or_build(
        self,
        key: Hashable,
        build: Callable[[], Any],
        nbytes: Optional[int] = None,
    ) -> Any:
        """Return the cached value for ``key`` or build, insert and return it.

        The build runs outside the lock (plan construction can be slow); a
        concurrent duplicate build is tolerated and the first inserted value
        wins, keeping results deterministic for pure builders.
        """
        with self._lock:
            if key in self._entries and self._intact_locked(key):
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key][0]
            self.misses += 1
        value = build()
        with self._lock:
            if key in self._entries and self._intact_locked(key):
                self._entries.move_to_end(key)
                return self._entries[key][0]
        return self.put(key, value, nbytes=nbytes)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __repr__(self) -> str:
        cap = (
            f"{self.capacity_bytes}B"
            if self.capacity_bytes is not None
            else "unbounded"
        )
        with self._lock:
            return (
                f"PlanCache(entries={len(self._entries)}, "
                f"bytes={self._bytes}, capacity={cap}, policy={self.on_full})"
            )


def approx_config_key(config) -> tuple:
    """Hashable cache key for an :class:`ApproxFftConfig` (or ``None``)."""
    if config is None:
        return ("fp64",)
    return (
        config.n,
        tuple(config.stage_widths),
        config.twiddle_k,
        config.twiddle_max_shift,
        config.input_width,
    )
