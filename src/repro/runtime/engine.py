"""Batched HConv execution engine (the CPU-side runtime of the system).

Every HConv used to run one ciphertext at a time through freshly built FFT
plans.  This module stacks many polynomial pairs into 2-D arrays and runs
the NTT / approximate-FFT butterflies over the batch axis in single
vectorized numpy passes, amortizing:

* **plans** -- twiddle tables and pipelines come from a bounded
  :class:`repro.runtime.plan_cache.PlanCache`;
* **weight transforms** -- each distinct weight polynomial's spectrum is
  computed once and shared by every batch item (the Section III-B sharing
  argument, applied across the batch as well as across tiles);
* **activation transforms** -- computed once per input tile and reused by
  all output channels.

Independent RNS limbs and output-channel groups fan out across a
``concurrent.futures`` thread pool (numpy releases the GIL inside the
vectorized kernels); results are reassembled by index so ordering is
deterministic and byte-identical to the serial fallback.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.encoding.conv_encoding import (
    Conv2dEncoder,
    ConvShape,
    decompose_strided,
    iter_row_bands,
    pad_input,
)
from repro.faults.inject import FaultRecovery
from repro.fftcore.approx_pipeline import ApproxNegacyclic
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.he.backend import FftPolyMulBackend, NttPolyMulBackend
from repro.he.poly import RingPoly
from repro.ntt import find_ntt_primes, get_ntt
from repro.ntt.modmath import centered, from_centered, mulmod
from repro.obs import trace as obs_trace
from repro.runtime.plan_cache import PlanCache, approx_config_key

#: Float64 keeps integers exact below this; larger rounded values take the
#: slow Python-int path so results match the per-call reference exactly.
_FLOAT_EXACT = float(1 << 53)


def fan_out(
    jobs: Sequence,
    fn: Callable,
    max_workers: Optional[int],
    recovery: Optional["FaultRecovery"] = None,
) -> list:
    """Run ``fn`` over ``jobs`` with deterministic result ordering.

    Serial fallback when ``max_workers`` is ``None``/``0``/``1`` or there is
    at most one job; otherwise a thread pool of ``max_workers`` threads.
    Results are collected in submission order, so the output list is
    identical to the serial path for pure ``fn``.

    With a :class:`repro.faults.inject.FaultRecovery`, a job whose first
    execution raises (a dying worker, a poisoned task) is retried once in
    the submitting thread and the fault is recorded; the kernels are pure,
    so the retried result is bit-identical.  A job that fails its retry
    too propagates -- faults are survived, real bugs are not masked.
    """
    jobs = list(jobs)
    if not jobs:
        return []

    def run_recovered(job):
        try:
            return fn(job)
        except Exception as exc:
            if recovery is None:
                raise
            recovery.record(exc)
            return fn(job)

    if not max_workers or max_workers <= 1 or len(jobs) == 1:
        return [run_recovered(job) for job in jobs]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(fn, job) for job in jobs]
        results = []
        for job, future in zip(jobs, futures):
            try:
                results.append(future.result())
            except Exception as exc:
                if recovery is None:
                    raise
                recovery.record(exc)
                results.append(fn(job))
        return results


def _split_groups(items: Sequence, groups: int) -> List[list]:
    """Split ``items`` into at most ``groups`` contiguous non-empty chunks."""
    items = list(items)
    groups = max(1, min(groups, len(items)))
    size = -(-len(items) // groups)
    return [items[i : i + size] for i in range(0, len(items), size)]


@dataclass
class RuntimeStats:
    """Per-run accounting: stage timings, work counts, cache behaviour.

    The ``weight_mults_*`` counters track weight-transform multiplication
    work per *requested* transform (deterministic regardless of cache
    warmth): ``realized`` is what the executed plans actually perform,
    ``dense`` is the dense-butterfly count for the same transforms, and
    ``model`` is the analytical :mod:`repro.sparse.opcount` prediction.
    """

    mode: str = "ntt"
    batch: int = 0
    products: int = 0
    workers: int = 1
    worker_faults: int = 0
    weight_transforms: int = 0
    weight_mults_realized: int = 0
    weight_mults_dense: int = 0
    weight_mults_model: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    #: supervision counters of the run when it executed on a
    #: :class:`repro.cluster.ClusterExecutor` (dispatches, worker deaths,
    #: respawns, requeues, serial fallbacks, ...); empty on in-process runs.
    cluster: Dict[str, float] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def realized_mult_reduction(self) -> float:
        """Fraction of dense weight-FFT mults removed by the executed plans."""
        if not self.weight_mults_dense:
            return 0.0
        return 1.0 - self.weight_mults_realized / self.weight_mults_dense

    @property
    def model_mult_reduction(self) -> float:
        """The :mod:`repro.sparse.opcount` prediction for the same transforms."""
        if not self.weight_mults_dense:
            return 0.0
        return 1.0 - self.weight_mults_model / self.weight_mults_dense

    def describe(self) -> str:
        lines = [
            f"mode={self.mode} batch={self.batch} "
            f"products={self.products} workers={self.workers}"
            + (
                f" worker_faults={self.worker_faults} (recovered serially)"
                if self.worker_faults
                else ""
            )
        ]
        for stage, seconds in sorted(
            self.stage_seconds.items(), key=lambda kv: -kv[1]
        ):
            frac = seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"  {stage:<22} {seconds * 1e3:9.2f} ms  ({frac:5.1%})")
        if self.weight_mults_dense:
            lines.append(
                f"  weight mults: {self.weight_mults_realized}"
                f"/{self.weight_mults_dense} dense "
                f"({self.realized_mult_reduction:.1%} removed; "
                f"model {self.model_mult_reduction:.1%}) over "
                f"{self.weight_transforms} transforms"
            )
        if self.cache:
            lines.append(
                "  plan cache: "
                f"{self.cache.get('hits', 0)} hits / "
                f"{self.cache.get('misses', 0)} misses "
                f"(hit rate {self.cache.get('hit_rate', 0.0):.1%}), "
                f"{self.cache.get('cached_bytes', 0) / 1024:.1f} KiB held"
            )
        if self.cluster:
            lines.append(
                "  cluster: "
                f"{self.cluster.get('workers', 0)} workers, "
                f"{self.cluster.get('dispatches', 0)} dispatches, "
                f"{self.cluster.get('recoveries', 0)} recoveries "
                f"({self.cluster.get('worker_deaths', 0)} deaths, "
                f"{self.cluster.get('hang_timeouts', 0)} hangs, "
                f"{self.cluster.get('jobs_requeued', 0)} requeued, "
                f"{self.cluster.get('serial_fallback_jobs', 0)} serial)"
            )
        return "\n".join(lines)


class _Timer:
    """Stage timer that doubles as a ``runtime.<stage>`` trace span.

    The span is a no-op singleton while tracing is disabled, so the
    stage-accounting hot path stays as cheap as before.
    """

    def __init__(self, stats: RuntimeStats, stage: str):
        self._stats = stats
        self._stage = stage

    def __enter__(self):
        self._span = obs_trace.tracer.span("runtime." + self._stage)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._stats.add(self._stage, time.perf_counter() - self._t0)
        self._span.end("error" if exc and exc[0] is not None else "ok")
        return False


def _round_rows_exact(rows: np.ndarray) -> np.ndarray:
    """Round a float ``(J, n)`` batch to int64, bit-compatible with the
    per-call path's ``int(round(float(v)))`` (both round half-to-even)."""
    if rows.size and float(np.max(np.abs(rows))) >= _FLOAT_EXACT:
        return np.array(
            [[int(round(float(v))) for v in row] for row in rows],
            dtype=np.int64,
        )
    return np.rint(rows).astype(np.int64)


class BatchedHConvEngine:
    """Clear-domain batched HConv over the coefficient encoding.

    The batched counterpart of :func:`repro.core.hconv.hconv_ntt` /
    ``hconv_fft`` / ``hconv_flash``: bit-identical results (exact engines)
    computed in vectorized passes over the whole batch.

    Thread-safety contract (checked by ``repro lint --concurrency`` and
    the runtime stress tests): the engine object is confined to the
    submitting thread -- ``last_stats`` and the per-run ``RuntimeStats``
    are only ever written between ``fan_out`` calls, and worker jobs
    close over locals.  The only state shared *with* workers is
    ``plan_cache``, which synchronizes internally.

    Args:
        mode: ``"ntt"`` (exact), ``"fft"`` (float64 folded FFT),
            ``"flash"`` (approximate fixed-point weight transforms) or
            ``"sparse"`` (flash with compiled sparse weight plans: the
            structural zero pattern of each channel tile drives the
            skipping/merging dataflow of :class:`repro.sparse.plan
            .SparsePlan`, bit-identical to per-call
            :class:`repro.sparse.sparse_fxp.SparseApproxNegacyclic`).
        weight_config: fixed-point configuration for ``mode="flash"`` /
            ``"sparse"``.
        plan_cache: shared :class:`PlanCache`; a fresh bounded cache with
            entry-integrity checking when omitted (a tampered cached
            spectrum is evicted and recomputed rather than served).
        max_workers: thread-pool width for the pointwise/inverse stage;
            ``None``/``0``/``1`` selects the serial fallback.
        fault_injector: optional
            :class:`repro.faults.inject.WorkerFaultInjector` poisoning
            parallel jobs (chaos testing); recovered faults appear in
            ``last_stats.worker_faults``.
        cluster: optional :class:`repro.cluster.ClusterExecutor`; batched
            calls shard across its supervised worker processes
            (bit-identical to the in-process path, crash recovery and
            serial degradation included) and ``last_stats.cluster``
            carries the per-call supervision counters.
    """

    MODES = ("ntt", "fft", "flash", "sparse")

    def __init__(
        self,
        mode: str = "ntt",
        weight_config: Optional[ApproxFftConfig] = None,
        plan_cache: Optional[PlanCache] = None,
        max_workers: Optional[int] = None,
        fault_injector=None,
        cluster=None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if mode in ("flash", "sparse") and weight_config is None:
            raise ValueError(f"mode={mode!r} needs a weight_config")
        if mode not in ("flash", "sparse"):
            weight_config = None
        self.mode = mode
        self.weight_config = weight_config
        # Note: "plan_cache or ..." would discard an *empty* shared cache
        # (PlanCache defines __len__), so test identity explicitly.
        self.plan_cache = (
            plan_cache if plan_cache is not None
            else PlanCache(capacity_bytes=64 << 20, check_integrity=True)
        )
        self.max_workers = max_workers
        self.fault_injector = fault_injector
        self.cluster = cluster
        self.last_stats = RuntimeStats(mode=mode)

    def _maybe_poison(self, tag) -> None:
        if self.fault_injector is not None:
            self.fault_injector.poison(tag)

    # -- plan / spectrum helpers ----------------------------------------

    def _ntt_plan(self, n: int, q: int):
        return self.plan_cache.get_or_build(
            ("ntt-plan", n, q), lambda: get_ntt(n, q)
        )

    def _fft_pipeline(self, n: int) -> ApproxNegacyclic:
        cfg = self.weight_config
        key = ("fft-plan", n, approx_config_key(cfg))
        return self.plan_cache.get_or_build(
            key, lambda: ApproxNegacyclic(n, cfg)
        )

    def _ntt_weight_spectrum(self, plan, q: int, w_poly: np.ndarray):
        w_poly = np.ascontiguousarray(w_poly, dtype=np.int64)
        key = ("ntt-wspec", plan.n, q, w_poly.tobytes())
        return self.plan_cache.get_or_build(
            key, lambda: plan.forward(from_centered(w_poly, q))
        )

    def _fft_weight_spectrum(self, pipe: ApproxNegacyclic, w_poly: np.ndarray):
        w_poly = np.ascontiguousarray(w_poly, dtype=np.int64)
        key = (
            "fft-wspec",
            pipe.n,
            approx_config_key(self.weight_config),
            w_poly.tobytes(),
        )
        return self.plan_cache.get_or_build(
            key, lambda: pipe.weight_forward(w_poly)
        )

    def _sparse_plan(self, n: int, folded_pattern: np.ndarray):
        """Compiled sparse plan for one folded pattern (cached, digested)."""
        from repro.sparse.plan import SparsePlan

        cfg = self.weight_config
        key = (
            "sparse-plan",
            n // 2,
            approx_config_key(cfg),
            folded_pattern.tobytes(),
        )
        return self.plan_cache.get_or_build(
            key, lambda: SparsePlan(cfg, folded_pattern, sign=+1)
        )

    def _sparse_poly_spectrum(self, n: int, w_poly: np.ndarray):
        """Sparse spectrum of one standalone weight polynomial.

        Without encoder tile metadata the structural pattern is the
        polynomial's own support (a superset never changes the result,
        so this is exact for any weight).
        """
        from repro.sparse.patterns import fold_valid_indices
        from repro.sparse.plan import SparseWeightPipeline

        w_poly = np.ascontiguousarray(w_poly, dtype=np.int64)
        pattern = fold_valid_indices(np.nonzero(w_poly)[0], n)
        plan = self._sparse_plan(n, pattern)
        key = (
            "sparse-wspec",
            n,
            approx_config_key(self.weight_config),
            pattern.tobytes(),
            w_poly.tobytes(),
        )
        return self.plan_cache.get_or_build(
            key,
            lambda: SparseWeightPipeline(
                n, self.weight_config, pattern, plan=plan
            ).weight_forward(w_poly),
        )

    def _sparse_weight_specs(
        self,
        n: int,
        enc: Conv2dEncoder,
        pairs: List[Tuple[int, int]],
        w_polys: Dict[Tuple[int, int], np.ndarray],
        stats: RuntimeStats,
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Sparse weight spectra for every ``(tile, m)`` pair of a band.

        All output channels of a tile share one structural pattern
        (:meth:`Conv2dEncoder.weight_valid_indices`), hence one compiled
        plan; cache-missing spectra of a tile are computed in a single
        batched plan execution.  Mult counters are charged per requested
        transform so the accounting is cache-warmth independent.
        """
        from repro.fftcore.approx_pipeline import ApproxSpectrum
        from repro.sparse.opcount import sparse_fft_mults
        from repro.sparse.patterns import fold_valid_indices
        from repro.sparse.plan import SparseWeightPipeline

        cfg_key = approx_config_key(self.weight_config)
        w_specs: Dict[Tuple[int, int], np.ndarray] = {}
        for tile in sorted({t for t, _ in pairs}):
            pattern = fold_valid_indices(enc.weight_valid_indices(tile), n)
            plan = self._sparse_plan(n, pattern)
            pipe_s = SparseWeightPipeline(
                n, self.weight_config, pattern, plan=plan
            )
            group = [pair for pair in pairs if pair[0] == tile]
            keys = {
                pair: (
                    "sparse-wspec",
                    n,
                    cfg_key,
                    pattern.tobytes(),
                    np.ascontiguousarray(
                        w_polys[pair], dtype=np.int64
                    ).tobytes(),
                )
                for pair in group
            }
            missing = [p for p in group if keys[p] not in self.plan_cache]
            built: Dict[Tuple[int, int], ApproxSpectrum] = {}
            if missing:
                stack = np.stack([w_polys[p] for p in missing])
                spec = pipe_s.weight_forward_batch(stack)
                built = {
                    p: ApproxSpectrum(
                        values=spec.values[i], scale=float(spec.scale[i])
                    )
                    for i, p in enumerate(missing)
                }
            for pair in group:
                value = self.plan_cache.get_or_build(
                    keys[pair],
                    # Evicted between the contains check and here: rebuild
                    # as a batch of one (bit-identical by construction).
                    lambda p=pair: built[p]
                    if p in built
                    else pipe_s.weight_forward(w_polys[p]),
                )
                w_specs[pair] = value.values
            stats.weight_transforms += len(group)
            stats.weight_mults_realized += plan.mults * len(group)
            stats.weight_mults_dense += plan.dense_mults * len(group)
            stats.weight_mults_model += sparse_fft_mults(
                tuple(int(v) for v in pattern), n // 2
            ) * len(group)
        return w_specs

    # -- batched polynomial products ------------------------------------

    def polymul_batch(self, a_batch, w_poly, value_bound: int) -> np.ndarray:
        """Batched negacyclic products of ``(B, n)`` ints by one weight.

        Args:
            a_batch: signed integer activations, ``(B, n)``.
            w_poly: signed integer weight polynomial, ``(n,)``.
            value_bound: bound on result magnitudes (sizes the NTT prime).
        """
        a_batch = np.atleast_2d(np.asarray(a_batch, dtype=np.int64))
        w_poly = np.asarray(w_poly, dtype=np.int64)
        n = a_batch.shape[-1]
        if self.mode == "ntt":
            q = self._modulus_for(n, value_bound)
            plan = self._ntt_plan(n, q)
            w_spec = self._ntt_weight_spectrum(plan, q, w_poly)
            spec = mulmod(plan.forward_batch(from_centered(a_batch, q)), w_spec, q)
            return centered(plan.inverse_batch(spec), q)
        pipe = self._fft_pipeline(n)
        if self.mode == "sparse":
            w_spec = self._sparse_poly_spectrum(n, w_poly)
        else:
            w_spec = self._fft_weight_spectrum(pipe, w_poly)
        a_spec = pipe.activation_forward_batch(a_batch.astype(np.float64))
        return _round_rows_exact(
            pipe.multiply_spectra_batch(w_spec.values, a_spec)
        )

    @staticmethod
    def _modulus_for(n: int, value_bound: int) -> int:
        bits = max(20, min(39, (2 * value_bound + 1).bit_length() + 1))
        if (2 * value_bound + 1) >> 38:
            raise ValueError("results exceed the single-prime NTT range")
        (q,) = find_ntt_primes(bits, n)
        return q

    # -- batched convolution --------------------------------------------

    @obs_trace.traced("runtime.conv2d_batch")
    def conv2d_batch(
        self,
        xs: np.ndarray,
        w: np.ndarray,
        shape: ConvShape,
        n: int,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Batched ``conv2d`` through the coefficient encoding.

        Args:
            xs: ``B x C x H x W`` integer inputs.
            w: ``M x C x kh x kw`` integer kernel (shared across the batch).
            shape: convolution geometry of one batch item.
            n: polynomial degree.
            deadline_s: optional remaining request-SLO budget; on the
                cluster path it becomes each job's ``deadline_ms`` hang
                deadline, on the in-process path it is ignored (the call
                is already synchronous and uninterruptible).

        Returns:
            ``B x M x out_h x out_w`` int64 outputs, bit-identical to
            running the per-call pipeline on each item.
        """
        xs = np.asarray(xs, dtype=np.int64)
        if xs.ndim == 3:
            xs = xs[None]
        w = np.asarray(w, dtype=np.int64)
        if self.cluster is not None:
            return self._conv2d_batch_cluster(
                xs, w, shape, n, deadline_s=deadline_s
            )
        stats = RuntimeStats(mode=self.mode, workers=self._workers())
        batch = xs.shape[0]
        stats.batch = batch

        bound = int(np.abs(w).sum() * max(1, int(np.abs(xs).max() if xs.size else 1)))
        xp = np.stack([pad_input(x, shape.padding) for x in xs])
        padded_shape = ConvShape(
            in_channels=shape.in_channels,
            height=shape.padded_height,
            width=shape.padded_width,
            out_channels=shape.out_channels,
            kernel_h=shape.kernel_h,
            kernel_w=shape.kernel_w,
            stride=shape.stride,
            padding=0,
        )
        total = np.zeros(
            (batch, shape.out_channels, shape.out_height, shape.out_width),
            dtype=np.int64,
        )
        s = shape.stride
        for phase, a, b in decompose_strided(padded_shape):
            x_phase = xp[:, :, a::s, b::s][:, :, : phase.height, : phase.width]
            w_phase = w[:, :, a::s, b::s]
            for row_start, band in iter_row_bands(phase, n):
                x_band = x_phase[:, :, row_start : row_start + band.height, :]
                self._run_band(
                    x_band, w_phase, band, n, bound, shape, row_start,
                    total, stats,
                )
        stats.cache = self.plan_cache.stats()
        self.last_stats = stats
        return total

    def _workers(self) -> int:
        return self.max_workers if self.max_workers and self.max_workers > 1 else 1

    def _conv2d_batch_cluster(
        self,
        xs: np.ndarray,
        w: np.ndarray,
        shape: ConvShape,
        n: int,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Shard the batch across the supervised worker processes.

        Each worker runs this same engine code on its contiguous batch
        shard (items are independent), so the reassembled output is
        bit-identical to the in-process call; ``last_stats`` sums the
        worker-side job stats and carries the supervision counters.
        """
        out = self.cluster.conv2d_batch(
            self.mode, self.weight_config, xs, w, shape, n,
            deadline_s=deadline_s,
        )
        job_stats = self.cluster.last_job_stats
        self.last_stats = RuntimeStats(
            mode=self.mode,
            batch=xs.shape[0],
            workers=self.cluster.policy.workers,
            products=job_stats.get("products", 0),
            weight_transforms=job_stats.get("weight_transforms", 0),
            weight_mults_realized=job_stats.get("weight_mults_realized", 0),
            weight_mults_dense=job_stats.get("weight_mults_dense", 0),
            weight_mults_model=job_stats.get("weight_mults_model", 0),
            cluster=dict(self.cluster.last_cluster),
        )
        return out

    def _run_band(
        self,
        x_band: np.ndarray,
        w_phase: np.ndarray,
        band: ConvShape,
        n: int,
        bound: int,
        shape: ConvShape,
        row_start: int,
        total: np.ndarray,
        stats: RuntimeStats,
    ) -> None:
        batch = x_band.shape[0]
        with _Timer(stats, "encode"):
            enc = Conv2dEncoder(band, n)
            in_rows = []
            for item in range(batch):
                in_rows.extend(enc.encode_input(x_band[item]))
            tiles = len(in_rows) // batch
            a_stack = np.stack(in_rows)  # (B * tiles, n)
            w_polys = enc.encode_weights(w_phase)
        pairs = sorted(w_polys.keys())  # (tile, m), deterministic order

        if self.mode == "ntt":
            q = self._modulus_for(n, bound)
            plan = self._ntt_plan(n, q)
            with _Timer(stats, "weight_transform"):
                w_specs = {
                    pair: self._ntt_weight_spectrum(plan, q, w_polys[pair])
                    for pair in pairs
                }
            with _Timer(stats, "activation_transform"):
                a_spec = plan.forward_batch(from_centered(a_stack, q))

            def group_job(group: List[Tuple[int, int]]) -> np.ndarray:
                a_idx = [
                    item * tiles + tile
                    for item in range(batch)
                    for tile, _ in group
                ]
                w_rows = np.stack([w_specs[pair] for pair in group] * batch)
                spec = mulmod(a_spec[a_idx], w_rows, q)
                return centered(plan.inverse_batch(spec), q)

        else:
            pipe = self._fft_pipeline(n)
            with _Timer(stats, "weight_transform"):
                if self.mode == "sparse":
                    w_specs = self._sparse_weight_specs(
                        n, enc, pairs, w_polys, stats
                    )
                else:
                    w_specs = {
                        pair: self._fft_weight_spectrum(
                            pipe, w_polys[pair]
                        ).values
                        for pair in pairs
                    }
                    if self.mode == "flash":
                        # Dense fixed-point weight FFT: every butterfly
                        # multiplies, so realized == dense == model.
                        stages = (n // 2).bit_length() - 1
                        dense = (n // 4) * stages * len(pairs)
                        stats.weight_transforms += len(pairs)
                        stats.weight_mults_realized += dense
                        stats.weight_mults_dense += dense
                        stats.weight_mults_model += dense
            with _Timer(stats, "activation_transform"):
                a_spec = pipe.activation_forward_batch(
                    a_stack.astype(np.float64)
                )

            def group_job(group: List[Tuple[int, int]]) -> np.ndarray:
                a_idx = [
                    item * tiles + tile
                    for item in range(batch)
                    for tile, _ in group
                ]
                w_rows = np.stack([w_specs[pair] for pair in group] * batch)
                coeffs = pipe.multiply_spectra_batch(w_rows, a_spec[a_idx])
                return _round_rows_exact(coeffs)

        groups = _split_groups(pairs, self._workers())
        recovery = FaultRecovery()

        def indexed_job(group_index: int) -> np.ndarray:
            self._maybe_poison(("group", group_index))
            return group_job(groups[group_index])

        with _Timer(stats, "pointwise+inverse"):
            group_rows = fan_out(
                range(len(groups)), indexed_job, self.max_workers,
                recovery=recovery,
            )
        stats.worker_faults += recovery.faults
        stats.products += len(pairs) * batch

        with _Timer(stats, "decode"):
            oh, ow = shape.out_height, shape.out_width
            for item in range(batch):
                products: Dict[Tuple[int, int], np.ndarray] = {}
                for group, rows in zip(groups, group_rows):
                    base = item * len(group)
                    for offset, pair in enumerate(group):
                        products[pair] = rows[base + offset]
                y = enc.decode_output(products)
                r0 = row_start
                r1 = min(r0 + y.shape[1], oh)
                total[item, :, r0:r1, :ow] += y[:, : r1 - r0, :ow]


# ---------------------------------------------------------------------------
# Batched backends for the encrypted (RNS ciphertext) path
# ---------------------------------------------------------------------------


def _cluster_multiply_many(backend, kind, pattern, polys, weights_list):
    """Shared cluster delegation of a backend's ``multiply_many``.

    Serializes the polynomials through the protocol wire format, shards
    them across the backend's :class:`repro.cluster.ClusterExecutor`, and
    rebuilds ``last_stats`` from the worker-side job stats plus the
    per-call supervision counters.
    """
    cluster = backend.cluster
    outs = cluster.multiply_many(
        kind,
        getattr(backend, "weight_config", None),
        pattern,
        polys,
        weights_list,
    )
    job_stats = cluster.last_job_stats
    backend.last_stats = RuntimeStats(
        mode=kind,
        batch=len(polys),
        products=job_stats.get("products", 0),
        workers=cluster.policy.workers,
        weight_transforms=job_stats.get("weight_transforms", 0),
        weight_mults_realized=job_stats.get("weight_mults_realized", 0),
        weight_mults_dense=job_stats.get("weight_mults_dense", 0),
        weight_mults_model=job_stats.get("weight_mults_model", 0),
        cluster=dict(cluster.last_cluster),
    )
    return outs


class BatchedNttBackend(NttPolyMulBackend):
    """Exact NTT backend with a batched ``multiply_many`` entry point.

    Single products behave exactly like :class:`NttPolyMulBackend`; batched
    calls stack every polynomial's residues per RNS limb and run one
    ``forward_batch`` / ``inverse_batch`` pass per limb, with limbs fanned
    across the worker pool.  Weight spectra are cached per
    ``(degree, prime, weight-bytes)`` in the :class:`PlanCache` (integrity
    checked: tampered spectra are evicted and recomputed).  A worker that
    raises mid-limb is retried serially -- bit-identical output, fault
    recorded in ``last_stats.worker_faults``.
    """

    def __init__(
        self,
        plan_cache: Optional[PlanCache] = None,
        max_workers: Optional[int] = None,
        fault_injector=None,
        cluster=None,
    ):
        self.plan_cache = (
            plan_cache if plan_cache is not None
            else PlanCache(capacity_bytes=64 << 20, check_integrity=True)
        )
        self.max_workers = max_workers
        self.fault_injector = fault_injector
        self.cluster = cluster
        self.last_stats = RuntimeStats(mode="ntt")

    def _maybe_poison(self, tag) -> None:
        if self.fault_injector is not None:
            self.fault_injector.poison(tag)

    def _weight_residue_spectrum(
        self, n: int, prime: int, weights: np.ndarray
    ) -> np.ndarray:
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        key = ("rns-wspec", n, prime, weights.tobytes())
        plan = get_ntt(n, prime)
        return self.plan_cache.get_or_build(
            key,
            lambda: plan.forward(
                (weights % np.int64(prime)).astype(np.uint64)
            ),
        )

    @obs_trace.traced("runtime.multiply_many")
    def multiply_many(
        self, polys: List[RingPoly], weights_list: List[np.ndarray]
    ) -> List[RingPoly]:
        """Batched plaintext products, bit-identical to serial ``multiply``.

        Args:
            polys: ring polynomials sharing one RNS basis.
            weights_list: one signed weight vector per polynomial (repeats
                hit the spectrum cache).
        """
        if len(polys) != len(weights_list):
            raise ValueError("polys and weights_list must have equal length")
        if not polys:
            return []
        if self.cluster is not None:
            return _cluster_multiply_many(
                self, "ntt", None, polys, weights_list
            )
        basis = polys[0].basis
        count = len(polys)
        weights_list = [
            np.ascontiguousarray(w, dtype=np.int64) for w in weights_list
        ]
        # Weight spectra are built serially (deterministic cache order);
        # limb jobs below only read plain arrays.
        w_rows_per_limb = []
        for prime in basis.primes:
            w_rows_per_limb.append(
                np.stack(
                    [
                        self._weight_residue_spectrum(basis.n, prime, w)
                        for w in weights_list
                    ]
                )
            )

        def limb_job(limb: int) -> np.ndarray:
            self._maybe_poison(("limb", limb))
            prime = basis.primes[limb]
            plan = get_ntt(basis.n, prime)
            rows = np.stack([p.residues[limb] for p in polys])
            spec = mulmod(plan.forward_batch(rows), w_rows_per_limb[limb], prime)
            return plan.inverse_batch(spec)

        recovery = FaultRecovery()
        limb_rows = fan_out(
            range(len(basis.primes)), limb_job, self.max_workers,
            recovery=recovery,
        )
        self.last_stats = RuntimeStats(
            mode="ntt",
            batch=count,
            products=count,
            workers=self.max_workers or 1,
            worker_faults=recovery.faults,
        )
        return [
            RingPoly(basis, [limb_rows[l][i] for l in range(len(basis.primes))])
            for i in range(count)
        ]


class BatchedFftBackend(FftPolyMulBackend):
    """FLASH FFT backend with batched activation transforms.

    Weight spectra reuse the inherited bounded cache; ``multiply_many``
    stacks the centered lifts of every ciphertext polynomial and runs the
    activation transforms, pointwise products and inverse transforms as
    single batched passes.  The CRT lift and the final rounding/reduction
    stay in exact Python-int arithmetic (identical to the serial path), so
    batched results are bit-identical to per-call ``multiply``.
    """

    _stats_mode = "flash"

    def __init__(
        self,
        weight_config: Optional[ApproxFftConfig] = None,
        max_workers: Optional[int] = None,
        fault_injector=None,
        cluster=None,
        **kwargs,
    ):
        super().__init__(weight_config=weight_config, **kwargs)
        self.max_workers = max_workers
        self.fault_injector = fault_injector
        self.cluster = cluster
        self.last_stats = RuntimeStats(mode=self._stats_mode)

    def _maybe_poison(self, tag) -> None:
        if self.fault_injector is not None:
            self.fault_injector.poison(tag)

    def _weight_rows(
        self, n: int, weights_list: List[np.ndarray]
    ) -> Tuple[np.ndarray, Dict[str, int]]:
        """Stacked weight spectra plus mult accounting for one call.

        Subclasses override this to change how spectra are produced (the
        sparse backend swaps in compiled plans); the accounting dict feeds
        the ``weight_mults_*`` fields of ``last_stats`` and is returned
        (not stored on ``self``) so concurrent calls stay race-free.
        """
        rows = np.stack(
            [
                self.weight_spectrum(n, np.asarray(w)).values
                for w in weights_list
            ]
        )
        return rows, {}

    @obs_trace.traced("runtime.multiply_many")
    def multiply_many(
        self, polys: List[RingPoly], weights_list: List[np.ndarray]
    ) -> List[RingPoly]:
        if len(polys) != len(weights_list):
            raise ValueError("polys and weights_list must have equal length")
        if not polys:
            return []
        if self.cluster is not None:
            return _cluster_multiply_many(
                self, self._stats_mode, getattr(self, "pattern", None),
                polys, weights_list,
            )
        basis = polys[0].basis
        n, q = basis.n, basis.modulus
        pipe = self.pipeline(n)
        w_rows, mult_stats = self._weight_rows(n, weights_list)

        def lift_job(index: int) -> np.ndarray:
            self._maybe_poison(("lift", index))
            return np.array(
                [float(v) for v in polys[index].to_centered()],
                dtype=np.float64,
            )

        recovery = FaultRecovery()
        lifts = fan_out(
            range(len(polys)), lift_job, self.max_workers, recovery=recovery
        )
        a_spec = pipe.activation_forward_batch(np.stack(lifts))
        products = pipe.multiply_spectra_batch(w_rows, a_spec)

        def reduce_job(index: int) -> RingPoly:
            self._maybe_poison(("reduce", index))
            ints = [int(round(float(v))) % q for v in products[index]]
            return RingPoly(
                basis, basis.to_rns(np.array(ints, dtype=object))
            )

        out = fan_out(
            range(len(products)), reduce_job, self.max_workers,
            recovery=recovery,
        )
        self.last_stats = RuntimeStats(
            mode=self._stats_mode,
            batch=len(polys),
            products=len(polys),
            workers=self.max_workers or 1,
            worker_faults=recovery.faults,
            **mult_stats,
        )
        return out


class SparseBatchedFftBackend(BatchedFftBackend):
    """Batched FLASH backend whose weight transforms run compiled sparse plans.

    Identical to :class:`BatchedFftBackend` except that each weight's
    spectrum is produced by a :class:`repro.sparse.plan.SparsePlan`
    compiled for its structural zero pattern -- by default the weight's
    own support (``np.nonzero``), optionally a fixed layer ``pattern``.
    Weights sharing a folded pattern share one plan and are transformed
    in one batched execution; every spectrum is bit-identical to per-call
    :meth:`repro.sparse.sparse_fxp.SparseApproxNegacyclic.weight_forward`
    with the same pattern.

    ``last_stats`` reports realized/dense/model multiplication counts per
    *distinct* weight in the call (c0/c1 and cross-item repeats dedupe by
    spectrum key), so the accounting is deterministic and cache-warmth
    independent.
    """

    _stats_mode = "sparse"

    def __init__(
        self,
        weight_config: Optional[ApproxFftConfig] = None,
        pattern: Optional[Sequence[int]] = None,
        max_workers: Optional[int] = None,
        fault_injector=None,
        **kwargs,
    ):
        super().__init__(
            weight_config=weight_config,
            max_workers=max_workers,
            fault_injector=fault_injector,
            **kwargs,
        )
        if self.weight_config is None:
            raise ValueError("SparseBatchedFftBackend needs a weight_config")
        self.pattern = (
            None
            if pattern is None
            else np.array(sorted({int(v) for v in pattern}), dtype=np.int64)
        )
        # Compiled plans get their own byte-accounted, digest-checked cache:
        # per-weight support inference can produce many more patterns than
        # the small ``_pipelines`` entry bound was sized for.
        self.plan_cache = PlanCache(
            capacity_bytes=32 << 20, check_integrity=True
        )

    def _sparse_plan(self, n: int, folded_pattern: np.ndarray):
        from repro.sparse.plan import SparsePlan

        cfg = self.weight_config
        key = (
            "sparse-plan",
            n // 2,
            approx_config_key(cfg),
            folded_pattern.tobytes(),
        )
        return self.plan_cache.get_or_build(
            key, lambda: SparsePlan(cfg, folded_pattern, sign=+1)
        )

    def _weight_rows(
        self, n: int, weights_list: List[np.ndarray]
    ) -> Tuple[np.ndarray, Dict[str, int]]:
        from repro.fftcore.approx_pipeline import ApproxSpectrum
        from repro.sparse.opcount import sparse_fft_mults
        from repro.sparse.patterns import fold_valid_indices
        from repro.sparse.plan import SparseWeightPipeline

        weights = [
            np.ascontiguousarray(w, dtype=np.int64) for w in weights_list
        ]
        folded = []
        for w in weights:
            support = self.pattern if self.pattern is not None else (
                np.nonzero(w)[0]
            )
            folded.append(fold_valid_indices(support, n))
        # Group indices by folded pattern; within a group, dedupe weights
        # by bytes so repeated weights (c0/c1 of one ciphertext, shared
        # kernels across a batch) are transformed and counted once.
        groups: Dict[bytes, List[int]] = {}
        for i, fp in enumerate(folded):
            groups.setdefault(fp.tobytes(), []).append(i)
        rows = np.empty((len(weights), n // 2), dtype=np.complex128)
        realized = dense = model = transforms = 0
        for idxs in groups.values():
            fp = folded[idxs[0]]
            plan = self._sparse_plan(n, fp)
            pipe_s = SparseWeightPipeline(
                n, self.weight_config, fp, plan=plan
            )
            keys = {
                i: ("sparse-wspec", n, fp.tobytes(), weights[i].tobytes())
                for i in idxs
            }
            unique: Dict[Hashable, List[int]] = {}
            for i in idxs:
                unique.setdefault(keys[i], []).append(i)
            missing = [
                key for key in unique if key not in self._spectrum_cache
            ]
            built: Dict[Hashable, ApproxSpectrum] = {}
            if missing:
                stack = np.stack([weights[unique[k][0]] for k in missing])
                spec = pipe_s.weight_forward_batch(stack)
                built = {
                    k: ApproxSpectrum(
                        values=spec.values[j], scale=float(spec.scale[j])
                    )
                    for j, k in enumerate(missing)
                }
            for key, shared in unique.items():
                value = self._spectrum_cache.get_or_build(
                    key,
                    lambda k=key, i=shared[0]: built[k]
                    if k in built
                    else pipe_s.weight_forward(weights[i]),
                )
                for i in shared:
                    rows[i] = value.values
            mults_model = sparse_fft_mults(
                tuple(int(v) for v in fp), n // 2
            )
            transforms += len(unique)
            realized += plan.mults * len(unique)
            dense += plan.dense_mults * len(unique)
            model += mults_model * len(unique)
        return rows, {
            "weight_transforms": transforms,
            "weight_mults_realized": realized,
            "weight_mults_dense": dense,
            "weight_mults_model": model,
        }
