"""Batched parallel HConv runtime: plan caching + vectorized batch passes.

The execution layer between the protocol and the transform kernels:

* :class:`PlanCache` -- bounded, byte-accounted LRU cache for NTT/FFT plans
  and precomputed weight spectra.
* :class:`BatchedHConvEngine` -- clear-domain batched convolution through
  the coefficient encoding (bit-identical to the per-call pipelines).
* :class:`BatchedNttBackend` / :class:`BatchedFftBackend` -- drop-in
  polynomial-multiplication backends whose ``multiply_many`` batches the
  transforms of the encrypted path and fans RNS limbs across workers.
* :class:`SparseBatchedFftBackend` -- the FLASH sparse dataflow in the hot
  path: weight transforms run compiled per-pattern skipping/merging plans
  (:class:`repro.sparse.plan.SparsePlan`), bit-identical to the per-call
  sparse oracles, with realized-vs-model mult reduction in ``last_stats``.
"""

from repro.runtime.engine import (
    BatchedFftBackend,
    BatchedHConvEngine,
    BatchedNttBackend,
    RuntimeStats,
    SparseBatchedFftBackend,
    fan_out,
)
from repro.runtime.plan_cache import (
    PlanCache,
    approx_config_key,
    estimate_nbytes,
    value_digest,
)

__all__ = [
    "BatchedFftBackend",
    "BatchedHConvEngine",
    "BatchedNttBackend",
    "PlanCache",
    "RuntimeStats",
    "SparseBatchedFftBackend",
    "approx_config_key",
    "estimate_nbytes",
    "fan_out",
    "value_digest",
]
