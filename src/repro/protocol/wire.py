"""Ciphertext / key serialization and traffic accounting.

Gives the protocol concrete wire formats so communication costs (the
Figure 1 communication slice) are measured from real byte counts instead
of estimates.  The format is deliberately simple: little-endian uint64
residue words behind a fixed header.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.he.bfv import Ciphertext
from repro.he.params import BfvParameters
from repro.he.poly import RingPoly

_MAGIC = b"FLSH"
_HEADER = struct.Struct("<4sHHI")  # magic, version, num_primes, n
_VERSION = 1


def serialize_poly(poly: RingPoly) -> bytes:
    """Serialize one ring polynomial (all RNS components)."""
    parts = [
        _HEADER.pack(_MAGIC, _VERSION, len(poly.basis.primes), poly.basis.n)
    ]
    for prime, residues in zip(poly.basis.primes, poly.residues):
        parts.append(struct.pack("<Q", prime))
        parts.append(
            np.ascontiguousarray(residues, dtype="<u8").tobytes()
        )
    return b"".join(parts)


def deserialize_poly(data: bytes, params: BfvParameters) -> Tuple[RingPoly, int]:
    """Parse one polynomial; returns ``(poly, bytes_consumed)``.

    Raises:
        ValueError: on malformed data or parameter mismatch.
    """
    if len(data) < _HEADER.size:
        raise ValueError("truncated polynomial header")
    magic, version, num_primes, n = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError("bad magic; not a serialized polynomial")
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    basis = params.basis
    if n != basis.n or num_primes != len(basis.primes):
        raise ValueError("parameter mismatch")
    offset = _HEADER.size
    residues: List[np.ndarray] = []
    for expected_prime in basis.primes:
        if len(data) < offset + 8 + 8 * n:
            raise ValueError("truncated polynomial body")
        (prime,) = struct.unpack_from("<Q", data, offset)
        if prime != expected_prime:
            raise ValueError("RNS prime mismatch")
        offset += 8
        res = np.frombuffer(data, dtype="<u8", count=n, offset=offset).copy()
        if np.any(res >= np.uint64(prime)):
            raise ValueError("residue out of range")
        residues.append(res)
        offset += 8 * n
    return RingPoly(basis, residues), offset


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Serialize a degree-1 ciphertext (c0 then c1)."""
    return serialize_poly(ct.c0) + serialize_poly(ct.c1)


def deserialize_ciphertext(data: bytes, params: BfvParameters) -> Ciphertext:
    c0, used = deserialize_poly(data, params)
    c1, used2 = deserialize_poly(data[used:], params)
    if used + used2 != len(data):
        raise ValueError("trailing bytes after ciphertext")
    return Ciphertext(c0=c0, c1=c1)


def ciphertext_bytes(params: BfvParameters) -> int:
    """Wire size of one ciphertext under this format."""
    per_poly = _HEADER.size + len(params.basis.primes) * (8 + 8 * params.n)
    return 2 * per_poly


def roundtrip_check(ct: Ciphertext, params: BfvParameters) -> bool:
    """Serialize-deserialize and compare (used by tests and examples)."""
    restored = deserialize_ciphertext(serialize_ciphertext(ct), params)
    return all(
        np.array_equal(a, b)
        for a, b in zip(
            ct.c0.residues + ct.c1.residues,
            restored.c0.residues + restored.c1.residues,
        )
    )
