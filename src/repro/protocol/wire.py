"""Ciphertext / key serialization and traffic accounting.

Gives the protocol concrete wire formats so communication costs (the
Figure 1 communication slice) are measured from real byte counts instead
of estimates.  The format is deliberately simple: little-endian uint64
residue words behind a fixed header.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.he.bfv import Ciphertext
from repro.he.params import BfvParameters
from repro.he.poly import RingPoly

_MAGIC = b"FLSH"
_HEADER = struct.Struct("<4sHHI")  # magic, version, num_primes, n
_VERSION = 1


def serialize_poly(poly: RingPoly) -> bytes:
    """Serialize one ring polynomial (all RNS components)."""
    parts = [
        _HEADER.pack(_MAGIC, _VERSION, len(poly.basis.primes), poly.basis.n)
    ]
    for prime, residues in zip(poly.basis.primes, poly.residues):
        parts.append(struct.pack("<Q", prime))
        parts.append(
            np.ascontiguousarray(residues, dtype="<u8").tobytes()
        )
    return b"".join(parts)


def deserialize_poly(data: bytes, params: BfvParameters) -> Tuple[RingPoly, int]:
    """Parse one polynomial; returns ``(poly, bytes_consumed)``.

    The total message length is validated up front (before any residue is
    touched), and every error message carries the byte offset of the
    offending field so a corrupted or truncated stream can be triaged.

    Raises:
        ValueError: on malformed data or parameter mismatch.
    """
    if len(data) < _HEADER.size:
        raise ValueError(
            f"truncated polynomial header at offset 0: need "
            f"{_HEADER.size} bytes, have {len(data)}"
        )
    magic, version, num_primes, n = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise ValueError(
            f"bad magic {magic!r} at offset 0; not a serialized polynomial"
        )
    if version != _VERSION:
        raise ValueError(
            f"unsupported version {version} at offset 4 "
            f"(expected {_VERSION})"
        )
    basis = params.basis
    if num_primes != len(basis.primes):
        raise ValueError(
            f"parameter mismatch at offset 6: message has "
            f"{num_primes} RNS primes, parameters have {len(basis.primes)}"
        )
    if n != basis.n:
        raise ValueError(
            f"parameter mismatch at offset 8: message degree {n}, "
            f"parameters expect {basis.n}"
        )
    # Validate the whole body length before parsing any residue, so a
    # truncation mid-stream fails here with exact byte accounting instead
    # of part-way through with state already built.
    total = _HEADER.size + num_primes * (8 + 8 * n)
    if len(data) < total:
        raise ValueError(
            f"truncated polynomial body at offset {len(data)}: need "
            f"{total} bytes total, have {len(data)} "
            f"(short by {total - len(data)})"
        )
    offset = _HEADER.size
    residues: List[np.ndarray] = []
    for expected_prime in basis.primes:
        (prime,) = struct.unpack_from("<Q", data, offset)
        if prime != expected_prime:
            raise ValueError(
                f"RNS prime mismatch at offset {offset}: message has "
                f"{prime}, parameters expect {expected_prime}"
            )
        offset += 8
        res = np.frombuffer(data, dtype="<u8", count=n, offset=offset).copy()
        bad = np.nonzero(res >= np.uint64(prime))[0]
        if bad.size:
            word = int(bad[0])
            raise ValueError(
                f"residue out of range at offset {offset + 8 * word}: "
                f"word {word} is {int(res[word])} >= prime {prime}"
            )
        residues.append(res)
        offset += 8 * n
    return RingPoly(basis, residues), offset


def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Serialize a degree-1 ciphertext (c0 then c1)."""
    return serialize_poly(ct.c0) + serialize_poly(ct.c1)


def deserialize_ciphertext(data: bytes, params: BfvParameters) -> Ciphertext:
    c0, used = deserialize_poly(data, params)
    c1, used2 = deserialize_poly(data[used:], params)
    if used + used2 != len(data):
        raise ValueError(
            f"trailing bytes after ciphertext at offset {used + used2}: "
            f"{len(data) - used - used2} extra"
        )
    return Ciphertext(c0=c0, c1=c1)


def ciphertext_bytes(params: BfvParameters) -> int:
    """Wire size of one ciphertext under this format."""
    per_poly = _HEADER.size + len(params.basis.primes) * (8 + 8 * params.n)
    return 2 * per_poly


def roundtrip_check(ct: Ciphertext, params: BfvParameters) -> bool:
    """Serialize-deserialize and compare (used by tests and examples)."""
    restored = deserialize_ciphertext(serialize_ciphertext(ct), params)
    return all(
        np.array_equal(a, b)
        for a, b in zip(
            ct.c0.residues + ct.c1.residues,
            restored.c0.residues + restored.c1.residues,
        )
    )
