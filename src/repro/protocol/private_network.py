"""Whole-network private inference through the real BFV protocol.

Drives a :class:`repro.nn.model.QuantizedCnn` layer by layer: every conv
and linear layer runs through the one-round hybrid HE/2PC protocol
(encrypt share -> homomorphic multiply -> re-share), while ReLU, pooling
and re-quantization execute on secret shares' reconstruction -- standing
in for the 2PC sub-protocols (garbled circuits / OT) that the hybrid
scheme uses for non-linear layers and that are orthogonal to FLASH.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.encoding.conv_encoding import ConvShape
from repro.encoding.linear_encoding import LinearShape
from repro.he.backend import PolyMulBackend
from repro.he.params import BfvParameters
from repro.nn.model import QuantizedCnn
from repro.nn.quant import requantize_shift
from repro.protocol.hybrid import (
    HybridConvProtocol,
    HybridLinearProtocol,
    ProtocolStats,
    make_session,
)


@dataclass
class PrivateInferenceTrace:
    """Outcome of one private network evaluation."""

    logits: np.ndarray
    expected_logits: np.ndarray
    layer_stats: List[ProtocolStats] = field(default_factory=list)

    @property
    def prediction(self) -> int:
        return int(self.logits.argmax())

    @property
    def matches_plain(self) -> bool:
        return bool(np.array_equal(self.logits, self.expected_logits))

    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.layer_stats)

    @property
    def total_ciphertexts(self) -> int:
        return sum(
            s.ciphertexts_sent + s.ciphertexts_returned
            for s in self.layer_stats
        )

    @property
    def min_noise_budget(self) -> float:
        return min(
            (s.min_noise_budget for s in self.layer_stats),
            default=float("inf"),
        )

    @property
    def total_retries(self) -> int:
        """Transport retries across all layers (resilient sessions only)."""
        return sum(s.retries for s in self.layer_stats)

    @property
    def degraded_layers(self) -> int:
        """Layers that fell back from the approximate to the exact path."""
        return sum(1 for s in self.layer_stats if s.degraded)


class PrivateCnnEvaluator:
    """Run a quantized CNN privately, one HE round per compute layer.

    Args:
        net: the quantized network.
        params: BFV parameters; the plaintext ring must hold every layer's
            worst-case sum-product (checked at construction).
        backend: polynomial-multiplication backend (exact NTT default;
            pass a FLASH backend for the approximate datapath).
        transport: optional :class:`repro.faults.ResilientSession`; every
            layer's ciphertext traffic then crosses its checksummed
            channel with bounded retry (counts appear in the trace's
            per-layer stats).
        guard: optional :class:`repro.faults.BudgetGuard`; approximate
            layers whose noise budget is predicted or observed exhausted
            degrade per the guard's policy (``"fallback"`` reruns the
            layer on the exact NTT backend).
    """

    def __init__(
        self,
        net: QuantizedCnn,
        params: BfvParameters,
        backend: Optional[PolyMulBackend] = None,
        transport=None,
        guard=None,
    ):
        from repro.nn.quant import sum_product_bits

        self.net = net
        self.params = params
        self.backend = backend
        self.transport = transport
        self.guard = guard
        worst = sum_product_bits(
            net.a_bits, net.w_bits, net.max_sum_product_terms()
        )
        if params.t.bit_length() - 1 < worst:
            raise ValueError(
                f"plaintext ring (2^{params.t.bit_length() - 1}) cannot hold "
                f"{worst}-bit sum-products; use select_parameters()"
            )

    def infer(
        self, image: np.ndarray, rng: np.random.Generator
    ) -> PrivateInferenceTrace:
        """Privately classify one float image.

        Every compute layer executes through the hybrid protocol on the
        *current* integer activation; the returned trace carries the
        protocol statistics and the exact-pipeline logits for comparison.
        """
        session = make_session(self.params, rng)
        expected = self.net.forward_with_kernels(image)

        x = self.net.input_params.quantize(image[None])[0]
        layer_stats: List[ProtocolStats] = []
        for op in self.net.ops:
            if op[0] == "conv":
                spec = op[1]
                m, c, kh, kw = spec.weight_q.shape
                shape = ConvShape(
                    in_channels=c,
                    height=x.shape[1],
                    width=x.shape[2],
                    out_channels=m,
                    kernel_h=kh,
                    kernel_w=kw,
                    stride=spec.stride,
                    padding=spec.padding,
                )
                protocol = HybridConvProtocol(
                    self.params, shape, self.backend,
                    transport=self.transport, guard=self.guard,
                    layer_name=f"layer{len(layer_stats)}:conv",
                )
                result = protocol.run(x, spec.weight_q, rng, session=session)
                layer_stats.append(result.stats)
                sp = self.net._add_bias(result.reconstructed, spec)
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
            elif op[0] == "linear":
                spec = op[1]
                shape = LinearShape(
                    in_features=spec.weight_q.shape[1],
                    out_features=spec.weight_q.shape[0],
                )
                protocol = HybridLinearProtocol(
                    self.params, shape, self.backend,
                    transport=self.transport, guard=self.guard,
                    layer_name=f"layer{len(layer_stats)}:linear",
                )
                result = protocol.run(x, spec.weight_q, rng, session=session)
                layer_stats.append(result.stats)
                sp = self.net._add_bias(result.reconstructed, spec)
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
            else:
                # Non-linear layers: evaluated by the 2PC sub-protocols in
                # the hybrid scheme; computed on the reconstructed shares
                # here (identical values, orthogonal machinery).
                x = self.net._apply_aux_batch(op, x[None])[0]
        return PrivateInferenceTrace(
            logits=x,
            expected_logits=expected,
            layer_stats=layer_stats,
        )

    def infer_batch(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> List[PrivateInferenceTrace]:
        """Privately classify a batch of float images in one pass.

        Convolution layers run through
        :meth:`repro.protocol.hybrid.HybridConvProtocol.run_batch`, so
        weight encodings are shared across the batch and -- with a batched
        backend such as :class:`repro.runtime.BatchedFftBackend` -- all
        transform work executes in vectorized batch passes.  Non-linear
        layers apply to the whole activation stack at once.
        """
        session = make_session(self.params, rng)
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        expected = [self.net.forward_with_kernels(img) for img in images]

        x = self.net.input_params.quantize(images)
        layer_stats: List[List[ProtocolStats]] = [[] for _ in images]
        for op in self.net.ops:
            if op[0] == "conv":
                spec = op[1]
                m, c, kh, kw = spec.weight_q.shape
                shape = ConvShape(
                    in_channels=c,
                    height=x.shape[2],
                    width=x.shape[3],
                    out_channels=m,
                    kernel_h=kh,
                    kernel_w=kw,
                    stride=spec.stride,
                    padding=spec.padding,
                )
                protocol = HybridConvProtocol(
                    self.params, shape, self.backend,
                    transport=self.transport, guard=self.guard,
                    layer_name=f"layer{len(layer_stats[0])}:conv",
                )
                results = protocol.run_batch(
                    x, spec.weight_q, rng, session=session
                )
                for item, result in enumerate(results):
                    layer_stats[item].append(result.stats)
                sp = np.stack(
                    [
                        self.net._add_bias(r.reconstructed, spec)
                        for r in results
                    ]
                )
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
            elif op[0] == "linear":
                spec = op[1]
                shape = LinearShape(
                    in_features=spec.weight_q.shape[1],
                    out_features=spec.weight_q.shape[0],
                )
                protocol = HybridLinearProtocol(
                    self.params, shape, self.backend,
                    transport=self.transport, guard=self.guard,
                    layer_name=f"layer{len(layer_stats[0])}:linear",
                )
                outs = []
                for item in range(len(x)):
                    result = protocol.run(
                        x[item], spec.weight_q, rng, session=session
                    )
                    layer_stats[item].append(result.stats)
                    sp = self.net._add_bias(result.reconstructed, spec)
                    outs.append(
                        requantize_shift(sp, spec.requant_shift, spec.act_bits)
                    )
                x = np.stack(outs)
            else:
                x = self.net._apply_aux_batch(op, x)
        return [
            PrivateInferenceTrace(
                logits=x[item],
                expected_logits=expected[item],
                layer_stats=layer_stats[item],
            )
            for item in range(len(images))
        ]

    def accuracy(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        rng: np.random.Generator,
        max_samples: int = 8,
    ) -> float:
        """Private top-1 accuracy over (a subset of) a dataset."""
        count = min(max_samples, len(images))
        correct = 0
        for i in range(count):
            trace = self.infer(images[i], rng)
            if trace.prediction == labels[i]:
                correct += 1
        return correct / count
