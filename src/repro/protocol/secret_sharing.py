"""Arithmetic secret sharing over ``Z_{2^l}`` (the 2PC half of the hybrid).

An l-bit value ``x`` is split into ``{x}^C + {x}^S = x (mod 2^l)`` held by
client and server.  In Cheetah-style protocols the sharing ring matches the
BFV plaintext modulus ``t = 2^l``, so homomorphic results convert to shares
for free.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class ShareRing:
    """The ring ``Z_{2^l}`` with signed (centered) semantics.

    Args:
        bits: ring width ``l`` (2..62 so numpy int64 holds centered values).
    """

    def __init__(self, bits: int):
        if not 2 <= bits <= 62:
            raise ValueError(f"ring width must be in [2, 62], got {bits}")
        self.bits = bits
        self.modulus = 1 << bits

    def reduce(self, x) -> np.ndarray:
        """Map integers into ``[0, 2^l)``."""
        return np.asarray(x, dtype=np.int64) % self.modulus

    def to_signed(self, x) -> np.ndarray:
        """Centered lift into ``[-2^(l-1), 2^(l-1))``."""
        x = self.reduce(x)
        half = self.modulus >> 1
        return np.where(x >= half, x - self.modulus, x)

    def share(
        self, x, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``x`` into a uniformly random additive sharing."""
        x = self.reduce(x)
        client = rng.integers(0, self.modulus, size=x.shape, dtype=np.int64)
        server = self.reduce(x - client)
        return client, server

    def reconstruct(self, client, server) -> np.ndarray:
        """Recombine shares into signed values."""
        return self.to_signed(self.reduce(client) + self.reduce(server))

    def add(self, a, b) -> np.ndarray:
        return self.reduce(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64))

    def sub(self, a, b) -> np.ndarray:
        return self.reduce(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64))

    def neg(self, a) -> np.ndarray:
        return self.reduce(-np.asarray(a, dtype=np.int64))

    def random(self, shape, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random ring element (the server's output mask)."""
        return rng.integers(0, self.modulus, size=shape, dtype=np.int64)

    def fits_signed(self, x) -> bool:
        """True if signed values are representable without wrap-around."""
        x = np.asarray(x, dtype=np.int64)
        half = self.modulus >> 1
        return bool(np.all(x >= -half) and np.all(x < half))
