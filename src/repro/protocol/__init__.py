"""Hybrid HE/2PC protocol simulation: secret sharing + one-round HConv."""

from repro.protocol.hybrid import (
    HybridConvProtocol,
    HybridLinearProtocol,
    ProtocolResult,
    ProtocolStats,
    make_session,
)
from repro.protocol.private_network import (
    PrivateCnnEvaluator,
    PrivateInferenceTrace,
)
from repro.protocol.secret_sharing import ShareRing
from repro.protocol.wire import (
    ciphertext_bytes,
    deserialize_ciphertext,
    deserialize_poly,
    roundtrip_check,
    serialize_ciphertext,
    serialize_poly,
)

__all__ = [
    "HybridConvProtocol",
    "HybridLinearProtocol",
    "ProtocolResult",
    "ProtocolStats",
    "PrivateCnnEvaluator",
    "PrivateInferenceTrace",
    "ShareRing",
    "ciphertext_bytes",
    "deserialize_ciphertext",
    "deserialize_poly",
    "roundtrip_check",
    "serialize_ciphertext",
    "serialize_poly",
    "make_session",
]
