"""One-round hybrid HE/2PC linear-layer protocols (Figure 1 of the paper).

The client encrypts its activation share and sends it; the server
homomorphically reconstructs the activation, multiplies by its plaintext
weights, subtracts a fresh random mask (its output share), and returns the
ciphertexts; the client decrypts to obtain the other output share:

    server computes  (Enc({x}^C) boxplus {x}^S) boxtimes w  boxminus s
    client holds     {y}^C = y - s

Both convolution and fully-connected layers are provided; the polynomial
multiplication backend is pluggable (exact NTT vs FLASH's approximate FFT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.encoding.conv_encoding import (
    Conv2dEncoder,
    ConvShape,
    decompose_strided,
    iter_row_bands,
    pad_input,
)
from repro.encoding.linear_encoding import LinearEncoder, LinearShape
from repro.he.backend import FftPolyMulBackend, PolyMulBackend
from repro.he.bfv import BfvContext, Ciphertext, PublicKey, SecretKey
from repro.he.params import BfvParameters
from repro.obs import trace as obs_trace
from repro.protocol.secret_sharing import ShareRing
from repro.protocol.wire import ciphertext_bytes


@dataclass
class ProtocolStats:
    """Traffic and workload accounting for one protocol run."""

    ciphertexts_sent: int = 0
    ciphertexts_returned: int = 0
    weight_transforms: int = 0
    input_transforms: int = 0
    inverse_transforms: int = 0
    # Weight-transform multiplication accounting, populated when the
    # backend runs compiled sparse plans (repro.runtime's
    # SparseBatchedFftBackend): realized = executed by the plans, dense =
    # dense-butterfly equivalent, model = repro.sparse.opcount prediction.
    weight_mults_realized: int = 0
    weight_mults_dense: int = 0
    weight_mults_model: int = 0
    min_noise_budget: float = float("inf")
    bytes_sent: int = 0
    bytes_received: int = 0
    # Transport resilience (populated when traffic routes through a
    # repro.faults.ResilientSession) and graceful degradation.
    retries: int = 0
    timeouts: int = 0
    checksum_failures: int = 0
    dead_letters: int = 0
    degraded: bool = False
    # Supervised multi-process execution (populated when the batched
    # products ran on a repro.cluster executor): per-run supervision
    # counters of the backend calls attributed to this layer/item.
    cluster_dispatches: int = 0
    cluster_worker_deaths: int = 0
    cluster_jobs_requeued: int = 0
    cluster_serial_fallback_jobs: int = 0
    cluster_recoveries: int = 0

    @property
    def total_transforms(self) -> int:
        return (
            self.weight_transforms
            + self.input_transforms
            + self.inverse_transforms
        )

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    @property
    def realized_mult_reduction(self) -> float:
        """Fraction of dense weight-FFT mults removed by executed plans."""
        if not self.weight_mults_dense:
            return 0.0
        return 1.0 - self.weight_mults_realized / self.weight_mults_dense

    @property
    def model_mult_reduction(self) -> float:
        if not self.weight_mults_dense:
            return 0.0
        return 1.0 - self.weight_mults_model / self.weight_mults_dense


@dataclass
class ProtocolResult:
    """Outcome of one private linear-layer evaluation."""

    client_share: np.ndarray
    server_share: np.ndarray
    reconstructed: np.ndarray
    expected: np.ndarray
    stats: ProtocolStats = field(default_factory=ProtocolStats)

    @property
    def max_error(self) -> int:
        """Worst absolute deviation from the exact plaintext result."""
        return int(
            np.max(np.abs(self.reconstructed.astype(np.int64) - self.expected))
        )

    @property
    def exact(self) -> bool:
        return self.max_error == 0


class _PartyPair:
    """Shared key material and ring for one client/server session."""

    def __init__(self, params: BfvParameters, rng: np.random.Generator):
        if params.t & (params.t - 1):
            raise ValueError("hybrid protocol needs a power-of-two plaintext modulus")
        self.params = params
        self.ctx = BfvContext(params)
        self.ring = ShareRing(params.t.bit_length() - 1)
        self.sk, self.pk = self.ctx.keygen(rng)


class _ResilientProtocolMixin:
    """Transport routing and budget-guard helpers shared by the protocols.

    Expects ``self.params``, ``self.backend``, ``self.transport`` and
    ``self.guard`` attributes on the concrete protocol class.
    """

    def _transfer_ct(self, ct: Ciphertext, stats: ProtocolStats) -> Ciphertext:
        """Route one ciphertext through the resilient transport.

        Identity when no transport is configured.  Retry/timeout/checksum
        counters accumulated by the session during this transfer are
        attributed to ``stats`` (per-layer / per-item accounting).
        """
        if self.transport is None:
            return ct
        with obs_trace.tracer.span("protocol.transfer"):
            return self._transfer_ct_routed(ct, stats)

    def _transfer_ct_routed(
        self, ct: Ciphertext, stats: ProtocolStats
    ) -> Ciphertext:
        before = self.transport.stats
        base = (
            before.retries,
            before.timeouts,
            before.checksum_failures + before.decode_failures,
            before.dead_letters,
        )
        try:
            return self.transport.transfer_ciphertext(ct, self.params)
        finally:
            after = self.transport.stats
            stats.retries += after.retries - base[0]
            stats.timeouts += after.timeouts - base[1]
            stats.checksum_failures += (
                after.checksum_failures + after.decode_failures - base[2]
            )
            stats.dead_letters += after.dead_letters - base[3]

    def _guarded(self) -> bool:
        """Degradation applies only where an exact fallback exists: the
        approximate-FFT backends (the exact paths have nothing to fall
        back to -- undersized parameters there are a hard error)."""
        return self.guard is not None and isinstance(
            self.backend, FftPolyMulBackend
        )

    def _absorb_backend_mults(self, *stats: ProtocolStats) -> None:
        """Attribute the backend's weight-transform mult accounting.

        Reads the ``last_stats`` left by the most recent ``multiply_many``
        call (the sparse runtime backend reports realized/dense/model
        counts there); call sites invoke this immediately after the
        batched product call.  Counts are per logical layer workload, so
        -- like ``weight_transforms`` -- each item of a batch is charged
        the full shared-transform count.
        """
        last = getattr(self.backend, "last_stats", None)
        if last is None:
            return
        cluster = getattr(last, "cluster", None) or {}
        for st in stats:
            st.weight_mults_realized += getattr(
                last, "weight_mults_realized", 0
            )
            st.weight_mults_dense += getattr(last, "weight_mults_dense", 0)
            st.weight_mults_model += getattr(last, "weight_mults_model", 0)
            st.cluster_dispatches += int(cluster.get("dispatches", 0))
            st.cluster_worker_deaths += int(cluster.get("worker_deaths", 0))
            st.cluster_jobs_requeued += int(cluster.get("jobs_requeued", 0))
            st.cluster_serial_fallback_jobs += int(
                cluster.get("serial_fallback_jobs", 0)
            )
            st.cluster_recoveries += int(cluster.get("recoveries", 0))


class HybridConvProtocol(_ResilientProtocolMixin):
    """Private convolution via coefficient-encoded BFV (Cheetah-style).

    Args:
        params: BFV parameters; ``t`` must be a power of two.
        shape: convolution shape (stride/padding supported).
        backend: polynomial multiplication backend (exact NTT default).
        transport: optional :class:`repro.faults.ResilientSession`; all
            ciphertext traffic (client->server activations, server->client
            results) then crosses its checksummed channel with bounded
            retry, and the retry/timeout/dead-letter counts land in
            :class:`ProtocolStats`.
        guard: optional :class:`repro.faults.BudgetGuard` watching the
            approximate path for noise-budget exhaustion (predicted via
            :mod:`repro.he.noise` before the run, observed after); under
            the ``"fallback"`` policy the layer transparently reruns on
            the exact NTT backend.  Ignored for exact backends.
        layer_name: label used in guard degradation events.
    """

    def __init__(
        self,
        params: BfvParameters,
        shape: ConvShape,
        backend: Optional[PolyMulBackend] = None,
        transport=None,
        guard=None,
        layer_name: str = "conv",
    ):
        self.params = params
        self.shape = shape
        self.backend = backend
        self.transport = transport
        self.guard = guard
        self.layer_name = layer_name

    def _fallback_protocol(self) -> "HybridConvProtocol":
        return HybridConvProtocol(
            self.params,
            self.shape,
            self.guard.fallback_backend(),
            transport=self.transport,
            layer_name=self.layer_name,
        )

    @obs_trace.traced("protocol.conv")
    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        session: Optional[_PartyPair] = None,
    ) -> ProtocolResult:
        """Evaluate ``conv(x, w)`` privately and verify against plaintext.

        Args:
            x: clear activation tensor ``C x H x W`` (signed ints); it is
                secret-shared internally before the protocol starts.
            w: server weights ``M x C x kh x kw`` (signed ints).
            rng: randomness for keys, shares and masks.
            session: optional pre-generated key material (reuse across
                layers).
        """
        party = session or _PartyPair(self.params, rng)
        if self._guarded():
            # Channel tiling accumulates at most in_channels partial sums.
            if self.guard.preflight(
                w,
                num_accumulated=self.shape.in_channels,
                layer=self.layer_name,
            ):
                result = self._fallback_protocol().run(x, w, rng, session=party)
                result.stats.degraded = True
                return result
        result = self._run_once(x, w, rng, party)
        if self._guarded() and self.guard.observe(
            result.max_error, layer=self.layer_name
        ):
            result = self._fallback_protocol().run(x, w, rng, session=party)
            result.stats.degraded = True
        return result

    def _run_once(
        self,
        x: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        party: _PartyPair,
    ) -> ProtocolResult:
        from repro.encoding.plain_eval import conv2d_direct

        ring, ctx = party.ring, party.ctx
        stats = ProtocolStats()

        x = np.asarray(x, dtype=np.int64)
        w = np.asarray(w, dtype=np.int64)
        expected = conv2d_direct(x, w, stride=self.shape.stride, padding=self.shape.padding)
        if not ring.fits_signed(expected):
            raise ValueError(
                "convolution output overflows the sharing ring; "
                "increase the plaintext modulus"
            )

        x_client, x_server = ring.share(x, rng)
        xc_pad = pad_input(ring.to_signed(x_client), self.shape.padding)
        xs_pad = pad_input(ring.to_signed(x_server), self.shape.padding)

        padded_shape = ConvShape(
            in_channels=self.shape.in_channels,
            height=self.shape.padded_height,
            width=self.shape.padded_width,
            out_channels=self.shape.out_channels,
            kernel_h=self.shape.kernel_h,
            kernel_w=self.shape.kernel_w,
            stride=self.shape.stride,
            padding=0,
        )

        y_client = np.zeros_like(expected)
        y_server = np.zeros_like(expected)
        oh, ow = expected.shape[1], expected.shape[2]
        s = self.shape.stride
        for phase, a, b in decompose_strided(padded_shape):
            xc_phase = xc_pad[:, a::s, b::s][:, : phase.height, : phase.width]
            xs_phase = xs_pad[:, a::s, b::s][:, : phase.height, : phase.width]
            w_phase = w[:, :, a::s, b::s]
            for row_start, band in iter_row_bands(phase, self.params.n):
                enc = Conv2dEncoder(band, self.params.n)
                rows = slice(row_start, row_start + band.height)
                yc, ys = self._run_phase(
                    party, enc, xc_phase[:, rows, :], xs_phase[:, rows, :],
                    w_phase, rng, stats,
                )
                r1 = min(row_start + yc.shape[1], oh)
                pad_rows = r1 - row_start
                if pad_rows <= 0:
                    continue
                yc_full = np.zeros_like(y_client)
                ys_full = np.zeros_like(y_server)
                yc_full[:, row_start:r1, :ow] = yc[:, :pad_rows, :ow]
                ys_full[:, row_start:r1, :ow] = ys[:, :pad_rows, :ow]
                y_client = ring.add(y_client, yc_full)
                y_server = ring.add(y_server, ys_full)

        reconstructed = ring.reconstruct(y_client, y_server)
        del ctx  # evaluation state lives in the party object
        return ProtocolResult(
            client_share=y_client,
            server_share=y_server,
            reconstructed=reconstructed,
            expected=expected,
            stats=stats,
        )

    @obs_trace.traced("protocol.conv_batch")
    def run_batch(
        self,
        xs: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        session: Optional[_PartyPair] = None,
    ) -> List[ProtocolResult]:
        """Evaluate ``conv(x_i, w)`` privately for a whole batch of inputs.

        The batched counterpart of :meth:`run`: every phase/band builds its
        encoder and weight polynomials once for the whole batch, and all
        homomorphic plaintext products of a band (items x channels x tiles
        x 2 ciphertext components) go through the backend in one
        ``multiply_many`` call when it offers one (see
        :mod:`repro.runtime`), so the transform work is batched and the
        weight spectra are computed once.

        Args:
            xs: clear activations ``B x C x H x W`` (or ``C x H x W``).
            w: server weights ``M x C x kh x kw``.
            rng: randomness for keys, shares and masks.
            session: optional pre-generated key material.

        Returns:
            one :class:`ProtocolResult` per batch item, in order.
        """
        party = session or _PartyPair(self.params, rng)
        if self._guarded():
            if self.guard.preflight(
                w,
                num_accumulated=self.shape.in_channels,
                layer=self.layer_name,
            ):
                results = self._fallback_protocol().run_batch(
                    xs, w, rng, session=party
                )
                for result in results:
                    result.stats.degraded = True
                return results
        results = self._run_batch_once(xs, w, rng, party)
        worst = max((r.max_error for r in results), default=0)
        if self._guarded() and self.guard.observe(worst, layer=self.layer_name):
            results = self._fallback_protocol().run_batch(
                xs, w, rng, session=party
            )
            for result in results:
                result.stats.degraded = True
        return results

    def _run_batch_once(
        self,
        xs: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        party: _PartyPair,
    ) -> List[ProtocolResult]:
        from repro.encoding.plain_eval import conv2d_direct

        ring = party.ring

        xs = np.asarray(xs, dtype=np.int64)
        if xs.ndim == 3:
            xs = xs[None]
        w = np.asarray(w, dtype=np.int64)
        batch = xs.shape[0]
        stats = [ProtocolStats() for _ in range(batch)]
        expected = [
            conv2d_direct(x, w, stride=self.shape.stride, padding=self.shape.padding)
            for x in xs
        ]
        for e in expected:
            if not ring.fits_signed(e):
                raise ValueError(
                    "convolution output overflows the sharing ring; "
                    "increase the plaintext modulus"
                )

        shares = [ring.share(x, rng) for x in xs]
        xc_pads = [
            pad_input(ring.to_signed(c), self.shape.padding) for c, _ in shares
        ]
        xs_pads = [
            pad_input(ring.to_signed(sv), self.shape.padding) for _, sv in shares
        ]

        padded_shape = ConvShape(
            in_channels=self.shape.in_channels,
            height=self.shape.padded_height,
            width=self.shape.padded_width,
            out_channels=self.shape.out_channels,
            kernel_h=self.shape.kernel_h,
            kernel_w=self.shape.kernel_w,
            stride=self.shape.stride,
            padding=0,
        )

        y_clients = [np.zeros_like(e) for e in expected]
        y_servers = [np.zeros_like(e) for e in expected]
        oh, ow = expected[0].shape[1], expected[0].shape[2]
        s = self.shape.stride
        for phase, a, b in decompose_strided(padded_shape):
            xc_phase = [
                xp[:, a::s, b::s][:, : phase.height, : phase.width]
                for xp in xc_pads
            ]
            xs_phase = [
                xp[:, a::s, b::s][:, : phase.height, : phase.width]
                for xp in xs_pads
            ]
            w_phase = w[:, :, a::s, b::s]
            for row_start, band in iter_row_bands(phase, self.params.n):
                enc = Conv2dEncoder(band, self.params.n)
                rows = slice(row_start, row_start + band.height)
                ys = self._run_phase_batch(
                    party, enc,
                    [xc[:, rows, :] for xc in xc_phase],
                    [xv[:, rows, :] for xv in xs_phase],
                    w_phase, rng, stats,
                )
                for item, (yc, yv) in enumerate(ys):
                    r1 = min(row_start + yc.shape[1], oh)
                    pad_rows = r1 - row_start
                    if pad_rows <= 0:
                        continue
                    yc_full = np.zeros_like(y_clients[item])
                    ys_full = np.zeros_like(y_servers[item])
                    yc_full[:, row_start:r1, :ow] = yc[:, :pad_rows, :ow]
                    ys_full[:, row_start:r1, :ow] = yv[:, :pad_rows, :ow]
                    y_clients[item] = ring.add(y_clients[item], yc_full)
                    y_servers[item] = ring.add(y_servers[item], ys_full)

        return [
            ProtocolResult(
                client_share=y_clients[item],
                server_share=y_servers[item],
                reconstructed=ring.reconstruct(y_clients[item], y_servers[item]),
                expected=expected[item],
                stats=stats[item],
            )
            for item in range(batch)
        ]

    @obs_trace.traced("protocol.phase_batch")
    def _run_phase_batch(
        self,
        party: _PartyPair,
        enc: Conv2dEncoder,
        xc_items: List[np.ndarray],
        xs_items: List[np.ndarray],
        w: np.ndarray,
        rng: np.random.Generator,
        stats: List[ProtocolStats],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        ctx, ring = party.ctx, party.ring
        t = self.params.t
        batch = len(xc_items)

        w_polys = enc.encode_weights(w)  # shared by the whole batch
        counts = enc.transforms_per_hconv()

        # Client side: encrypt every item's tiles (same rng order as
        # serial runs of the same item list).
        all_full_cts: List[List[Ciphertext]] = []
        for item in range(batch):
            client_polys = enc.encode_input(xc_items[item])
            cts = [
                ctx.encrypt_symmetric(party.sk, poly % t, rng)
                for poly in client_polys
            ]
            stats[item].ciphertexts_sent += len(cts)
            stats[item].bytes_sent += len(cts) * ciphertext_bytes(self.params)
            stats[item].input_transforms += len(cts)
            stats[item].weight_transforms += counts["weight_forward"]
            stats[item].inverse_transforms += counts["inverse"]
            # Client -> server hop (resilient transport when configured).
            cts = [self._transfer_ct(ct, stats[item]) for ct in cts]
            server_polys = enc.encode_input(xs_items[item])
            all_full_cts.append(
                [
                    ctx.add_plain(ct, server_polys[tile] % t)
                    for tile, ct in enumerate(cts)
                ]
            )

        # Server side: every (item, channel, tile) product in one batch.
        out_channels = enc.shape.out_channels
        tiles = len(all_full_cts[0])
        pairs = [(m, tile) for m in range(out_channels) for tile in range(tiles)]
        products: Dict[Tuple[int, int, int], Ciphertext] = {}
        if self.backend is not None and hasattr(self.backend, "multiply_many"):
            polys, weights = [], []
            for item in range(batch):
                for m, tile in pairs:
                    w_poly = w_polys[(tile, m)]
                    polys.extend(
                        (all_full_cts[item][tile].c0, all_full_cts[item][tile].c1)
                    )
                    weights.extend((w_poly, w_poly))
            outs = self.backend.multiply_many(polys, weights)
            self._absorb_backend_mults(*stats)
            for item in range(batch):
                for i, (m, tile) in enumerate(pairs):
                    k = 2 * (item * len(pairs) + i)
                    products[(item, m, tile)] = Ciphertext(outs[k], outs[k + 1])
        else:
            for item in range(batch):
                for m, tile in pairs:
                    products[(item, m, tile)] = ctx.multiply_plain(
                        all_full_cts[item][tile], w_polys[(tile, m)], self.backend
                    )

        results: List[Tuple[np.ndarray, np.ndarray]] = []
        oh, ow = enc.shape.out_height, enc.shape.out_width
        for item in range(batch):
            y_client = np.zeros((out_channels, oh, ow), dtype=np.int64)
            y_server = np.zeros_like(y_client)
            for m in range(out_channels):
                acc = None
                for tile in range(tiles):
                    prod = products[(item, m, tile)]
                    acc = prod if acc is None else ctx.add(acc, prod)
                r = ring.random(self.params.n, rng)
                ct_out = ctx.sub_plain(acc, r)
                stats[item].ciphertexts_returned += 1
                stats[item].bytes_received += ciphertext_bytes(self.params)
                # Server -> client hop.
                ct_out = self._transfer_ct(ct_out, stats[item])
                stats[item].min_noise_budget = min(
                    stats[item].min_noise_budget,
                    ctx.noise_budget(party.sk, ct_out),
                )
                y_client[m] = ring.reduce(
                    enc.extract_output(ctx.decrypt(party.sk, ct_out))
                )
                y_server[m] = ring.reduce(enc.extract_output(r))
            results.append((y_client, y_server))
        return results

    @obs_trace.traced("protocol.phase")
    def _run_phase(
        self,
        party: _PartyPair,
        enc: Conv2dEncoder,
        xc: np.ndarray,
        xs: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        stats: ProtocolStats,
    ) -> Tuple[np.ndarray, np.ndarray]:
        ctx, ring = party.ctx, party.ring
        t = self.params.t

        # Client: encrypt each tile of its share.
        client_polys = enc.encode_input(xc)
        cts = [
            ctx.encrypt_symmetric(party.sk, poly % t, rng)
            for poly in client_polys
        ]
        stats.ciphertexts_sent += len(cts)
        stats.bytes_sent += len(cts) * ciphertext_bytes(self.params)
        stats.input_transforms += len(cts)
        # Client -> server hop (resilient transport when configured).
        cts = [self._transfer_ct(ct, stats) for ct in cts]

        # Server: reconstruct activation under encryption, multiply, mask.
        server_polys = enc.encode_input(xs)
        w_polys = enc.encode_weights(w)
        counts = enc.transforms_per_hconv()
        stats.weight_transforms += counts["weight_forward"]
        stats.inverse_transforms += counts["inverse"]

        # Partial products accumulate across channel tiles under encryption
        # (uniform tiles share extraction indices), so one masked
        # ciphertext returns per output channel.
        full_cts = [
            ctx.add_plain(ct, server_polys[tile] % t)
            for tile, ct in enumerate(cts)
        ]
        oh, ow = enc.shape.out_height, enc.shape.out_width
        y_client = np.zeros((enc.shape.out_channels, oh, ow), dtype=np.int64)
        y_server = np.zeros_like(y_client)
        products = self._phase_products(ctx, full_cts, w_polys, enc.shape.out_channels)
        if self.backend is not None and hasattr(self.backend, "multiply_many"):
            self._absorb_backend_mults(stats)
        for m in range(enc.shape.out_channels):
            acc = None
            for tile in range(len(full_cts)):
                prod = products[(m, tile)]
                acc = prod if acc is None else ctx.add(acc, prod)
            r = ring.random(self.params.n, rng)
            ct_out = ctx.sub_plain(acc, r)
            stats.ciphertexts_returned += 1
            stats.bytes_received += ciphertext_bytes(self.params)
            # Server -> client hop.
            ct_out = self._transfer_ct(ct_out, stats)
            stats.min_noise_budget = min(
                stats.min_noise_budget, ctx.noise_budget(party.sk, ct_out)
            )
            y_client[m] = ring.reduce(
                enc.extract_output(ctx.decrypt(party.sk, ct_out))
            )
            y_server[m] = ring.reduce(enc.extract_output(r))
        return y_client, y_server

    def _phase_products(
        self,
        ctx: BfvContext,
        full_cts: List[Ciphertext],
        w_polys: Dict[Tuple[int, int], np.ndarray],
        out_channels: int,
    ) -> Dict[Tuple[int, int], Ciphertext]:
        """All ``(channel, tile)`` plaintext products of one phase.

        When the backend exposes ``multiply_many`` (the batched runtime
        backends of :mod:`repro.runtime`), every ciphertext-component
        product of the phase goes through one batched call; otherwise the
        original serial ``multiply_plain`` loop runs.  Both paths produce
        bit-identical ciphertexts.
        """
        pairs = [
            (m, tile)
            for m in range(out_channels)
            for tile in range(len(full_cts))
        ]
        if self.backend is not None and hasattr(self.backend, "multiply_many"):
            polys, weights = [], []
            for m, tile in pairs:
                w_poly = w_polys[(tile, m)]
                polys.extend((full_cts[tile].c0, full_cts[tile].c1))
                weights.extend((w_poly, w_poly))
            outs = self.backend.multiply_many(polys, weights)
            return {
                pair: Ciphertext(outs[2 * i], outs[2 * i + 1])
                for i, pair in enumerate(pairs)
            }
        return {
            (m, tile): ctx.multiply_plain(
                full_cts[tile], w_polys[(tile, m)], self.backend
            )
            for m, tile in pairs
        }


class HybridLinearProtocol(_ResilientProtocolMixin):
    """Private fully-connected layer ``y = W @ x`` (same one-round flow).

    ``transport`` and ``guard`` behave as on :class:`HybridConvProtocol`.
    """

    def __init__(
        self,
        params: BfvParameters,
        shape: LinearShape,
        backend: Optional[PolyMulBackend] = None,
        transport=None,
        guard=None,
        layer_name: str = "linear",
    ):
        self.params = params
        self.shape = shape
        self.backend = backend
        self.transport = transport
        self.guard = guard
        self.layer_name = layer_name

    def _fallback_protocol(self) -> "HybridLinearProtocol":
        return HybridLinearProtocol(
            self.params,
            self.shape,
            self.guard.fallback_backend(),
            transport=self.transport,
            layer_name=self.layer_name,
        )

    @obs_trace.traced("protocol.linear")
    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        session: Optional[_PartyPair] = None,
    ) -> ProtocolResult:
        party = session or _PartyPair(self.params, rng)
        if self._guarded():
            if self.guard.preflight(w, num_accumulated=1, layer=self.layer_name):
                result = self._fallback_protocol().run(x, w, rng, session=party)
                result.stats.degraded = True
                return result
        result = self._run_once(x, w, rng, party)
        if self._guarded() and self.guard.observe(
            result.max_error, layer=self.layer_name
        ):
            result = self._fallback_protocol().run(x, w, rng, session=party)
            result.stats.degraded = True
        return result

    def _run_once(
        self,
        x: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
        party: _PartyPair,
    ) -> ProtocolResult:
        ring, ctx = party.ring, party.ctx
        stats = ProtocolStats()
        t = self.params.t

        x = np.asarray(x, dtype=np.int64)
        w = np.asarray(w, dtype=np.int64)
        expected = (w @ x).astype(np.int64)
        if not ring.fits_signed(expected):
            raise ValueError("matvec output overflows the sharing ring")

        x_client, x_server = ring.share(x, rng)
        enc = LinearEncoder(self.shape, self.params.n)

        client_polys = enc.encode_input(ring.to_signed(x_client))
        server_polys = enc.encode_input(ring.to_signed(x_server))
        w_polys = enc.encode_weights(w)
        counts = enc.transforms_per_matvec()
        stats.weight_transforms += counts["weight_forward"]
        stats.inverse_transforms += counts["inverse"]

        cts = [
            ctx.encrypt_symmetric(party.sk, poly % t, rng)
            for poly in client_polys
        ]
        stats.ciphertexts_sent += len(cts)
        stats.bytes_sent += len(cts) * ciphertext_bytes(self.params)
        stats.input_transforms += len(cts)
        # Client -> server hop (resilient transport when configured).
        cts = [self._transfer_ct(ct, stats) for ct in cts]

        masked = {}
        masks = {}
        for chunk, ct in enumerate(cts):
            full = ctx.add_plain(ct, server_polys[chunk] % t)
            for group in range(enc.num_row_groups):
                prod = ctx.multiply_plain(
                    full, w_polys[(chunk, group)], self.backend
                )
                r = ring.random(self.params.n, rng)
                masked[(chunk, group)] = ctx.sub_plain(prod, r)
                masks[(chunk, group)] = r
        stats.ciphertexts_returned += len(masked)
        stats.bytes_received += len(masked) * ciphertext_bytes(self.params)

        client_products = {}
        for key, ct_out in masked.items():
            # Server -> client hop.
            ct_out = self._transfer_ct(ct_out, stats)
            stats.min_noise_budget = min(
                stats.min_noise_budget, ctx.noise_budget(party.sk, ct_out)
            )
            client_products[key] = ctx.decrypt(party.sk, ct_out)
        y_client = ring.reduce(enc.decode_output(client_products))
        y_server = ring.reduce(enc.decode_output(masks))

        return ProtocolResult(
            client_share=y_client,
            server_share=y_server,
            reconstructed=ring.reconstruct(y_client, y_server),
            expected=expected,
            stats=stats,
        )


def make_session(params: BfvParameters, rng: np.random.Generator) -> _PartyPair:
    """Generate reusable key material for a sequence of protocol runs."""
    return _PartyPair(params, rng)
