"""Approximation-aware training (Section IV-C1).

The paper: "with further approximation-aware training [25], [26], [35],
k can be reduced to around 5 ... while the inference accuracy of W4A4
ResNet-50 remains nearly unchanged", enabling the 62.8% post-training
hardware cost reduction.  Approximate weight-path FFTs act as a
deterministic kernel perturbation ``w -> w + dw`` (see
:mod:`repro.nn.private`), so robustness is trained exactly like noise-
injection adaptation: perturb the weights during each training step with
noise matched to the FFT-induced perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.encoding.conv_encoding import Conv2dEncoder, ConvShape
from repro.fftcore.approx_pipeline import ApproxNegacyclic
from repro.fftcore.fixed_point import ApproxFftConfig
from repro.nn.data import Dataset
from repro.nn.layers import Sequential, softmax_cross_entropy
from repro.nn.training import SgdOptimizer


def effective_kernel(
    w: np.ndarray, shape: ConvShape, n: int, config: ApproxFftConfig
) -> np.ndarray:
    """The kernel FLASH *effectively* convolves with.

    Round-trips each encoded weight polynomial through the approximate
    forward transform and an exact inverse, then reads the perturbed taps
    back out.  The result is a float kernel ``w + dw`` whose exact
    convolution equals the approximate pipeline's output (up to the
    activation-path float error).

    Args:
        w: integer kernel ``M x C x kh x kw``.
        shape: stride-1 convolution shape matching ``w``.
        n: ring degree.
        config: the approximate weight-path configuration.
    """
    w = np.asarray(w)
    enc = Conv2dEncoder(shape, n)
    pipe = ApproxNegacyclic(n, config)
    out = np.zeros(w.shape, dtype=np.float64)
    wp = shape.padded_width
    for (tile, m), poly in enc.encode_weights(w).items():
        spec = pipe.weight_forward(poly)
        poly_eff = pipe.base.inverse(spec.values)
        cw = enc.channels_per_tile
        for local, c in enumerate(enc.tile_channels(tile)):
            if c >= shape.in_channels:
                continue
            base = (cw - 1 - local) * enc.plane
            for u in range(shape.kernel_h):
                for v in range(shape.kernel_w):
                    idx = base + (shape.kernel_h - 1 - u) * wp + (
                        shape.kernel_w - 1 - v
                    )
                    out[m, c, u, v] = poly_eff[idx]
    return out


def kernel_perturbation_rel(
    shape: ConvShape,
    n: int,
    config: ApproxFftConfig,
    weight_bits: int = 4,
    seed: int = 0,
) -> float:
    """Relative magnitude of the FFT-induced kernel perturbation.

    Measured on a random kernel of the layer's shape: ``rms(dw) / rms(w)``.
    This is the noise level approximation-aware training should inject.
    """
    rng = np.random.default_rng(seed)
    lim = 1 << (weight_bits - 1)
    w = rng.integers(-lim, lim, size=(
        shape.out_channels, shape.in_channels, shape.kernel_h, shape.kernel_w
    ))
    w_eff = effective_kernel(w, shape, n, config)
    dw = w_eff - w
    # repro-lint: disable=DTYPE001  quantized weights are weight_bits-bit
    # signed ints (|w| < 2**7 for W8), far below float64's 2**53 mantissa
    signal = float(np.sqrt(np.mean(w.astype(np.float64) ** 2)))
    if signal == 0.0:
        return 0.0
    return float(np.sqrt(np.mean(dw**2))) / signal


@dataclass
class ApproxAwareResult:
    """History of one approximation-aware fine-tuning run."""

    losses: list
    noise_rel: float


def train_approx_aware(
    model: Sequential,
    dataset: Dataset,
    noise_rel: float,
    epochs: int = 4,
    batch_size: int = 64,
    lr: float = 0.02,
    momentum: float = 0.9,
    seed: int = 0,
) -> ApproxAwareResult:
    """Fine-tune ``model`` with weight-noise injection.

    Each forward/backward pass runs on weights perturbed by zero-mean
    Gaussian noise of standard deviation ``noise_rel * rms(|w|)`` per
    parameter tensor (matching the approximate-FFT kernel perturbation);
    the update is applied to the clean weights (straight-through).

    Args:
        model: trained float model to adapt (modified in place).
        dataset: training data.
        noise_rel: relative perturbation level (e.g. from
            :func:`kernel_perturbation_rel`).
        epochs / batch_size / lr / momentum / seed: SGD settings.
    """
    if noise_rel < 0:
        raise ValueError("noise level must be non-negative")
    rng = np.random.default_rng(seed)
    opt = SgdOptimizer(model, lr=lr, momentum=momentum)
    losses = []
    weighted = [layer for layer in model.layers if hasattr(layer, "weight")]
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for x, y in dataset.batches(batch_size, rng):
            saved = [(layer, layer.weight.copy()) for layer in weighted]
            for layer, w0 in saved:
                scale = noise_rel * float(np.sqrt(np.mean(w0**2)))
                layer.weight += rng.normal(0.0, scale, size=w0.shape)
            logits = model.forward(x, training=True)
            loss, grad = softmax_cross_entropy(logits, y)
            model.backward(grad)
            for layer, w0 in saved:
                layer.weight[...] = w0
            opt.step()
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return ApproxAwareResult(losses=losses, noise_rel=noise_rel)


def adapt_to_config(
    model: Sequential,
    dataset: Dataset,
    config: ApproxFftConfig,
    reference_shape: Optional[ConvShape] = None,
    n: int = 256,
    **train_kwargs,
) -> ApproxAwareResult:
    """Convenience: measure the config's perturbation level and fine-tune.

    Args:
        model: trained float model (modified in place).
        dataset: training data.
        config: the target approximate-FFT configuration.
        reference_shape: layer shape used to estimate the perturbation
            (a small default 3x3 layer when omitted).
        n: ring degree for the estimate.
        train_kwargs: forwarded to :func:`train_approx_aware`.
    """
    shape = reference_shape or ConvShape.square(2, 8, 4, 3)
    noise_rel = kernel_perturbation_rel(shape, n, config)
    return train_approx_aware(model, dataset, noise_rel, **train_kwargs)
