"""Synthetic image classification dataset (ImageNet stand-in).

The paper evaluates error resilience on pre-trained ImageNet CNNs, which
are unavailable offline; this generator produces a deterministic
10-class dataset of small images whose classes are oriented Gabor-like
patches at class-specific positions.  A few-thousand-parameter CNN
reaches high accuracy on it in seconds of numpy training, which is all
the error-resilience study needs: a trained network whose accuracy can be
re-measured under approximate private inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """Arrays of images (B, C, H, W) float in [-1, 1] and integer labels."""

    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return self.images.shape[0]

    def batches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled (images, labels) minibatches."""
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]


def make_synthetic_dataset(
    num_samples: int,
    num_classes: int = 10,
    size: int = 12,
    channels: int = 1,
    noise: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Generate a deterministic synthetic classification dataset.

    Each class is a 2D cosine grating with class-specific orientation and
    phase, windowed by a class-positioned Gaussian, plus i.i.d. noise.

    Args:
        num_samples: dataset size.
        num_classes: number of classes (<= 16 recommended).
        size: image side length.
        channels: image channels (patterns are shared, per-channel gains
            differ).
        noise: additive Gaussian noise std.
        seed: master seed (datasets are reproducible).
    """
    if num_classes < 2:
        raise ValueError("need at least 2 classes")
    rng = np.random.default_rng(seed)
    # repro-lint: disable=DTYPE001  pixel-grid coordinates (< size <= 2**10),
    # not modular-domain values
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size

    prototypes = []
    proto_rng = np.random.default_rng(12345)  # class shapes fixed across seeds
    for c in range(num_classes):
        theta = np.pi * c / num_classes
        freq = 2.0 + (c % 3)
        phase = 0.7 * c
        cx, cy = proto_rng.uniform(0.25, 0.75, size=2)
        grating = np.cos(
            2 * np.pi * freq * (xx * np.cos(theta) + yy * np.sin(theta)) + phase
        )
        window = np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / 0.08))
        prototypes.append(grating * window)
    prototypes = np.stack(prototypes)

    labels = rng.integers(0, num_classes, size=num_samples)
    images = np.empty((num_samples, channels, size, size))
    for i, label in enumerate(labels):
        base = prototypes[label]
        jitter = rng.normal(0.0, noise, size=(channels, size, size))
        gains = 1.0 + 0.2 * rng.standard_normal(channels)
        images[i] = base[None, :, :] * gains[:, None, None] + jitter
    images = np.clip(images, -1.5, 1.5) / 1.5
    return Dataset(images=images, labels=labels.astype(np.int64))


def train_test_split(dataset: Dataset, test_fraction: float = 0.2, seed: int = 1):
    """Deterministic split into (train, test) datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = int(len(dataset) * (1.0 - test_fraction))
    tr, te = order[:cut], order[cut:]
    return (
        Dataset(dataset.images[tr], dataset.labels[tr]),
        Dataset(dataset.images[te], dataset.labels[te]),
    )
