"""SGD training loop for the numpy CNN layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.nn.data import Dataset
from repro.nn.layers import Sequential, softmax_cross_entropy


@dataclass
class TrainResult:
    """Per-epoch history of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class SgdOptimizer:
    """Plain SGD with momentum over a layer container's parameters."""

    def __init__(self, model: Sequential, lr: float = 0.05, momentum: float = 0.9):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in model.parameters()]

    def step(self) -> None:
        for p, g, v in zip(
            self.model.parameters(), self.model.gradients(), self._velocity
        ):
            v *= self.momentum
            v -= self.lr * g
            p += v


def accuracy(model: Sequential, dataset: Dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy of the float model on a dataset."""
    correct = 0
    for start in range(0, len(dataset), batch_size):
        x = dataset.images[start : start + batch_size]
        y = dataset.labels[start : start + batch_size]
        logits = model.forward(x, training=False)
        correct += int((logits.argmax(axis=1) == y).sum())
    return correct / len(dataset)


def train(
    model: Sequential,
    dataset: Dataset,
    epochs: int = 5,
    batch_size: int = 64,
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainResult:
    """Train ``model`` in place with SGD + momentum on cross-entropy."""
    rng = np.random.default_rng(seed)
    opt = SgdOptimizer(model, lr=lr, momentum=momentum)
    result = TrainResult()
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for x, y in dataset.batches(batch_size, rng):
            logits = model.forward(x, training=True)
            loss, grad = softmax_cross_entropy(logits, y)
            model.backward(grad)
            opt.step()
            epoch_loss += loss
            batches += 1
        result.losses.append(epoch_loss / max(batches, 1))
        result.train_accuracy.append(accuracy(model, dataset))
    return result
