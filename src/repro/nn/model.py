"""Quantized CNN models: float factories and post-training quantization.

``QuantizedCnn`` executes entirely in integer arithmetic -- exactly the
computation a hybrid HE/2PC protocol evaluates -- with a pluggable
convolution/matvec kernel so the same network can run on the exact path or
through FLASH's approximate polynomial pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.quant import (
    QuantParams,
    calibrate,
    choose_requant_shift,
    requantize_shift,
)

# conv kernel: (x_int CHW, w_int MCkk, stride, padding) -> int M x oh x ow
ConvFn = Callable[[np.ndarray, np.ndarray, int, int], np.ndarray]
# linear kernel: (x_int, w_int) -> int vector
LinearFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def make_mini_cnn(
    channels: int = 1,
    size: int = 12,
    num_classes: int = 10,
    width: int = 8,
    seed: int = 0,
) -> Sequential:
    """A small two-conv CNN sized for the synthetic dataset."""
    rng = np.random.default_rng(seed)
    flat = 2 * width * (size // 4) * (size // 4)
    return Sequential(
        Conv2d(channels, width, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width, 2 * width, 3, padding=1, rng=rng),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(flat, num_classes, rng=rng),
    )


def make_mini_resnet(
    channels: int = 1,
    size: int = 12,
    num_classes: int = 10,
    width: int = 8,
    seed: int = 0,
) -> Sequential:
    """A small residual CNN (one basic block) for the synthetic dataset.

    Mirrors the paper's ResNet workloads at toy scale: a stem conv, one
    residual block (conv-relu-conv plus identity skip), and a classifier.
    """
    from repro.nn.layers import Residual

    rng = np.random.default_rng(seed)
    flat = width * (size // 4) * (size // 4)
    return Sequential(
        Conv2d(channels, width, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Residual(
            Conv2d(width, width, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(width, width, 3, padding=1, rng=rng),
        ),
        ReLU(),
        AvgPool2d(2),
        Flatten(),
        Linear(flat, num_classes, rng=rng),
    )


def conv2d_int_batch(
    x: np.ndarray, w: np.ndarray, stride: int, padding: int
) -> np.ndarray:
    """Exact integer batched convolution via im2col (int64 matmul)."""
    from repro.nn.layers import _im2col

    x = np.asarray(x, dtype=np.int64)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding,) * 2, (padding,) * 2))
    m, _, kh, kw = w.shape
    cols, oh, ow = _im2col(x, kh, kw, stride)
    out = cols @ w.reshape(m, -1).T.astype(np.int64)
    return out.transpose(0, 2, 1).reshape(x.shape[0], m, oh, ow)


def _exact_conv_fn(x, w, stride, padding):
    return conv2d_int_batch(x[None], w, stride, padding)[0]


def _exact_linear_fn(x, w):
    return w.astype(np.int64) @ x.astype(np.int64)


@dataclass
class QuantLayerSpec:
    """One quantized compute layer (conv or linear).

    ``bias_int`` (set during calibration) is the bias at sum-product scale,
    added before re-quantization so the integer pipeline tracks the float
    model.
    """

    kind: str  # 'conv' | 'linear'
    weight_q: np.ndarray
    bias_q: Optional[np.ndarray]
    stride: int = 1
    padding: int = 0
    requant_shift: int = 0
    act_bits: int = 4
    bias_int: Optional[np.ndarray] = None


class QuantizedCnn:
    """Integer-only CNN produced by post-training quantization.

    The op list interleaves quantized compute layers with exact integer
    ReLU / pooling / flatten steps (the parts a hybrid protocol runs in
    2PC).  Re-quantization after every conv discards LSBs -- the
    layer-level robustness mechanism of Section III-A.
    """

    def __init__(
        self,
        ops: List[Tuple],
        input_params: QuantParams,
        w_bits: int,
        a_bits: int,
    ):
        self.ops = ops
        self.input_params = input_params
        self.w_bits = w_bits
        self.a_bits = a_bits

    # ------------------------------------------------------------------

    @classmethod
    def from_float(
        cls,
        model: Sequential,
        calibration_images: np.ndarray,
        w_bits: int = 4,
        a_bits: int = 4,
        requant_percentile: float = 99.0,
    ) -> "QuantizedCnn":
        """Quantize a trained float model (max-abs PTQ, power-of-two requant).

        Args:
            model: trained :class:`Sequential` of supported layers.
            calibration_images: float batch used to pick requant shifts.
            w_bits / a_bits: weight / activation bit-widths (W4A4 default).
            requant_percentile: outlier-clipping percentile for the
                re-quantization shifts (100 = lossless worst case; ~99
                recovers most low-bit accuracy).
        """
        input_params = calibrate(calibration_images, a_bits)
        ops: List[Tuple] = []
        cls._translate_layers(model.layers, ops, w_bits, a_bits)
        net = cls(ops, input_params, w_bits, a_bits)
        net._calibrate_shifts(calibration_images, requant_percentile)
        return net

    @classmethod
    def _translate_layers(cls, layers, ops: List[Tuple], w_bits: int, a_bits: int):
        from repro.nn.layers import Residual

        for layer in layers:
            if isinstance(layer, Conv2d):
                wq = calibrate(layer.weight, w_bits)
                spec = QuantLayerSpec(
                    kind="conv",
                    weight_q=wq.quantize(layer.weight),
                    bias_q=None if layer.bias is None else layer.bias.copy(),
                    stride=layer.stride,
                    padding=layer.padding,
                    act_bits=a_bits,
                )
                spec._w_scale = wq.scale  # type: ignore[attr-defined]
                ops.append(("conv", spec))
            elif isinstance(layer, Linear):
                wq = calibrate(layer.weight, w_bits)
                spec = QuantLayerSpec(
                    kind="linear",
                    weight_q=wq.quantize(layer.weight),
                    bias_q=None if layer.bias is None else layer.bias.copy(),
                    act_bits=a_bits,
                )
                spec._w_scale = wq.scale  # type: ignore[attr-defined]
                ops.append(("linear", spec))
            elif isinstance(layer, Residual):
                # Marker pair around the branch; the join's skip-path
                # rescaling multiplier is fitted during calibration.
                ops.append(("res_push",))
                cls._translate_layers(layer.inner, ops, w_bits, a_bits)
                ops.append(("res_add", {"multiplier": 1.0}))
            elif isinstance(layer, ReLU):
                ops.append(("relu",))
            elif isinstance(layer, MaxPool2d):
                ops.append(("maxpool", layer.size))
            elif isinstance(layer, AvgPool2d):
                ops.append(("avgpool", layer.size))
            elif isinstance(layer, Flatten):
                ops.append(("flatten",))
            else:
                raise TypeError(f"unsupported layer {type(layer).__name__}")

    def _calibrate_shifts(
        self, images: np.ndarray, percentile: float = 99.0
    ) -> None:
        """One calibration pass: pick requant shifts and SP-scale biases.

        The activation scale evolves as ``s_out = s_in * s_w * 2**shift``;
        biases are injected at sum-product scale ``s_in * s_w``.
        """
        x = self.input_params.quantize(images)
        s_act = self.input_params.scale
        skip_stack: List[Tuple[np.ndarray, float]] = []
        for op in self.ops:
            if op[0] in ("conv", "linear"):
                spec = op[1]
                sp_scale = s_act * spec._w_scale  # type: ignore[attr-defined]
                if spec.bias_q is not None:
                    spec.bias_int = np.rint(spec.bias_q / sp_scale).astype(
                        np.int64
                    )
                sp = self._compute_sp_batch(x, spec)
                spec.requant_shift = choose_requant_shift(
                    sp, spec.act_bits, percentile
                )
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
                s_act = sp_scale * (1 << spec.requant_shift)
            elif op[0] == "res_push":
                skip_stack.append((x.copy(), s_act))
            elif op[0] == "res_add":
                skip, s_skip = skip_stack.pop()
                op[1]["multiplier"] = s_skip / s_act
                x = self._res_add(x, skip, op[1])
            else:
                x = self._apply_aux_batch(op, x)

    # ------------------------------------------------------------------

    @staticmethod
    def _add_bias(sp: np.ndarray, spec: QuantLayerSpec) -> np.ndarray:
        if spec.bias_int is None:
            return sp
        if spec.kind == "conv":
            return sp + spec.bias_int.reshape(
                (1,) * (sp.ndim - 3) + (-1, 1, 1)
            )
        return sp + spec.bias_int

    def _compute_sp_batch(self, x: np.ndarray, spec: QuantLayerSpec) -> np.ndarray:
        if spec.kind == "conv":
            sp = conv2d_int_batch(x, spec.weight_q, spec.stride, spec.padding)
        else:
            sp = x.astype(np.int64) @ spec.weight_q.T.astype(np.int64)
        return self._add_bias(sp, spec)

    def _res_add(self, branch: np.ndarray, skip: np.ndarray, info) -> np.ndarray:
        """Integer residual join: rescale the skip path, add, saturate.

        The skip activation lives at a different power-of-two-times-float
        scale than the branch output; a fixed-point multiplier (TFLite
        style) aligns them before the add.
        """
        # repro-lint: disable=DTYPE001  skip activations are a_bits-quantized
        # accumulator ints (< 2**32), far below float64's 2**53 mantissa
        aligned = np.rint(skip.astype(np.float64) * info["multiplier"]).astype(
            np.int64
        )
        total = branch.astype(np.int64) + aligned
        hi = (1 << (self.a_bits - 1)) - 1
        return np.clip(total, -(hi + 1), hi)

    def _apply_aux_batch(self, op: Tuple, x: np.ndarray) -> np.ndarray:
        name = op[0]
        if name == "relu":
            return np.maximum(x, 0)
        if name == "maxpool":
            s = op[1]
            b, c, h, w = x.shape
            return x.reshape(b, c, h // s, s, w // s, s).max(axis=(3, 5))
        if name == "avgpool":
            s = op[1]
            b, c, h, w = x.shape
            summed = x.reshape(b, c, h // s, s, w // s, s).sum(axis=(3, 5))
            return summed // (s * s)  # integer average (floor)
        if name == "flatten":
            return x.reshape(x.shape[0], -1)
        raise ValueError(f"unknown op {name}")  # pragma: no cover

    def forward_int(self, images: np.ndarray) -> np.ndarray:
        """Exact integer inference on a float image batch -> int logits."""
        x = self.input_params.quantize(images)
        skip_stack: List[np.ndarray] = []
        for op in self.ops:
            if op[0] in ("conv", "linear"):
                spec = op[1]
                sp = self._compute_sp_batch(x, spec)
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
            elif op[0] == "res_push":
                skip_stack.append(x.copy())
            elif op[0] == "res_add":
                x = self._res_add(x, skip_stack.pop(), op[1])
            else:
                x = self._apply_aux_batch(op, x)
        return x

    def forward_with_kernels(
        self,
        image: np.ndarray,
        conv_fn: ConvFn = _exact_conv_fn,
        linear_fn: LinearFn = _exact_linear_fn,
        collect_sp: bool = False,
    ):
        """Single-image inference with pluggable conv/linear kernels.

        This is the hook the private-inference simulator uses: the exact
        kernels are swapped for polynomial-encoded (and possibly
        approximate) ones while ReLU / pooling / re-quantization stay
        exact (they run under 2PC in the protocol).

        Args:
            image: one float image ``C x H x W``.
            conv_fn / linear_fn: integer kernels.
            collect_sp: also return the raw sum-products per compute layer
                (for error-variance studies).

        Returns:
            int logits, or ``(logits, [sp arrays])`` if ``collect_sp``.
        """
        x = self.input_params.quantize(image[None])[0]
        sps = []
        skip_stack: List[np.ndarray] = []
        for op in self.ops:
            if op[0] == "conv":
                spec = op[1]
                sp = self._add_bias(
                    conv_fn(x, spec.weight_q, spec.stride, spec.padding), spec
                )
                if collect_sp:
                    sps.append(sp.copy())
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
            elif op[0] == "linear":
                spec = op[1]
                sp = self._add_bias(linear_fn(x, spec.weight_q), spec)
                if collect_sp:
                    sps.append(sp.copy())
                x = requantize_shift(sp, spec.requant_shift, spec.act_bits)
            elif op[0] == "res_push":
                skip_stack.append(x.copy())
            elif op[0] == "res_add":
                x = self._res_add(x, skip_stack.pop(), op[1])
            else:
                x = self._apply_aux_batch(op, x[None])[0]
        return (x, sps) if collect_sp else x

    def accuracy_int(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of exact integer inference."""
        logits = self.forward_int(images)
        return float((logits.argmax(axis=1) == labels).mean())

    def conv_specs(self) -> List[QuantLayerSpec]:
        return [op[1] for op in self.ops if op[0] == "conv"]

    def max_sum_product_terms(self) -> int:
        """Largest accumulation length across compute layers (sets t)."""
        worst = 1
        for op in self.ops:
            if op[0] == "conv":
                s = op[1]
                worst = max(
                    worst,
                    s.weight_q.shape[1] * s.weight_q.shape[2] * s.weight_q.shape[3],
                )
            elif op[0] == "linear":
                worst = max(worst, op[1].weight_q.shape[1])
        return worst
