"""Minimal numpy neural-network layers with backpropagation.

Enough machinery to train the small quantized CNNs used by the
error-resilience studies: conv / linear / ReLU / pooling / flatten, a
``Sequential`` container, and softmax cross-entropy.  Batched NCHW layout.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int):
    """(B, C, H, W) -> ((B, out_h*out_w, C*kh*kw) patches, out_h, out_w)."""
    b, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sb, sc, sh, sw = x.strides
    shape = (b, c, oh, ow, kh, kw)
    strides = (sb, sc, sh * stride, sw * stride, sh, sw)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return (
        patches.transpose(0, 2, 3, 1, 4, 5).reshape(b, oh * ow, c * kh * kw),
        oh,
        ow,
    )


class Layer:
    """Base layer: forward caches what backward needs; params + grads lists."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        return []

    def gradients(self) -> List[np.ndarray]:
        return []


class Conv2d(Layer):
    """2D convolution (cross-correlation), optional bias.

    Args:
        in_channels / out_channels / kernel: the usual.
        stride, padding: spatial.
        rng: initializer randomness (He-normal).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng()
        fan_in = in_channels * kernel * kernel
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / fan_in), size=(out_channels, in_channels, kernel, kernel)
        )
        self.bias = np.zeros(out_channels) if bias else None
        self.stride = stride
        self.padding = padding
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias) if bias else None
        self._cache: Tuple = ()

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if self.padding:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2),
            )
        m, _, kh, kw = self.weight.shape
        cols, oh, ow = _im2col(x, kh, kw, self.stride)
        wmat = self.weight.reshape(m, -1)
        out = cols @ wmat.T  # (B, oh*ow, M)
        if self.bias is not None:
            out = out + self.bias
        if training:
            self._cache = (x.shape, cols)
        b = x.shape[0]
        return out.transpose(0, 2, 1).reshape(b, m, oh, ow)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols = self._cache
        b, m, oh, ow = grad.shape
        gmat = grad.reshape(b, m, oh * ow).transpose(0, 2, 1)  # (B, P, M)
        wmat = self.weight.reshape(m, -1)
        self.grad_weight[...] = (
            np.einsum("bpm,bpk->mk", gmat, cols).reshape(self.weight.shape)
        )
        if self.bias is not None:
            self.grad_bias[...] = gmat.sum(axis=(0, 1))
        gcols = gmat @ wmat  # (B, P, C*kh*kw)
        # col2im (scatter-add patches back).
        _, c, hp, wp = x_shape
        kh, kw = self.weight.shape[2], self.weight.shape[3]
        gx = np.zeros(x_shape)
        patches = gcols.reshape(b, oh, ow, c, kh, kw)
        for i in range(oh):
            hi = i * self.stride
            for j in range(ow):
                wj = j * self.stride
                gx[:, :, hi : hi + kh, wj : wj + kw] += patches[:, i, j]
        if self.padding:
            p = self.padding
            gx = gx[:, :, p:-p, p:-p]
        return gx

    def parameters(self) -> List[np.ndarray]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight] + (
            [self.grad_bias] if self.bias is not None else []
        )


class Linear(Layer):
    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng()
        self.weight = rng.normal(
            0.0, np.sqrt(2.0 / in_features), size=(out_features, in_features)
        )
        self.bias = np.zeros(out_features) if bias else None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias) if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x = x
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.grad_weight[...] = grad.T @ self._x
        if self.bias is not None:
            self.grad_bias[...] = grad.sum(axis=0)
        return grad @ self.weight

    def parameters(self) -> List[np.ndarray]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weight] + (
            [self.grad_bias] if self.bias is not None else []
        )


class ReLU(Layer):
    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class AvgPool2d(Layer):
    def __init__(self, size: int):
        self.size = size
        self._in_shape: Tuple = ()

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        b, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"pool size {s} does not divide {h}x{w}")
        if training:
            self._in_shape = x.shape
        return x.reshape(b, c, h // s, s, w // s, s).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        s = self.size
        g = np.repeat(np.repeat(grad, s, axis=2), s, axis=3)
        return g / (s * s)


class MaxPool2d(Layer):
    def __init__(self, size: int):
        self.size = size
        self._cache: Tuple = ()

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        b, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"pool size {s} does not divide {h}x{w}")
        blocks = x.reshape(b, c, h // s, s, w // s, s)
        out = blocks.max(axis=(3, 5))
        if training:
            mask = blocks == out[:, :, :, None, :, None]
            self._cache = (mask, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        mask, x_shape = self._cache
        s = self.size
        g = grad[:, :, :, None, :, None] * mask
        return g.reshape(x_shape)


class Flatten(Layer):
    def __init__(self):
        self._shape: Tuple = ()

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Residual(Layer):
    """A residual branch: ``y = inner(x) + x`` (ResNet basic-block core).

    The inner layers must preserve the activation shape.  Backward routes
    the gradient through both the branch and the identity skip.
    """

    def __init__(self, *inner: Layer):
        if not inner:
            raise ValueError("residual block needs at least one inner layer")
        self.inner = list(inner)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y = x
        for layer in self.inner:
            y = layer.forward(y, training=training)
        if y.shape != x.shape:
            raise ValueError(
                f"residual branch changed shape {x.shape} -> {y.shape}"
            )
        return y + x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = grad
        for layer in reversed(self.inner):
            g = layer.backward(g)
        return g + grad

    def parameters(self) -> List[np.ndarray]:
        return [p for layer in self.inner for p in layer.parameters()]

    def gradients(self) -> List[np.ndarray]:
        return [g for layer in self.inner for g in layer.gradients()]


class Sequential(Layer):
    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> List[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean loss and gradient w.r.t. logits for integer class labels."""
    z = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(z)
    probs = exp / exp.sum(axis=1, keepdims=True)
    b = logits.shape[0]
    loss = float(-np.log(probs[np.arange(b), labels] + 1e-12).mean())
    grad = probs
    grad[np.arange(b), labels] -= 1.0
    return loss, grad / b
